"""The workspace manifest: one schema-tagged JSON catalog per dataset.

A workspace directory is self-describing: ``workspace.json`` records the
schema version, the layout parameters (page size, tree order), per-
collection statistics and a SHA-256 checksum for every artifact file.
:func:`validate_manifest` is deliberately strict — an unknown schema
tag, a missing section or a wrongly-typed field raises
:class:`~repro.errors.WorkspaceError` — because a manifest that *looks*
loadable but lies about its files is worse than no manifest.

:func:`manifest_fingerprint` condenses the checksums into one short hex
tag; the experiment engine mixes it into sweep-point memo keys so
results computed over different workspace contents never share a cache
entry.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Mapping

from repro.errors import WorkspaceError

#: versioned schema tag written into every new manifest
WORKSPACE_SCHEMA = "repro-workspace/2"

#: the pre-codec schema; still accepted, its inverted extents are ``raw``
WORKSPACE_SCHEMA_V1 = "repro-workspace/1"

#: every schema tag :func:`validate_manifest` accepts
ACCEPTED_SCHEMAS = (WORKSPACE_SCHEMA, WORKSPACE_SCHEMA_V1)

#: file name of the manifest inside a workspace directory
MANIFEST_NAME = "workspace.json"

#: file name of the optional shared vocabulary inside a workspace
VOCABULARY_NAME = "vocabulary.json"

_COLLECTION_FIELDS = (
    ("name", str),
    ("n_documents", int),
    ("avg_terms_per_doc", float),
    ("n_distinct_terms", int),
    ("total_bytes", int),
)


def file_checksum(path: str | Path) -> str:
    """Hex SHA-256 of one artifact file's bytes."""
    return hashlib.sha256(Path(path).read_bytes()).hexdigest()


def build_manifest(
    *,
    page_bytes: int,
    btree_order: int,
    self_join: bool,
    collections: Mapping[str, Mapping[str, Any]],
    files: Mapping[str, Mapping[str, Any]],
    vocabulary: str | None = None,
    codec: str = "raw",
) -> dict[str, Any]:
    """Assemble and validate a manifest dictionary.

    ``collections`` maps the roles (``"c1"``, and ``"c2"`` unless
    ``self_join``) to their statistics; ``files`` maps artifact file
    names to ``{"bytes": int, "sha256": hex}`` entries; ``codec`` names
    the postings codec the ``.inv.cells`` records are encoded in.
    """
    manifest = {
        "schema": WORKSPACE_SCHEMA,
        "page_bytes": page_bytes,
        "btree_order": btree_order,
        "self_join": self_join,
        "codec": codec,
        "collections": {role: dict(entry) for role, entry in collections.items()},
        "files": {name: dict(entry) for name, entry in files.items()},
        "vocabulary": vocabulary,
    }
    validate_manifest(manifest)
    return manifest


def manifest_codec(manifest: Mapping[str, Any]) -> str:
    """The postings codec of a validated manifest (v1 implies ``raw``)."""
    return manifest.get("codec", "raw")


def validate_manifest(manifest: Mapping[str, Any]) -> None:
    """Raise :class:`~repro.errors.WorkspaceError` unless well-formed."""
    if not isinstance(manifest, Mapping):
        raise WorkspaceError("workspace manifest must be a mapping")
    schema = manifest.get("schema")
    if schema not in ACCEPTED_SCHEMAS:
        raise WorkspaceError(
            f"unsupported workspace schema {schema!r}, expected one of "
            f"{ACCEPTED_SCHEMAS!r}"
        )
    codec = manifest.get("codec")
    if schema == WORKSPACE_SCHEMA_V1:
        # v1 predates the codec layer: its inverted extents are raw
        # i-cells, and a codec claim would be unverifiable.
        if codec is not None:
            raise WorkspaceError(
                "a v1 workspace manifest cannot declare a postings codec; "
                "rebuild the workspace to use one"
            )
    else:
        from repro.index.codecs import CODEC_NAMES

        if codec not in CODEC_NAMES:
            raise WorkspaceError(
                f"workspace manifest names unknown postings codec {codec!r}; "
                f"this build understands {CODEC_NAMES} — the workspace was "
                "written by a newer version or the manifest is corrupt"
            )
    for key, kind in (
        ("page_bytes", int),
        ("btree_order", int),
        ("self_join", bool),
        ("collections", Mapping),
        ("files", Mapping),
    ):
        if not isinstance(manifest.get(key), kind):
            raise WorkspaceError(
                f"manifest field {key!r} missing or not a {kind.__name__}"
            )
    if manifest["page_bytes"] <= 0:
        raise WorkspaceError(f"page_bytes must be positive, got {manifest['page_bytes']}")
    if manifest["btree_order"] < 3:
        raise WorkspaceError(
            f"btree_order must be at least 3, got {manifest['btree_order']}"
        )
    vocabulary = manifest.get("vocabulary")
    if vocabulary is not None and not isinstance(vocabulary, str):
        raise WorkspaceError("manifest field 'vocabulary' must be a file name or null")

    roles = ("c1",) if manifest["self_join"] else ("c1", "c2")
    collections = manifest["collections"]
    unknown = sorted(set(collections) - set(roles))
    if unknown:
        raise WorkspaceError(f"manifest lists unknown collection roles: {unknown}")
    for role in roles:
        entry = collections.get(role)
        if not isinstance(entry, Mapping):
            raise WorkspaceError(f"manifest is missing collection role {role!r}")
        for field_name, kind in _COLLECTION_FIELDS:
            value = entry.get(field_name)
            if kind is float and isinstance(value, int):
                value = float(value)
            if not isinstance(value, kind) or isinstance(value, bool):
                raise WorkspaceError(
                    f"collection {role!r} field {field_name!r} missing or "
                    f"not a {kind.__name__}"
                )
    if not manifest["self_join"]:
        names = {collections[role]["name"] for role in roles}
        if len(names) != len(roles):
            raise WorkspaceError(
                "a cross-join workspace needs distinctly named collections, "
                f"got {sorted(collections[role]['name'] for role in roles)}"
            )

    for file_name, entry in manifest["files"].items():
        if not isinstance(file_name, str) or not file_name:
            raise WorkspaceError("manifest file names must be non-empty strings")
        if not isinstance(entry, Mapping):
            raise WorkspaceError(f"manifest file entry {file_name!r} is not a mapping")
        if not isinstance(entry.get("bytes"), int) or isinstance(entry.get("bytes"), bool):
            raise WorkspaceError(f"file {file_name!r} entry has no integer 'bytes'")
        digest = entry.get("sha256")
        if not isinstance(digest, str) or len(digest) != 64:
            raise WorkspaceError(f"file {file_name!r} entry has no hex 'sha256'")
    if vocabulary is not None and vocabulary not in manifest["files"]:
        raise WorkspaceError(
            f"manifest names vocabulary {vocabulary!r} but does not checksum it"
        )


def save_manifest(manifest: Mapping[str, Any], directory: str | Path) -> Path:
    """Validate and write the manifest into a workspace directory."""
    validate_manifest(manifest)
    path = Path(directory) / MANIFEST_NAME
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return path


def load_manifest(directory: str | Path) -> dict[str, Any]:
    """Read and validate the manifest of a workspace directory."""
    path = Path(directory) / MANIFEST_NAME
    try:
        raw = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise WorkspaceError(f"cannot read workspace manifest {path}: {exc}") from exc
    validate_manifest(raw)
    return raw


def manifest_fingerprint(manifest: Mapping[str, Any]) -> str:
    """A short stable tag over the manifest's contents and checksums.

    Two workspaces with byte-identical artifacts *and* the same layout
    parameters share a fingerprint; any content change — one flipped bit
    in one cell file, a different page size or tree order — produces a
    different one.  Suitable as the ``dataset`` component of
    :class:`~repro.experiments.engine.SweepPoint` memo keys.
    """
    validate_manifest(manifest)
    digest = hashlib.sha256()
    # The layout parameters change physical page counts (hence measured
    # I/O) even over byte-identical cell files, so they are part of the
    # dataset's identity.
    header = (
        f"{manifest['schema']};{manifest['page_bytes']};"
        f"{manifest['btree_order']};{manifest['self_join']}"
    )
    if manifest["schema"] != WORKSPACE_SCHEMA_V1:
        # The codec changes the physical inverted extents, so it is part
        # of the dataset's identity; v1 headers stay as they were so
        # fingerprints of existing workspaces do not shift.
        header += f";{manifest_codec(manifest)}"
    digest.update(header.encode("ascii"))
    for file_name in sorted(manifest["files"]):
        digest.update(file_name.encode("utf-8"))
        digest.update(manifest["files"][file_name]["sha256"].encode("ascii"))
    return digest.hexdigest()[:16]


__all__ = [
    "ACCEPTED_SCHEMAS",
    "MANIFEST_NAME",
    "VOCABULARY_NAME",
    "WORKSPACE_SCHEMA",
    "WORKSPACE_SCHEMA_V1",
    "build_manifest",
    "file_checksum",
    "load_manifest",
    "manifest_codec",
    "manifest_fingerprint",
    "save_manifest",
    "validate_manifest",
]
