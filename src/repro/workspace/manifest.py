"""The workspace manifest: one schema-tagged JSON catalog per dataset.

A workspace directory is self-describing: ``workspace.json`` records the
schema version, the layout parameters (page size, tree order), per-
collection statistics and a SHA-256 checksum for every artifact file.
:func:`validate_manifest` is deliberately strict — an unknown schema
tag, a missing section or a wrongly-typed field raises
:class:`~repro.errors.WorkspaceError` — because a manifest that *looks*
loadable but lies about its files is worse than no manifest.

:func:`manifest_fingerprint` condenses the checksums into one short hex
tag; the experiment engine mixes it into sweep-point memo keys so
results computed over different workspace contents never share a cache
entry.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Mapping

from repro.errors import WorkspaceError

#: versioned schema tag written into every new build-once manifest
WORKSPACE_SCHEMA = "repro-workspace/2"

#: the pre-codec schema; still accepted, its inverted extents are ``raw``
WORKSPACE_SCHEMA_V1 = "repro-workspace/1"

#: the segmented schema: an ordered list of immutable base segments plus
#: at most one trailing mutable delta, deletes as tombstones in later
#: segments.  Written by :mod:`repro.workspace.mutate`; v1/v2 manifests
#: are normalised to a single synthetic base segment on load
#: (:func:`manifest_segments`), so the two generations share one loader.
WORKSPACE_SCHEMA_V3 = "repro-workspace/3"

#: every schema tag :func:`validate_manifest` accepts
ACCEPTED_SCHEMAS = (WORKSPACE_SCHEMA_V3, WORKSPACE_SCHEMA, WORKSPACE_SCHEMA_V1)

#: the synthetic segment id v1/v2 manifests are normalised under
LEGACY_SEGMENT_ID = "seg-000000"

#: segment kinds a v3 manifest may carry
SEGMENT_KINDS = ("base", "delta")

#: file name of the manifest inside a workspace directory
MANIFEST_NAME = "workspace.json"

#: file name of the optional shared vocabulary inside a workspace
VOCABULARY_NAME = "vocabulary.json"

_COLLECTION_FIELDS = (
    ("name", str),
    ("n_documents", int),
    ("avg_terms_per_doc", float),
    ("n_distinct_terms", int),
    ("total_bytes", int),
)


def file_checksum(path: str | Path) -> str:
    """Hex SHA-256 of one artifact file's bytes."""
    return hashlib.sha256(Path(path).read_bytes()).hexdigest()


def build_manifest(
    *,
    page_bytes: int,
    btree_order: int,
    self_join: bool,
    collections: Mapping[str, Mapping[str, Any]],
    files: Mapping[str, Mapping[str, Any]],
    vocabulary: str | None = None,
    codec: str = "raw",
    segments: list[Mapping[str, Any]] | None = None,
    version: int = 1,
) -> dict[str, Any]:
    """Assemble and validate a manifest dictionary.

    ``collections`` maps the roles (``"c1"``, and ``"c2"`` unless
    ``self_join``) to their statistics; ``files`` maps artifact file
    names to ``{"bytes": int, "sha256": hex}`` entries; ``codec`` names
    the postings codec the ``.inv.cells`` records are encoded in.

    Passing ``segments`` emits the segmented v3 schema: ``collections``
    then describes the *merged live* view, ``files`` holds only the
    workspace-level files (the vocabulary), and each segment record
    carries its own checksummed file map.  ``version`` is the manifest
    version number every mutation bumps.
    """
    if segments is None:
        manifest = {
            "schema": WORKSPACE_SCHEMA,
            "page_bytes": page_bytes,
            "btree_order": btree_order,
            "self_join": self_join,
            "codec": codec,
            "collections": {role: dict(entry) for role, entry in collections.items()},
            "files": {name: dict(entry) for name, entry in files.items()},
            "vocabulary": vocabulary,
        }
    else:
        manifest = {
            "schema": WORKSPACE_SCHEMA_V3,
            "version": version,
            "page_bytes": page_bytes,
            "btree_order": btree_order,
            "self_join": self_join,
            "codec": codec,
            "collections": {role: dict(entry) for role, entry in collections.items()},
            "files": {name: dict(entry) for name, entry in files.items()},
            "vocabulary": vocabulary,
            "segments": [dict(segment) for segment in segments],
        }
    validate_manifest(manifest)
    return manifest


def manifest_codec(manifest: Mapping[str, Any]) -> str:
    """The postings codec of a validated manifest (v1 implies ``raw``)."""
    return manifest.get("codec", "raw")


def validate_manifest(manifest: Mapping[str, Any]) -> None:
    """Raise :class:`~repro.errors.WorkspaceError` unless well-formed."""
    if not isinstance(manifest, Mapping):
        raise WorkspaceError("workspace manifest must be a mapping")
    schema = manifest.get("schema")
    if schema not in ACCEPTED_SCHEMAS:
        raise WorkspaceError(
            f"unsupported workspace schema {schema!r}, expected one of "
            f"{ACCEPTED_SCHEMAS!r}"
        )
    codec = manifest.get("codec")
    if schema == WORKSPACE_SCHEMA_V1:
        # v1 predates the codec layer: its inverted extents are raw
        # i-cells, and a codec claim would be unverifiable.
        if codec is not None:
            raise WorkspaceError(
                "a v1 workspace manifest cannot declare a postings codec; "
                "rebuild the workspace to use one"
            )
    else:
        from repro.index.codecs import CODEC_NAMES

        if codec not in CODEC_NAMES:
            raise WorkspaceError(
                f"workspace manifest names unknown postings codec {codec!r}; "
                f"this build understands {CODEC_NAMES} — the workspace was "
                "written by a newer version or the manifest is corrupt"
            )
    for key, kind in (
        ("page_bytes", int),
        ("btree_order", int),
        ("self_join", bool),
        ("collections", Mapping),
        ("files", Mapping),
    ):
        if not isinstance(manifest.get(key), kind):
            raise WorkspaceError(
                f"manifest field {key!r} missing or not a {kind.__name__}"
            )
    if manifest["page_bytes"] <= 0:
        raise WorkspaceError(f"page_bytes must be positive, got {manifest['page_bytes']}")
    if manifest["btree_order"] < 3:
        raise WorkspaceError(
            f"btree_order must be at least 3, got {manifest['btree_order']}"
        )
    vocabulary = manifest.get("vocabulary")
    if vocabulary is not None and not isinstance(vocabulary, str):
        raise WorkspaceError("manifest field 'vocabulary' must be a file name or null")

    roles = ("c1",) if manifest["self_join"] else ("c1", "c2")
    collections = manifest["collections"]
    unknown = sorted(set(collections) - set(roles))
    if unknown:
        raise WorkspaceError(f"manifest lists unknown collection roles: {unknown}")
    for role in roles:
        entry = collections.get(role)
        if not isinstance(entry, Mapping):
            raise WorkspaceError(f"manifest is missing collection role {role!r}")
        for field_name, kind in _COLLECTION_FIELDS:
            value = entry.get(field_name)
            if kind is float and isinstance(value, int):
                value = float(value)
            if not isinstance(value, kind) or isinstance(value, bool):
                raise WorkspaceError(
                    f"collection {role!r} field {field_name!r} missing or "
                    f"not a {kind.__name__}"
                )
    if not manifest["self_join"]:
        names = {collections[role]["name"] for role in roles}
        if len(names) != len(roles):
            raise WorkspaceError(
                "a cross-join workspace needs distinctly named collections, "
                f"got {sorted(collections[role]['name'] for role in roles)}"
            )

    _validate_file_map(manifest["files"], "manifest")
    if vocabulary is not None and vocabulary not in manifest["files"]:
        raise WorkspaceError(
            f"manifest names vocabulary {vocabulary!r} but does not checksum it"
        )

    if schema != WORKSPACE_SCHEMA_V3:
        if "segments" in manifest:
            raise WorkspaceError(
                f"manifest claims segments but its schema is {schema!r}; "
                f"segmented workspaces must declare {WORKSPACE_SCHEMA_V3!r} "
                "(the manifest was hand-edited or written by a broken tool)"
            )
        if "version" in manifest:
            raise WorkspaceError(
                f"manifest field 'version' is a {WORKSPACE_SCHEMA_V3!r} "
                f"field; schema {schema!r} manifests do not carry it"
            )
        return
    version = manifest.get("version")
    if not isinstance(version, int) or isinstance(version, bool) or version < 1:
        raise WorkspaceError(
            "a v3 manifest needs an integer 'version' >= 1, got "
            f"{version!r}"
        )
    _validate_segments(manifest)


def _validate_file_map(files: Mapping[str, Any], owner: str) -> None:
    """Shared shape check for one checksummed file map."""
    for file_name, entry in files.items():
        if not isinstance(file_name, str) or not file_name:
            raise WorkspaceError(f"{owner} file names must be non-empty strings")
        parts = file_name.split("/")
        if file_name.startswith("/") or ".." in parts or "." in parts:
            raise WorkspaceError(
                f"{owner} file name {file_name!r} must be a plain relative path"
            )
        if not isinstance(entry, Mapping):
            raise WorkspaceError(f"{owner} file entry {file_name!r} is not a mapping")
        if not isinstance(entry.get("bytes"), int) or isinstance(entry.get("bytes"), bool):
            raise WorkspaceError(f"file {file_name!r} entry has no integer 'bytes'")
        digest = entry.get("sha256")
        if not isinstance(digest, str) or len(digest) != 64:
            raise WorkspaceError(f"file {file_name!r} entry has no hex 'sha256'")


def _validate_segment_collections(
    segment: Mapping[str, Any], roles: tuple[str, ...], manifest: Mapping[str, Any]
) -> None:
    seg_id = segment["id"]
    collections = segment["collections"]
    unknown = sorted(set(collections) - set(roles))
    if unknown:
        raise WorkspaceError(f"segment {seg_id!r} lists unknown roles: {unknown}")
    for role, entry in collections.items():
        if not isinstance(entry, Mapping):
            raise WorkspaceError(
                f"segment {seg_id!r} collection {role!r} is not a mapping"
            )
        for field_name, kind in _COLLECTION_FIELDS:
            value = entry.get(field_name)
            if kind is float and isinstance(value, int):
                value = float(value)
            if not isinstance(value, kind) or isinstance(value, bool):
                raise WorkspaceError(
                    f"segment {seg_id!r} collection {role!r} field "
                    f"{field_name!r} missing or not a {kind.__name__}"
                )
        workspace_name = manifest["collections"][role]["name"]
        if entry["name"] != workspace_name:
            raise WorkspaceError(
                f"segment {seg_id!r} names collection {role!r} "
                f"{entry['name']!r} but the workspace names it "
                f"{workspace_name!r}"
            )


def _validate_segments(manifest: Mapping[str, Any]) -> None:
    """The v3 segment-list invariants (metadata only, no file I/O)."""
    from repro.index.codecs import CODEC_NAMES

    segments = manifest.get("segments")
    if not isinstance(segments, list) or not segments:
        raise WorkspaceError(
            "a v3 manifest needs a non-empty 'segments' list"
        )
    roles = ("c1",) if manifest["self_join"] else ("c1", "c2")
    seen_ids: dict[str, int] = {}
    seen_files: set[str] = set(manifest["files"])
    live: dict[str, int] = {role: 0 for role in roles}
    for position, segment in enumerate(segments):
        if not isinstance(segment, Mapping):
            raise WorkspaceError(f"segment at position {position} is not a mapping")
        seg_id = segment.get("id")
        if not isinstance(seg_id, str) or not seg_id or "/" in seg_id:
            raise WorkspaceError(
                f"segment at position {position} has no usable 'id', got {seg_id!r}"
            )
        if seg_id in seen_ids:
            raise WorkspaceError(f"duplicate segment id {seg_id!r}")
        seen_ids[seg_id] = position
        kind = segment.get("kind")
        if kind not in SEGMENT_KINDS:
            raise WorkspaceError(
                f"segment {seg_id!r} has kind {kind!r}, expected one of "
                f"{SEGMENT_KINDS}"
            )
        if kind == "delta" and position != len(segments) - 1:
            raise WorkspaceError(
                f"segment {seg_id!r} is a delta but is not the last segment; "
                "a workspace holds at most one trailing delta"
            )
        path = segment.get("path")
        if not isinstance(path, str) or (path and "/" in path) or path == "..":
            raise WorkspaceError(
                f"segment {seg_id!r} 'path' must be '' or one plain directory "
                f"name, got {path!r}"
            )
        if segment.get("codec") not in CODEC_NAMES:
            raise WorkspaceError(
                f"segment {seg_id!r} names unknown postings codec "
                f"{segment.get('codec')!r}; this build understands {CODEC_NAMES}"
            )
        if not isinstance(segment.get("collections"), Mapping):
            raise WorkspaceError(f"segment {seg_id!r} has no 'collections' mapping")
        _validate_segment_collections(segment, roles, manifest)
        if not isinstance(segment.get("files"), Mapping):
            raise WorkspaceError(f"segment {seg_id!r} has no 'files' mapping")
        _validate_file_map(segment["files"], f"segment {seg_id!r}")
        overlap = seen_files & set(segment["files"])
        if overlap:
            raise WorkspaceError(
                f"segment {seg_id!r} re-checksums files already claimed "
                f"elsewhere: {sorted(overlap)}"
            )
        seen_files |= set(segment["files"])
        fingerprint = segment.get("fingerprint")
        if fingerprint != segment_fingerprint(segment):
            raise WorkspaceError(
                f"segment {seg_id!r} fingerprint {fingerprint!r} does not match "
                "its own contents (the record was edited without re-fingerprinting)"
            )
        for role in roles:
            entry = segment["collections"].get(role)
            if entry is not None:
                live[role] += entry["n_documents"]

    # Tombstones may only point at strictly earlier base segments, at
    # in-range local documents, and never twice at the same document.
    seen_tombstones: set[tuple[str, str, int]] = set()
    for segment in segments:
        seg_id = segment["id"]
        tombstones = segment.get("tombstones")
        if not isinstance(tombstones, Mapping):
            raise WorkspaceError(f"segment {seg_id!r} has no 'tombstones' mapping")
        unknown = sorted(set(tombstones) - set(roles))
        if unknown:
            raise WorkspaceError(
                f"segment {seg_id!r} tombstones list unknown roles: {unknown}"
            )
        for role, marks in tombstones.items():
            if not isinstance(marks, list):
                raise WorkspaceError(
                    f"segment {seg_id!r} tombstones for {role!r} must be a list"
                )
            for mark in marks:
                if (
                    not isinstance(mark, list)
                    or len(mark) != 2
                    or not isinstance(mark[0], str)
                    or not isinstance(mark[1], int)
                    or isinstance(mark[1], bool)
                ):
                    raise WorkspaceError(
                        f"segment {seg_id!r} tombstone {mark!r} for {role!r} "
                        "must be a [segment_id, local_doc] pair"
                    )
                target_id, local_doc = mark
                target_position = seen_ids.get(target_id)
                if target_position is None:
                    raise WorkspaceError(
                        f"segment {seg_id!r} tombstones unknown segment "
                        f"{target_id!r}"
                    )
                if target_position >= seen_ids[seg_id]:
                    raise WorkspaceError(
                        f"segment {seg_id!r} tombstones {target_id!r}, which "
                        "is not an earlier segment"
                    )
                target = segments[target_position]
                target_entry = target["collections"].get(role)
                n_docs = 0 if target_entry is None else target_entry["n_documents"]
                if not 0 <= local_doc < n_docs:
                    raise WorkspaceError(
                        f"segment {seg_id!r} tombstones document {local_doc} of "
                        f"{target_id!r}/{role}, which holds {n_docs} documents"
                    )
                key = (role, target_id, local_doc)
                if key in seen_tombstones:
                    raise WorkspaceError(
                        f"document {local_doc} of {target_id!r}/{role} is "
                        "tombstoned twice"
                    )
                seen_tombstones.add(key)
                live[role] -= 1

    for role in roles:
        declared = manifest["collections"][role]["n_documents"]
        if live[role] != declared:
            raise WorkspaceError(
                f"manifest declares {declared} live documents for {role!r} but "
                f"the segments account for {live[role]}"
            )


def save_manifest(manifest: Mapping[str, Any], directory: str | Path) -> Path:
    """Validate and write the manifest into a workspace directory.

    The write is atomic (temp file + ``os.replace``): a reader — or a
    crash — mid-save sees either the old complete manifest or the new
    one, never a torn file.  This is the pivot the mutation path's
    snapshot guarantee rests on.
    """
    validate_manifest(manifest)
    path = Path(directory) / MANIFEST_NAME
    temp = path.with_name(MANIFEST_NAME + ".tmp")
    temp.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    os.replace(temp, path)
    return path


def load_manifest(directory: str | Path) -> dict[str, Any]:
    """Read and validate the manifest of a workspace directory."""
    path = Path(directory) / MANIFEST_NAME
    try:
        raw = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise WorkspaceError(f"cannot read workspace manifest {path}: {exc}") from exc
    validate_manifest(raw)
    return raw


def manifest_fingerprint(manifest: Mapping[str, Any]) -> str:
    """A short stable tag over the manifest's contents and checksums.

    Two workspaces with byte-identical artifacts *and* the same layout
    parameters share a fingerprint; any content change — one flipped bit
    in one cell file, a different page size or tree order — produces a
    different one.  Suitable as the ``dataset`` component of
    :class:`~repro.experiments.engine.SweepPoint` memo keys.
    """
    validate_manifest(manifest)
    digest = hashlib.sha256()
    # The layout parameters change physical page counts (hence measured
    # I/O) even over byte-identical cell files, so they are part of the
    # dataset's identity.
    header = (
        f"{manifest['schema']};{manifest['page_bytes']};"
        f"{manifest['btree_order']};{manifest['self_join']}"
    )
    if manifest["schema"] != WORKSPACE_SCHEMA_V1:
        # The codec changes the physical inverted extents, so it is part
        # of the dataset's identity; v1 headers stay as they were so
        # fingerprints of existing workspaces do not shift.
        header += f";{manifest_codec(manifest)}"
    if manifest["schema"] == WORKSPACE_SCHEMA_V3:
        # Every mutation bumps the version, so the fingerprint moves
        # even when a compaction happens to reproduce identical bytes —
        # memoised results computed before the mutation never collide
        # with results computed after it.
        header += f";{manifest['version']}"
    digest.update(header.encode("ascii"))
    for file_name in sorted(manifest["files"]):
        digest.update(file_name.encode("utf-8"))
        digest.update(manifest["files"][file_name]["sha256"].encode("ascii"))
    for segment in manifest.get("segments", ()):
        digest.update(segment["fingerprint"].encode("ascii"))
    return digest.hexdigest()[:16]


def segment_fingerprint(segment: Mapping[str, Any]) -> str:
    """A short stable tag over one segment record's identity.

    Covers the id, kind, codec, tombstones and file checksums — so a
    metadata-only change (freezing a delta into a base) moves the
    fingerprint just like a content change does.
    """
    digest = hashlib.sha256()
    tombstones = {
        role: sorted((target, doc) for target, doc in marks)
        for role, marks in segment.get("tombstones", {}).items()
        if marks
    }
    header = (
        f"{segment['id']};{segment['kind']};{segment['codec']};"
        f"{json.dumps(tombstones, sort_keys=True)}"
    )
    digest.update(header.encode("utf-8"))
    for file_name in sorted(segment["files"]):
        digest.update(file_name.encode("utf-8"))
        digest.update(segment["files"][file_name]["sha256"].encode("ascii"))
    return digest.hexdigest()[:16]


def manifest_version(manifest: Mapping[str, Any]) -> int:
    """The manifest version (pre-v3 manifests count as version 1)."""
    return manifest.get("version", 1)


def manifest_segments(manifest: Mapping[str, Any]) -> list[dict[str, Any]]:
    """The ordered segment records, normalising pre-v3 manifests.

    A v1/v2 manifest — one build-once set of artifacts at the directory
    root — is presented as a single synthetic base segment
    (:data:`LEGACY_SEGMENT_ID`, ``path=""``) whose file map is the
    manifest's own minus the vocabulary, so the loader and verifier have
    exactly one code path over both generations.
    """
    if manifest["schema"] == WORKSPACE_SCHEMA_V3:
        return [dict(segment) for segment in manifest["segments"]]
    vocabulary = manifest.get("vocabulary")
    files = {
        name: dict(entry)
        for name, entry in manifest["files"].items()
        if name != vocabulary
    }
    segment = {
        "id": LEGACY_SEGMENT_ID,
        "kind": "base",
        "path": "",
        "codec": manifest_codec(manifest),
        "collections": {
            role: dict(entry) for role, entry in manifest["collections"].items()
        },
        "tombstones": {},
        "files": files,
    }
    segment["fingerprint"] = segment_fingerprint(segment)
    return [segment]


def manifest_files(manifest: Mapping[str, Any]) -> dict[str, dict[str, Any]]:
    """Every checksummed file of the workspace, across all segments."""
    files = {name: dict(entry) for name, entry in manifest["files"].items()}
    for segment in manifest.get("segments", ()):
        files.update(
            {name: dict(entry) for name, entry in segment["files"].items()}
        )
    return files


__all__ = [
    "ACCEPTED_SCHEMAS",
    "LEGACY_SEGMENT_ID",
    "MANIFEST_NAME",
    "SEGMENT_KINDS",
    "VOCABULARY_NAME",
    "WORKSPACE_SCHEMA",
    "WORKSPACE_SCHEMA_V1",
    "WORKSPACE_SCHEMA_V3",
    "build_manifest",
    "file_checksum",
    "load_manifest",
    "manifest_codec",
    "manifest_files",
    "manifest_fingerprint",
    "manifest_segments",
    "manifest_version",
    "save_manifest",
    "segment_fingerprint",
    "validate_manifest",
]
