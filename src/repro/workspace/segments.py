"""Segmented workspaces: per-segment artifacts and the merged live view.

A v3 workspace is an ordered list of segments — immutable *base*
segments plus at most one trailing mutable *delta* — each holding its
own Section 3 physical artifacts (packed d-cells, inverted extent,
B+-tree leaves) in the workspace codec of its write time.  Deletes are
tombstones: a later segment marks ``(earlier_segment, local_doc)``
pairs dead without touching the earlier segment's files.

This module is the segment layer's mechanics:

* :func:`write_segment` persists one segment directory from in-memory
  collections (the mutation path's workhorse);
* :func:`load_segment` reads one segment back, re-raising any artifact
  error with the segment id prefixed so a corrupt multi-segment
  workspace names the failing segment alongside the file/record/byte
  detail;
* :func:`merged_view` folds the loaded segments into one logical
  collection + inverted file + term tree per role.  Live documents are
  renumbered ``0..N-1`` in (segment, local) order and the per-term
  posting runs concatenate in that same order
  (:func:`repro.index.inverted.merge_inverted_segments`), so the merged
  artifacts are **value-identical to a cold rebuild** from the live
  document set — which is exactly why everything downstream (operators,
  kernels, IOStats, SQL rows) cannot tell the difference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.core.environment import EnvironmentSpec
from repro.errors import ReproError, WorkspaceError
from repro.index.bptree import BPlusTree
from repro.index.btree_io import load_btree, save_btree
from repro.index.codecs import resolve_codec
from repro.index.inverted import InvertedFile, merge_inverted_segments
from repro.text.collection import DocumentCollection
from repro.text.document import Document
from repro.text.serialization import (
    load_collection,
    load_inverted,
    save_collection,
    save_inverted,
)
from repro.workspace.builder import collection_files
from repro.workspace.manifest import file_checksum, segment_fingerprint


def segment_directory(directory: str | Path, record: Mapping[str, Any]) -> Path:
    """Where one segment's files live (the workspace root for ``path=""``)."""
    directory = Path(directory)
    path = record.get("path", "")
    return directory / path if path else directory


def collection_stats(collection: DocumentCollection) -> dict[str, Any]:
    """The manifest statistics block for one collection."""
    return {
        "name": collection.name,
        "n_documents": collection.n_documents,
        "avg_terms_per_doc": float(collection.avg_terms_per_document),
        "n_distinct_terms": collection.n_distinct_terms,
        "total_bytes": collection.total_bytes,
    }


@dataclass
class LoadedSegment:
    """One segment's record plus its materialised per-role artifacts."""

    record: dict[str, Any]
    collections: dict[str, DocumentCollection] = field(default_factory=dict)
    inverted: dict[str, InvertedFile] = field(default_factory=dict)
    btrees: dict[str, BPlusTree] = field(default_factory=dict)

    @property
    def segment_id(self) -> str:
        return self.record["id"]


def _reraise_with_segment(seg_id: str, exc: ReproError) -> None:
    """Prefix the segment id onto an artifact error, keeping its type.

    The narrow types (``DocumentFormatError`` with byte offsets,
    ``BPlusTreeError`` with node context...) carry the detail callers
    rely on, so the original class is preserved where its constructor
    allows; anything fancier degrades to :class:`WorkspaceError`.
    """
    message = f"segment {seg_id!r}: {exc}"
    try:
        wrapped = type(exc)(message)
    except TypeError:
        wrapped = WorkspaceError(message)
    raise wrapped from exc


def load_segment(
    directory: str | Path,
    record: Mapping[str, Any],
    *,
    btree_order: int,
) -> LoadedSegment:
    """Read one segment's artifacts for every role it carries.

    Any :class:`~repro.errors.ReproError` from the artifact readers is
    re-raised with the segment id prefixed — a multi-segment workspace
    that fails to load must say *which* segment is at fault, not just
    which file.
    """
    seg_id = record["id"]
    seg_dir = segment_directory(directory, record)
    codec = resolve_codec(record["codec"])
    loaded = LoadedSegment(record=dict(record))
    for role, entry in sorted(record["collections"].items()):
        name = entry["name"]
        try:
            collection = load_collection(name, seg_dir)
            if collection.n_documents != entry["n_documents"]:
                raise WorkspaceError(
                    f"collection {name!r} loads {collection.n_documents} "
                    f"documents, the segment records {entry['n_documents']}"
                )
            inverted = load_inverted(name, seg_dir, codec=codec)
            btree = load_btree(seg_dir / f"{name}.btree")
            if btree.order != btree_order:
                raise WorkspaceError(
                    f"{name}.btree stores order {btree.order}, the workspace "
                    f"uses {btree_order}"
                )
        except ReproError as exc:
            _reraise_with_segment(seg_id, exc)
        except OSError as exc:
            # A vanished or unreadable artifact has no ReproError type of
            # its own; still name the segment at fault.
            raise WorkspaceError(f"segment {seg_id!r}: {exc}") from exc
        loaded.collections[role] = collection
        loaded.inverted[role] = inverted
        loaded.btrees[role] = btree
    return loaded


def write_segment(
    directory: str | Path,
    seg_id: str,
    collections: Mapping[str, DocumentCollection],
    tombstones: Mapping[str, list[tuple[str, int]]],
    spec: EnvironmentSpec,
    *,
    kind: str = "delta",
    clamp_weights: bool = False,
) -> dict[str, Any]:
    """Persist one segment directory and return its manifest record.

    Roles with zero documents are omitted entirely (a fresh inversion
    of nothing writes nothing); tombstones are metadata, so a pure
    delete batch can produce a segment with tombstones and no files.
    """
    directory = Path(directory)
    seg_dir = directory / seg_id
    if seg_dir.exists():
        # A crashed earlier mutation may have left a half-written
        # directory under this (never-referenced) id; start clean.
        import shutil

        shutil.rmtree(seg_dir)
    seg_dir.mkdir(parents=True)
    codec = resolve_codec(spec.codec)

    record_collections: dict[str, Any] = {}
    file_names: list[str] = []
    for role, collection in sorted(collections.items()):
        if collection.n_documents == 0:
            continue
        save_collection(collection, seg_dir, clamp_weights=clamp_weights)
        inverted = codec.build(InvertedFile.build(collection))
        save_inverted(inverted, seg_dir, clamp_weights=clamp_weights, codec=codec)
        btree = BPlusTree.bulk_load(
            [
                (entry.term, (record_id, entry.document_frequency))
                for record_id, entry in enumerate(inverted.entries)
            ],
            order=spec.btree_order,
        )
        save_btree(btree, seg_dir / f"{collection.name}.btree")
        file_names.extend(collection_files(collection.name))
        record_collections[role] = collection_stats(collection)

    files = {
        f"{seg_id}/{file_name}": {
            "bytes": (seg_dir / file_name).stat().st_size,
            "sha256": file_checksum(seg_dir / file_name),
        }
        for file_name in file_names
    }
    record = {
        "id": seg_id,
        "kind": kind,
        "path": seg_id,
        "codec": spec.codec,
        "collections": record_collections,
        "tombstones": {
            role: [[target, doc] for target, doc in marks]
            for role, marks in sorted(tombstones.items())
            if marks
        },
        "files": files,
    }
    record["fingerprint"] = segment_fingerprint(record)
    return record


def tombstones_by_target(
    records: list[Mapping[str, Any]],
) -> dict[tuple[str, str], set[int]]:
    """``{(role, target_segment_id): {local_doc, ...}}`` across all segments."""
    dead: dict[tuple[str, str], set[int]] = {}
    for record in records:
        for role, marks in record.get("tombstones", {}).items():
            for target, local_doc in marks:
                dead.setdefault((role, target), set()).add(local_doc)
    return dead


@dataclass
class MergedSide:
    """One role's merged live view plus per-segment bookkeeping."""

    collection: DocumentCollection
    inverted: InvertedFile
    btree: BPlusTree
    #: per segment id: how many of its documents are live / tombstoned
    live_by_segment: dict[str, int]
    dead_by_segment: dict[str, int]
    #: ``{(segment_id, local_doc): global_doc}`` for every live document
    global_ids: dict[tuple[str, int], int]


def merged_view(
    role: str,
    name: str,
    segments: list[LoadedSegment],
    spec: EnvironmentSpec,
) -> MergedSide:
    """Fold the loaded segments into one logical side.

    Value-identical to cold construction over the live documents: the
    collection renumbers live docs in (segment, local) order, the
    inverted file is the order-preserving posting merge re-encoded in
    the workspace codec, and the term tree is a fresh bulk load at the
    workspace order — the same recipe
    :class:`~repro.core.environment.EnvironmentFactory` uses.
    """
    dead = tombstones_by_target([segment.record for segment in segments])
    docs: list[Document] = []
    parts: list[tuple[InvertedFile, dict[int, int]]] = []
    live_by_segment: dict[str, int] = {}
    dead_by_segment: dict[str, int] = {}
    global_ids: dict[tuple[str, int], int] = {}
    for segment in segments:
        seg_id = segment.segment_id
        collection = segment.collections.get(role)
        if collection is None:
            continue
        dead_locals = dead.get((role, seg_id), set())
        doc_map: dict[int, int] = {}
        for doc in collection:
            if doc.doc_id in dead_locals:
                continue
            global_id = len(docs)
            doc_map[doc.doc_id] = global_id
            global_ids[(seg_id, doc.doc_id)] = global_id
            docs.append(Document(global_id, doc.cells))
        live_by_segment[seg_id] = len(doc_map)
        dead_by_segment[seg_id] = len(dead_locals)
        parts.append((segment.inverted[role], doc_map))

    merged_collection = DocumentCollection(name, docs)
    codec = resolve_codec(spec.codec)
    merged_inverted = codec.build(merge_inverted_segments(name, parts))
    merged_btree = BPlusTree.bulk_load(
        [
            (entry.term, (record_id, entry.document_frequency))
            for record_id, entry in enumerate(merged_inverted.entries)
        ],
        order=spec.btree_order,
    )
    return MergedSide(
        collection=merged_collection,
        inverted=merged_inverted,
        btree=merged_btree,
        live_by_segment=live_by_segment,
        dead_by_segment=dead_by_segment,
        global_ids=global_ids,
    )


__all__ = [
    "LoadedSegment",
    "MergedSide",
    "collection_stats",
    "load_segment",
    "merged_view",
    "segment_directory",
    "tombstones_by_target",
    "write_segment",
]
