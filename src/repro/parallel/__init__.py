"""Partitioned (sharded) join execution with exact top-``lambda`` merge.

The package splits one side of a text join into contiguous document
shards (:mod:`repro.core.shards`), runs the unmodified streaming
operators once per shard — in-process or on a process pool — and merges
the per-shard results into output byte-identical to a sequential run.
"""

from repro.parallel.merge import (
    check_outcomes,
    merge_io,
    merge_matches,
    merge_phase_stats,
)
from repro.parallel.runner import ShardedJoinResult, run_sharded
from repro.parallel.tasks import ShardOutcome, ShardTask
from repro.parallel.worker import run_shard_task

__all__ = [
    "ShardOutcome",
    "ShardTask",
    "ShardedJoinResult",
    "check_outcomes",
    "merge_io",
    "merge_matches",
    "merge_phase_stats",
    "run_shard_task",
    "run_sharded",
]
