"""The shard worker: a pure function of its task.

:func:`run_shard_task` is the function handed to the process pool, and
it is written to the RA-PAR-SAFE contract the whole-program analysis
enforces (:mod:`repro.analysis.rules.parallel_safety`):

* it is a **module-level function** of one picklable argument;
* it **builds all execution state locally** — the environment (fresh
  simulated disk and root :class:`~repro.storage.iostats.IOStats` per
  :meth:`~repro.core.environment.EnvironmentFactory.create`) and a
  private :class:`~repro.exec.context.ExecutionContext` holding the
  shard's slice of the page budget;
* it **returns** everything the parent needs — it never writes module
  state, keeps no cache, and the I/O counters it ships back are
  observer-free snapshots.

Workspace-backed tasks warm-load their factory inside the child
(:func:`~repro.workspace.loader.load_workspace`), so a worker over a
persisted dataset performs **zero** derivation work — the
``derivation_events`` field of the outcome proves it per shard.
"""

from __future__ import annotations

from repro.core.shards import run_shard
from repro.exec.context import ExecutionBudget, ExecutionContext
from repro.parallel.tasks import ShardOutcome, ShardTask
from repro.workspace.loader import load_workspace


def run_shard_task(task: ShardTask) -> ShardOutcome:
    """Execute one shard against its own environment and context."""
    factory = task.factory
    if factory is None:
        factory = load_workspace(task.workspace)
    derivations_before = len(factory.derivation_events())
    environment = factory.create()
    context = ExecutionContext(
        budget=ExecutionBudget(
            pages=task.budget_pages, seconds=task.budget_seconds
        )
    )
    result = run_shard(
        task.algorithm,
        environment,
        task.spec,
        task.system,
        task.shard,
        outer_ids=task.outer_ids,
        inner_ids=task.inner_ids,
        interference=task.interference,
        delta=task.delta,
        context=context,
    )
    return ShardOutcome(
        index=task.shard.index,
        algorithm=result.algorithm,
        matches=result.matches,
        io=result.io.snapshot(),
        phase_stats={
            name: stats.snapshot()
            for name, stats in context.phase_stats.items()
        },
        extras=dict(result.extras),
        pages_used=context.pages_used,
        blocks_emitted=context.blocks_emitted,
        derivation_events=len(factory.derivation_events()) - derivations_before,
    )


__all__ = ["run_shard_task"]
