"""Picklable units of sharded work and their results.

A :class:`ShardTask` is everything one pool child needs to run one shard
— algorithm, join spec, system parameters, the shard's document slice,
the per-shard budget, and a *source* for the dataset (a workspace
directory to warm-load, or a pickled
:class:`~repro.core.environment.EnvironmentFactory`).  It deliberately
carries **no** live execution state: no disk, no
:class:`~repro.storage.iostats.IOStats`, no context — each worker builds
its own, which is what makes the fan-out RA-PAR-SAFE-clean.

A :class:`ShardOutcome` is the mirror image coming back: the shard's
matches, its private I/O counters (snapshots, so no observers cross the
process boundary) and enough accounting for the parent to merge and to
prove the workspace path did zero derivation work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.environment import EnvironmentFactory
from repro.core.join import TextJoinSpec
from repro.core.shards import ShardSpec
from repro.cost.params import SystemParams
from repro.errors import ParallelExecutionError
from repro.storage.iostats import IOStats


@dataclass(frozen=True)
class ShardTask:
    """One shard's complete, picklable work order."""

    algorithm: str
    spec: TextJoinSpec
    system: SystemParams
    shard: ShardSpec
    outer_ids: tuple[int, ...] | None = None
    inner_ids: tuple[int, ...] | None = None
    interference: bool = False
    delta: float = 0.1
    #: per-shard slice of the parent's page budget (None = unlimited)
    budget_pages: int | None = None
    #: shared wall-clock deadline in seconds (None = unlimited)
    budget_seconds: float | None = None
    #: workspace directory the worker warm-loads (zero derivation)
    workspace: str | None = None
    #: pre-built factory shipped by value when no workspace backs the data
    factory: EnvironmentFactory | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if (self.workspace is None) == (self.factory is None):
            raise ParallelExecutionError(
                "a shard task needs exactly one dataset source: "
                "a workspace directory or an environment factory"
            )


@dataclass(frozen=True)
class ShardOutcome:
    """What one shard worker hands back to the parent."""

    index: int
    algorithm: str
    #: outer doc -> ranked (inner doc, similarity) hits, ascending outer
    matches: dict[int, list[tuple[int, float]]]
    #: the shard's private I/O counter (an observer-free snapshot)
    io: IOStats
    #: per-phase I/O buckets from the shard's own execution context
    phase_stats: dict[str, IOStats]
    #: the operator's extras, verbatim
    extras: dict[str, Any]
    #: pages the shard's context counted (its budget accounting)
    pages_used: int
    #: match blocks the shard's operator emitted
    blocks_emitted: int
    #: expensive derivations this shard paid for (0 on the workspace path)
    derivation_events: int


__all__ = ["ShardOutcome", "ShardTask"]
