"""Exact merge of per-shard results.

The merge is where sharded execution earns its "byte-identical" claim:

* **Matches.**  Every outer document's global top-``lambda`` set is a
  subset of the union of its per-shard top-``lambda`` sets (dropping
  candidates from a shard can only *remove* competitors, so a global
  survivor survives its own shard), and
  :meth:`~repro.core.topk.TopK.merge` re-ranks that union under the
  same ``(similarity desc, doc id asc)`` total order every operator
  uses.  Per-pair similarities are bit-identical across shard counts
  (see :mod:`repro.core.shards`), so the merged lists equal a
  sequential run's lists exactly — values, ordering and all.
* **I/O.**  Shard counters are disjoint (each worker owns a fresh
  disk), so :meth:`~repro.storage.iostats.IOStats.merge` makes the
  global counter the exact key-wise sum of the per-shard counters: the
  additivity invariant the conformance and property suites pin.  The
  merge itself reads no pages.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.join import TextJoinSpec
from repro.core.topk import TopK
from repro.errors import ParallelExecutionError
from repro.parallel.tasks import ShardOutcome
from repro.storage.iostats import IOStats


def merge_matches(
    outcomes: Sequence[ShardOutcome], spec: TextJoinSpec
) -> dict[int, list[tuple[int, float]]]:
    """Fold per-shard matches into the exact global top-``lambda`` dict.

    Outer documents come back in ascending id order (the emission order
    every sequential operator uses), and an outer document that matched
    nothing anywhere keeps its empty list — exactly as a sequential run
    reports it.
    """
    trackers: dict[int, TopK] = {}
    for outcome in outcomes:
        for outer_doc, hits in outcome.matches.items():
            shard_tracker = TopK(spec.lam)
            for inner_doc, similarity in hits:
                shard_tracker.offer(inner_doc, similarity)
            tracker = trackers.get(outer_doc)
            if tracker is None:
                trackers[outer_doc] = shard_tracker
            else:
                tracker.merge(shard_tracker)
    return {
        outer_doc: trackers[outer_doc].results()
        for outer_doc in sorted(trackers)
    }


def merge_io(outcomes: Iterable[ShardOutcome]) -> IOStats:
    """The key-wise sum of the shards' private counters."""
    merged = IOStats()
    for outcome in outcomes:
        merged.merge(outcome.io)
    return merged


def merge_phase_stats(outcomes: Iterable[ShardOutcome]) -> dict[str, IOStats]:
    """Per-phase buckets summed across shards (same keys as sequential)."""
    merged: dict[str, IOStats] = {}
    for outcome in outcomes:
        for name, stats in outcome.phase_stats.items():
            merged.setdefault(name, IOStats()).merge(stats)
    return merged


def check_outcomes(outcomes: Sequence[ShardOutcome]) -> None:
    """Reject merge inputs that cannot have come from one shard plan."""
    if not outcomes:
        raise ParallelExecutionError("no shard outcomes to merge")
    indices = sorted(outcome.index for outcome in outcomes)
    if indices != list(range(len(outcomes))):
        raise ParallelExecutionError(
            f"shard outcomes are not a complete plan: indices {indices}"
        )
    algorithms = {outcome.algorithm for outcome in outcomes}
    if len(algorithms) > 1:
        raise ParallelExecutionError(
            f"shard outcomes mix algorithms: {sorted(algorithms)}"
        )


__all__ = [
    "check_outcomes",
    "merge_io",
    "merge_matches",
    "merge_phase_stats",
]
