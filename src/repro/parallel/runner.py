"""Partitioned join execution over a process pool.

:func:`run_sharded` is the orchestration entry point: plan the shards
(:func:`~repro.core.shards.shard_specs`), split the caller's page budget
across them (:meth:`~repro.exec.context.ExecutionBudget.split`), run one
:class:`~repro.parallel.tasks.ShardTask` per shard — in-process when
``jobs <= 1``, on a :class:`~concurrent.futures.ProcessPoolExecutor`
otherwise, reusing the sweep engine's fan-out idiom — and merge the
outcomes exactly (:mod:`repro.parallel.merge`).

The two execution modes are **byte-identical**: the worker is the same
module-level function either way, every shard owns a fresh environment
and context in both modes, and the merge is associative and commutative,
so ``jobs`` changes wall-clock only, never results.  A failed shard
propagates its original exception (budget errors, infeasible memory) and
contributes nothing to the merged counters — the parent only merges
outcomes that completed.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.environment import EnvironmentFactory
from repro.core.join import TextJoinResult, TextJoinSpec
from repro.core.shards import SHARD_AXES, shard_specs
from repro.cost.params import SystemParams
from repro.errors import ParallelExecutionError
from repro.exec.context import ExecutionContext, ensure_context
from repro.exec.stream import MatchBlock
from repro.parallel.merge import (
    check_outcomes,
    merge_io,
    merge_matches,
    merge_phase_stats,
)
from repro.parallel.tasks import ShardOutcome, ShardTask
from repro.parallel.worker import run_shard_task
from repro.storage.iostats import IOStats
from repro.workspace.loader import load_workspace


@dataclass
class ShardedJoinResult:
    """The exact global result plus per-shard provenance.

    ``matches`` and ``io`` are the merged globals; ``shard_outcomes``
    keeps each shard's private matches, counters and operator extras
    (for a single pass-through shard, ``shard_outcomes[0].extras`` *is*
    the sequential run's extras, verbatim).  ``extras`` describes the
    sharding itself.
    """

    algorithm: str
    spec: TextJoinSpec
    matches: dict[int, list[tuple[int, float]]]
    io: IOStats
    phase_stats: dict[str, IOStats]
    shard_outcomes: tuple[ShardOutcome, ...]
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def shards(self) -> int:
        return len(self.shard_outcomes)

    def shard_pages(self) -> list[int]:
        """Total pages each shard read (the measured-cost inputs)."""
        return [outcome.io.total_reads for outcome in self.shard_outcomes]

    def to_text_join_result(self) -> TextJoinResult:
        """The merged result in the sequential result type."""
        return TextJoinResult(
            algorithm=self.algorithm,
            spec=self.spec,
            matches=self.matches,
            io=self.io,
            extras=dict(self.extras),
        )


def run_sharded(
    algorithm: str,
    spec: TextJoinSpec,
    system: SystemParams,
    *,
    factory: EnvironmentFactory | None = None,
    workspace: str | None = None,
    shards: int = 1,
    jobs: int = 0,
    outer_ids: Sequence[int] | None = None,
    inner_ids: Sequence[int] | None = None,
    interference: bool = False,
    delta: float = 0.1,
    context: ExecutionContext | None = None,
) -> ShardedJoinResult:
    """Run one algorithm over ``shards`` partitions and merge exactly.

    Exactly one of ``factory`` / ``workspace`` supplies the dataset.
    With a workspace, each pool child warm-loads its own factory from
    disk (zero derivation, small pickles); with a factory, the factory
    itself is shipped by value.  ``jobs <= 1`` runs the same workers
    in-process, sequentially — the conformance baseline the pool mode
    must match byte-for-byte.

    The parent context's page budget is split across shards and each
    worker enforces its slice locally; the merged blocks are emitted
    through the parent context so hooks and ``blocks_emitted`` see the
    global result.
    """
    if shards < 1:
        raise ParallelExecutionError(
            f"shard count must be >= 1, got {shards}"
        )
    if (workspace is None) == (factory is None):
        raise ParallelExecutionError(
            "run_sharded needs exactly one dataset source: "
            "a workspace directory or an environment factory"
        )
    if algorithm not in SHARD_AXES:
        raise ParallelExecutionError(
            f"unknown algorithm {algorithm!r}; "
            f"sharded execution supports {sorted(SHARD_AXES)}"
        )
    planning_factory = factory if factory is not None else load_workspace(workspace)
    specs = shard_specs(
        algorithm,
        planning_factory,
        shards,
        outer_ids=outer_ids,
        inner_ids=inner_ids,
    )
    if not specs:
        raise ParallelExecutionError(
            "the sharded axis has no participating documents"
        )
    ctx = ensure_context(context)
    budgets = ctx.budget.split(len(specs))
    tasks = [
        ShardTask(
            algorithm=algorithm,
            spec=spec,
            system=system,
            shard=shard,
            outer_ids=None if outer_ids is None else tuple(outer_ids),
            inner_ids=None if inner_ids is None else tuple(inner_ids),
            interference=interference,
            delta=delta,
            budget_pages=budgets[shard.index].pages,
            budget_seconds=budgets[shard.index].seconds,
            workspace=workspace,
            factory=factory,
        )
        for shard in specs
    ]

    outcomes: list[ShardOutcome]
    if jobs <= 1 or len(tasks) == 1:
        outcomes = []
        for task in tasks:
            ctx.checkpoint()
            outcomes.append(run_shard_task(task))
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
            outcomes = list(pool.map(run_shard_task, tasks))
    check_outcomes(outcomes)

    matches = merge_matches(outcomes, spec)
    merged_io = merge_io(outcomes)
    for outer_doc in matches:
        ctx.emit(MatchBlock(outer_doc=outer_doc, matches=tuple(matches[outer_doc])))

    axis = SHARD_AXES[algorithm]
    extras: dict[str, Any] = {
        "sharded": True,
        "shards": len(outcomes),
        "jobs": jobs,
        "axis": axis,
        "per_shard": [
            {
                "index": outcome.index,
                "documents": (
                    None
                    if specs[outcome.index].doc_ids is None
                    else len(specs[outcome.index].doc_ids)
                ),
                "pages": outcome.io.total_reads,
                "pages_used": outcome.pages_used,
                "blocks_emitted": outcome.blocks_emitted,
                "derivation_events": outcome.derivation_events,
            }
            for outcome in outcomes
        ],
    }
    return ShardedJoinResult(
        algorithm=outcomes[0].algorithm,
        spec=spec,
        matches=matches,
        io=merged_io,
        phase_stats=merge_phase_stats(outcomes),
        shard_outcomes=tuple(outcomes),
        extras=extras,
    )


__all__ = ["ShardedJoinResult", "run_sharded"]
