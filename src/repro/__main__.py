"""``python -m repro`` entry point."""

import sys

from repro.cli import main

try:
    code = main()
except BrokenPipeError:
    # stdout was closed early (e.g. piped through `head`); exit quietly
    # like well-behaved Unix tools do.
    import os

    os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    code = 0
sys.exit(code)
