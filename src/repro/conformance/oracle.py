"""Brute-force similarity-join oracle: ground truth for every executor.

The oracle computes ``C1 SIMILAR_TO(lambda) C2`` the slowest, most
obvious way — a dense double loop over pure-python dictionaries, no
simulated disk, no buffers, no inverted files — so that a bug in the
storage stack, the indexes or any executor cannot also hide here.  The
implementation deliberately shares *nothing* with :mod:`repro.core`:
similarities are summed over hash maps rather than the executors'
sorted-merge loops, norms are recomputed from raw cells, and the
top-``lambda`` cut is a full sort rather than a heap.

Semantics mirror :class:`~repro.core.join.TextJoinSpec` exactly:

* per participating outer (C2) document, the up-to-``lambda`` inner
  (C1) documents with the largest strictly positive similarity;
* ties broken toward the smaller inner document number;
* ``normalized=True`` divides each similarity by the product of the two
  documents' Euclidean norms (cosine);
* ``outer_ids`` / ``inner_ids`` restrict the participating documents of
  either side (Section 2 selections).

Similarities over occurrence counts are exact integer sums, so executor
results are expected to match the oracle *bit for bit* (tolerances exist
only for the normalized division).
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.errors import ConformanceError
from repro.text.collection import DocumentCollection
from repro.text.document import Document

Matches = dict[int, list[tuple[int, float]]]


def oracle_similarity(doc1: Document, doc2: Document) -> float:
    """Inner product of occurrence counts, via a hash map.

    Independent of :func:`repro.text.similarity.dot_product` (which
    merges the sorted d-cell lists): one side becomes a dictionary, the
    other is probed against it.
    """
    counts: dict[int, int] = {term: weight for term, weight in doc1.cells}
    total = 0
    for term, weight in doc2.cells:
        other = counts.get(term)
        if other is not None:
            total += weight * other
    return float(total)


def oracle_norm(doc: Document) -> float:
    """Euclidean norm recomputed from the raw cells (no caching)."""
    return math.sqrt(sum(weight * weight for _, weight in doc.cells))


def _participants(
    ids: Sequence[int] | None, collection: DocumentCollection, label: str
) -> list[int]:
    if ids is None:
        return list(range(collection.n_documents))
    unique = sorted(set(ids))
    if len(unique) != len(ids):
        raise ConformanceError(f"{label} contains duplicates")
    if unique and (unique[0] < 0 or unique[-1] >= collection.n_documents):
        raise ConformanceError(
            f"{label} out of range 0..{collection.n_documents - 1}"
        )
    return unique


def oracle_join(
    collection1: DocumentCollection,
    collection2: DocumentCollection,
    *,
    lam: int,
    normalized: bool = False,
    outer_ids: Sequence[int] | None = None,
    inner_ids: Sequence[int] | None = None,
) -> Matches:
    """The ground-truth match set, in the executors' result shape.

    Returns ``{outer doc id: [(inner doc id, similarity), ...]}`` with
    every participating outer document present (an empty list when
    nothing matches), each list best-first with ties by ascending inner
    document id — the exact shape and order of
    :attr:`~repro.core.join.TextJoinResult.matches`.
    """
    if lam <= 0:
        raise ConformanceError(f"lambda must be positive, got {lam}")
    outer_docs = _participants(outer_ids, collection2, "outer_ids")
    inner_docs = _participants(inner_ids, collection1, "inner_ids")

    matches: Matches = {}
    for outer_id in outer_docs:
        outer_doc = collection2.documents[outer_id]
        candidates: list[tuple[int, float]] = []
        for inner_id in inner_docs:
            inner_doc = collection1.documents[inner_id]
            similarity = oracle_similarity(inner_doc, outer_doc)
            if similarity <= 0.0:
                continue
            if normalized:
                similarity = similarity / (
                    oracle_norm(inner_doc) * oracle_norm(outer_doc)
                )
            candidates.append((inner_id, similarity))
        candidates.sort(key=lambda pair: (-pair[1], pair[0]))
        matches[outer_id] = candidates[:lam]
    return matches


def compare_matches(
    expected: Matches,
    actual: Mapping[int, Sequence[tuple[int, float]]],
    *,
    tolerance: float = 1e-9,
) -> str | None:
    """First discrepancy between two match sets, or None when equal.

    Order-sensitive within each outer document's list (rank matters) and
    exact on document ids; similarities compare within ``tolerance``.
    The returned string names the outer document and the first differing
    pair, so a divergence report pinpoints the failure.
    """
    missing = sorted(set(expected) - set(actual))
    if missing:
        return f"outer documents missing from result: {missing[:5]}"
    extra = sorted(set(actual) - set(expected))
    if extra:
        return f"unexpected outer documents in result: {extra[:5]}"
    for outer_id in sorted(expected):
        want, got = expected[outer_id], list(actual[outer_id])
        if len(want) != len(got):
            return (
                f"outer doc {outer_id}: expected {len(want)} matches, "
                f"got {len(got)}"
            )
        for rank, ((d_w, s_w), (d_g, s_g)) in enumerate(zip(want, got), 1):
            if d_w != d_g:
                return (
                    f"outer doc {outer_id} rank {rank}: expected inner doc "
                    f"{d_w} (sim {s_w:.6g}), got {d_g} (sim {s_g:.6g})"
                )
            if abs(s_w - s_g) > tolerance:
                return (
                    f"outer doc {outer_id} rank {rank} (inner doc {d_w}): "
                    f"similarity {s_g!r} differs from expected {s_w!r}"
                )
    return None


__all__ = [
    "Matches",
    "compare_matches",
    "oracle_join",
    "oracle_norm",
    "oracle_similarity",
]
