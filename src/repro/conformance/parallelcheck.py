"""Parallel-equivalence conformance: sharding changes nothing.

The sharded execution contract (:mod:`repro.parallel`) is *exact*
equivalence: partitioning a join across shards and merging the partial
top-``lambda`` trackers must reproduce the sequential run byte for byte
— the same match sets, the same similarity values, the same ordering,
with no extras and no omissions.  Each trial draws a random
:class:`~repro.conformance.trials.TrialConfig` and cross-examines every
executor against sharded runs at several shard counts, checking on top:

* **single-shard identity** — ``shards=1`` is a pass-through, so even
  the per-extent I/O counters and the operator extras must equal the
  sequential run exactly;
* **I/O additivity** — the merged counter must be the key-wise sum of
  the per-shard counters (the merge itself reads nothing).

The ``runner`` hook is the injection point for mutation tests — a
corrupting runner (e.g. one that drops a shard's matches) must surface
as a divergence, proving the harness can actually catch a broken merge.

Infeasibility policy: a trial whose sequential run raises
:class:`~repro.errors.InsufficientMemoryError` is a skip — sharding
shrinks per-run working sets (VVM shards may fit where the sequential
accumulator does not), so sharded feasibility under sequential
infeasibility is a feature, not a divergence.  The reverse — a shard
failing where the sequential run fits — *is* a divergence.
"""

from __future__ import annotations

import random
from typing import Callable, Mapping, Sequence

from repro.conformance.differential import (
    DifferentialOutcome,
    Divergence,
    _io_mismatch,
)
from repro.conformance.trials import (
    DEFAULT_EXECUTORS,
    ExecutorFn,
    TrialConfig,
    random_trial_config,
)
from repro.core.environment import EnvironmentFactory, EnvironmentSpec
from repro.errors import InsufficientMemoryError
from repro.parallel.runner import ShardedJoinResult, run_sharded
from repro.storage.iostats import IOStats

#: shard counts every trial exercises (1 = the pass-through identity)
SHARD_COUNTS = (1, 2, 3)

#: how a trial runs one sharded join; the mutation-test injection point
ShardedRunnerFn = Callable[
    [str, TrialConfig, EnvironmentFactory, int], ShardedJoinResult
]


def _default_runner(
    algorithm: str,
    config: TrialConfig,
    factory: EnvironmentFactory,
    shards: int,
) -> ShardedJoinResult:
    """Run one sharded join with the trial's full parameter set."""
    return run_sharded(
        algorithm,
        config.join_spec(),
        config.system(),
        factory=factory,
        shards=shards,
        outer_ids=config.outer_selection,
        inner_ids=config.inner_selection,
        interference=config.interference,
        delta=config.delta,
    )


def _match_mismatch(sequential: "object", sharded: ShardedJoinResult) -> str | None:
    """Describe the first match disagreement, or None when identical."""
    if sequential.matches == sharded.matches:
        return None
    missing = set(sequential.matches) ^ set(sharded.matches)
    if missing:
        return (
            f"outer documents differ (symmetric difference {sorted(missing)})"
        )
    for outer_doc, hits in sequential.matches.items():
        if sharded.matches[outer_doc] != hits:
            return (
                f"matches for outer {outer_doc} differ: "
                f"sequential={hits} sharded={sharded.matches[outer_doc]}"
            )
    return "matches dicts differ"


def _additivity_mismatch(sharded: ShardedJoinResult) -> str | None:
    """The merged counter must be the key-wise sum of the shard counters."""
    summed = IOStats()
    for outcome in sharded.shard_outcomes:
        summed.merge(outcome.io)
    detail = _io_mismatch(summed, sharded.io)
    if detail is None:
        return None
    return f"merged I/O is not the sum of per-shard I/O: {detail}"


def run_parallel_equivalence(
    seed: int,
    trials: int,
    *,
    executors: Mapping[str, ExecutorFn] | None = None,
    runner: ShardedRunnerFn | None = None,
    shard_counts: Sequence[int] = SHARD_COUNTS,
    fail_fast: bool = False,
) -> DifferentialOutcome:
    """Prove sharded execution equals sequential execution exactly."""
    executors = DEFAULT_EXECUTORS if executors is None else executors
    runner = _default_runner if runner is None else runner
    rng = random.Random(seed)
    outcome = DifferentialOutcome(seed=seed, trials_requested=trials)

    for trial in range(trials):
        config = random_trial_config(rng, trial)
        c1, c2 = config.build_collections()
        factory = EnvironmentFactory(
            c1,
            None if config.self_join else c2,
            spec=EnvironmentSpec(page_bytes=config.page_bytes),
        )
        outcome.trials_run += 1

        for name, executor in executors.items():
            try:
                sequential = executor(config.build_environment(), config)
            except InsufficientMemoryError:
                outcome.skips[name] = outcome.skips.get(name, 0) + 1
                continue

            for shards in shard_counts:
                outcome.comparisons += 1
                detail: str | None
                try:
                    sharded = runner(name, config, factory, shards)
                except InsufficientMemoryError:
                    detail = (
                        f"insufficient memory at shards={shards} although "
                        "the sequential run fits"
                    )
                else:
                    detail = _match_mismatch(sequential, sharded)
                    if detail is None:
                        detail = _additivity_mismatch(sharded)
                    if detail is None and shards == 1:
                        detail = _io_mismatch(sequential.io, sharded.io)
                        if detail is None:
                            first = sharded.shard_outcomes[0]
                            if first.extras != sequential.extras:
                                detail = (
                                    "pass-through extras differ: "
                                    f"sequential={sequential.extras} "
                                    f"sharded={first.extras}"
                                )
                if detail is not None:
                    outcome.divergences.append(
                        Divergence(
                            check="parallel-equivalence",
                            executor=name,
                            trial=trial,
                            detail=f"shards={shards}: {detail}",
                            reproduction=config.reproduction(),
                        )
                    )
        if fail_fast and outcome.divergences:
            break
    return outcome


__all__ = [
    "SHARD_COUNTS",
    "ShardedRunnerFn",
    "run_parallel_equivalence",
]
