"""Differential, metamorphic and cost conformance for the join stack.

This package cross-examines every execution path of the reproduction —
the three executors (HHNL, HVNL, VVM), the SQL pipeline and the Section
5 cost models — against independent ground truth:

* :mod:`~repro.conformance.oracle` — a brute-force executor that shares
  no code with the production stack;
* :mod:`~repro.conformance.differential` — randomized workloads where
  every path must reproduce the oracle's match set exactly;
* :mod:`~repro.conformance.metamorphic` — invariants between *related*
  runs (lambda/buffer monotonicity, term permutation, document
  duplication, normalized-vs-raw consistency) that catch bugs an oracle
  sharing the same mistake could not;
* :mod:`~repro.conformance.costcheck` — measured I/O versus the
  analytical ``hhs/hvs/vvs`` (and worst-case) formulas, plus
  trace-shape assertions on the recorded access patterns;
* :mod:`~repro.conformance.workspace` — save → load → join through a
  :mod:`repro.workspace` directory must equal the all-in-memory join
  exactly (matches, per-extent I/O counters and extras);
* :mod:`~repro.conformance.incrementalcheck` — a workspace grown
  through delta-segment mutations, freezes and compactions must equal
  a cold rebuild of its final live documents exactly, sequentially,
  per kernel backend and through the sharded path.

:func:`~repro.conformance.runner.run_conformance` drives everything and
emits the schema-tagged JSON report consumed by CI; the ``repro
conformance`` CLI subcommand is a thin wrapper around it.
"""

from repro.conformance.costcheck import (
    CostCheckOutcome,
    CostCheckRow,
    CostToleranceSpec,
    run_costcheck,
)
from repro.conformance.differential import (
    DifferentialOutcome,
    Divergence,
    SQL_PATH,
    run_differential,
    run_streaming_equivalence,
    sql_join_matches,
)
from repro.conformance.metamorphic import (
    INVARIANTS,
    MetamorphicOutcome,
    run_metamorphic,
)
from repro.conformance.oracle import (
    Matches,
    compare_matches,
    oracle_join,
    oracle_norm,
    oracle_similarity,
)
from repro.conformance.report import (
    CHECK_NAMES,
    REPORT_SCHEMA,
    build_report,
    load_report,
    save_report,
    validate_report,
)
from repro.conformance.incrementalcheck import (
    INCREMENTAL_SHARD_COUNTS,
    run_incremental_equivalence,
)
from repro.conformance.kernelcheck import (
    KERNEL_SHARD_COUNTS,
    REFERENCE_KERNEL,
    run_kernel_equivalence,
)
from repro.conformance.parallelcheck import (
    SHARD_COUNTS,
    ShardedRunnerFn,
    run_parallel_equivalence,
)
from repro.conformance.runner import run_conformance
from repro.conformance.workspace import LoaderFn, run_workspace_roundtrip
from repro.conformance.trials import (
    DEFAULT_EXECUTORS,
    DEFAULT_STREAMERS,
    ExecutorFn,
    StreamerFn,
    TrialConfig,
    random_trial_config,
)

__all__ = [
    "CHECK_NAMES",
    "CostCheckOutcome",
    "CostCheckRow",
    "CostToleranceSpec",
    "DEFAULT_EXECUTORS",
    "DEFAULT_STREAMERS",
    "DifferentialOutcome",
    "Divergence",
    "ExecutorFn",
    "StreamerFn",
    "INVARIANTS",
    "LoaderFn",
    "Matches",
    "MetamorphicOutcome",
    "REPORT_SCHEMA",
    "SHARD_COUNTS",
    "SQL_PATH",
    "ShardedRunnerFn",
    "TrialConfig",
    "build_report",
    "compare_matches",
    "load_report",
    "oracle_join",
    "oracle_norm",
    "oracle_similarity",
    "random_trial_config",
    "run_conformance",
    "run_costcheck",
    "run_differential",
    "run_metamorphic",
    "INCREMENTAL_SHARD_COUNTS",
    "KERNEL_SHARD_COUNTS",
    "REFERENCE_KERNEL",
    "run_incremental_equivalence",
    "run_kernel_equivalence",
    "run_parallel_equivalence",
    "run_streaming_equivalence",
    "run_workspace_roundtrip",
    "save_report",
    "sql_join_matches",
    "validate_report",
]
