"""Orchestrate the conformance checks into one report.

:func:`run_conformance` is the single entry point behind both the
``repro conformance`` CLI subcommand and the pytest suites: it runs the
selected checks (all eight by default) with a shared seed and trial
count, then folds the outcomes into a schema-tagged report dictionary
(:mod:`repro.conformance.report`).
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.conformance.costcheck import CostToleranceSpec, run_costcheck
from repro.conformance.differential import run_differential, run_streaming_equivalence
from repro.conformance.metamorphic import run_metamorphic
from repro.conformance.incrementalcheck import run_incremental_equivalence
from repro.conformance.kernelcheck import run_kernel_equivalence
from repro.conformance.parallelcheck import run_parallel_equivalence
from repro.conformance.report import CHECK_NAMES, build_report
from repro.conformance.trials import ExecutorFn
from repro.conformance.workspace import run_workspace_roundtrip
from repro.errors import ConformanceError


def run_conformance(
    seed: int = 0,
    trials: int = 25,
    *,
    checks: Sequence[str] | None = None,
    executors: Mapping[str, ExecutorFn] | None = None,
    include_sql: bool = True,
    tolerance: float = 1e-9,
    cost_tolerance: CostToleranceSpec | None = None,
) -> dict[str, Any]:
    """Run the selected conformance checks and return the report dict.

    ``checks`` is a subset of :data:`~repro.conformance.report.CHECK_NAMES`
    (order and duplicates are ignored); unknown names raise
    :class:`~repro.errors.ConformanceError` rather than silently passing.
    """
    selected = set(CHECK_NAMES) if checks is None else set(checks)
    unknown = sorted(selected - set(CHECK_NAMES))
    if unknown:
        raise ConformanceError(
            f"unknown conformance checks: {unknown}; "
            f"valid names are {list(CHECK_NAMES)}"
        )
    if trials <= 0:
        raise ConformanceError(f"trials must be positive, got {trials}")

    sections: dict[str, dict[str, Any]] = {}
    if "differential" in selected:
        sections["differential"] = run_differential(
            seed,
            trials,
            executors=executors,
            include_sql=include_sql,
            tolerance=tolerance,
        ).to_dict()
    if "metamorphic" in selected:
        sections["metamorphic"] = run_metamorphic(
            seed, trials, executors=executors, tolerance=tolerance
        ).to_dict()
    if "costcheck" in selected:
        sections["costcheck"] = run_costcheck(
            seed, trials, executors=executors, tolerance=cost_tolerance
        ).to_dict()
    if "streaming-equivalence" in selected:
        sections["streaming-equivalence"] = run_streaming_equivalence(
            seed, trials, executors=executors
        ).to_dict()
    if "workspace-roundtrip" in selected:
        sections["workspace-roundtrip"] = run_workspace_roundtrip(
            seed, trials, executors=executors
        ).to_dict()
    if "parallel-equivalence" in selected:
        sections["parallel-equivalence"] = run_parallel_equivalence(
            seed, trials, executors=executors
        ).to_dict()
    if "kernel-equivalence" in selected:
        sections["kernel-equivalence"] = run_kernel_equivalence(
            seed, trials, executors=executors
        ).to_dict()
    if "incremental-equivalence" in selected:
        sections["incremental-equivalence"] = run_incremental_equivalence(
            seed, trials, executors=executors
        ).to_dict()
    return build_report(seed, trials, sections)


__all__ = ["run_conformance"]
