"""Incremental-equivalence conformance: mutations change nothing but data.

The segmented workspace (:mod:`repro.workspace.mutate`) promises that a
workspace grown through an arbitrary interleaving of mutation batches,
delta freezes and compactions is *indistinguishable* from a workspace
built cold from the final live document set: identical matches,
identical similarities, identical per-extent
:class:`~repro.storage.iostats.IOStats` and identical executor extras,
because the merged multi-segment view renumbers and re-derives exactly
what a cold build would.

Each trial draws a random :class:`~repro.conformance.trials.TrialConfig`,
builds its collections into a temporary workspace, then applies a random
operation sequence — insert/delete batches against live global ids,
``freeze_delta``, ``compact`` — while an oracle keeps the surviving
documents' d-cells in merged order.  The mutated workspace must then
agree with a cold in-memory environment built from the oracle:

* **sequentially** per executor, byte-identical down to extras;
* **per kernel backend**, with the backend pinned on the loaded factory;
* **sharded** at the configured shard counts through
  :func:`repro.parallel.runner.run_sharded`'s warm ``workspace=`` path,
  matches-only (shard workers load their own factories from the
  segmented directory);

and :func:`~repro.workspace.loader.verify_workspace` must report a clean
bill after every freeze and compaction.
"""

from __future__ import annotations

import random
import tempfile
from dataclasses import replace
from typing import Any, Mapping, Sequence

from repro.conformance.differential import (
    DifferentialOutcome,
    Divergence,
    _io_mismatch,
)
from repro.conformance.trials import (
    DEFAULT_EXECUTORS,
    ExecutorFn,
    TrialConfig,
    random_trial_config,
)
from repro.core.environment import EnvironmentSpec
from repro.core.join import JoinEnvironment
from repro.errors import InsufficientMemoryError
from repro.kernels import numpy_available
from repro.parallel.runner import run_sharded
from repro.storage.pages import PageGeometry
from repro.text.collection import DocumentCollection
from repro.text.document import Document
from repro.workspace.builder import build_workspace
from repro.workspace.loader import load_workspace, verify_workspace
from repro.workspace.mutate import (
    MutationBatch,
    apply_mutations,
    compact,
    freeze_delta,
)

#: shard counts the warm-workspace sharded re-run exercises
INCREMENTAL_SHARD_COUNTS = (1, 4)

#: one oracle document: d-cells in the stored representation
_Cells = tuple[tuple[int, int], ...]


def _candidate_kernels() -> tuple[str, ...]:
    """Non-default backends this interpreter can run."""
    names = ["stdlib"]
    if numpy_available():
        names.append("numpy")
    return tuple(names)


def _result_mismatch(cold, incremental) -> str | None:
    """First disagreement between cold rebuild and mutated workspace."""
    if cold.matches != incremental.matches:
        missing = set(cold.matches) ^ set(incremental.matches)
        if missing:
            return (
                f"outer documents differ (symmetric difference {sorted(missing)})"
            )
        for outer_doc, hits in cold.matches.items():
            if incremental.matches[outer_doc] != hits:
                return (
                    f"matches for outer {outer_doc} differ: "
                    f"cold={hits} incremental={incremental.matches[outer_doc]}"
                )
        return "matches dicts differ"
    detail = _io_mismatch(cold.io, incremental.io)
    if detail is not None:
        return detail
    if cold.extras != incremental.extras:
        return (
            f"extras differ: cold={cold.extras} incremental={incremental.extras}"
        )
    return None


def _random_operations(
    rng: random.Random,
    docs: dict[str, list[_Cells]],
    roles: tuple[str, ...],
    vocabulary: int,
) -> list[dict[str, Any]]:
    """Draw a mutation/freeze/compact sequence and apply it to the oracle.

    ``docs`` is mutated in place to the final live document set, cell by
    cell, following exactly the contract of
    :func:`~repro.workspace.mutate.apply_mutations`: deletes name
    pre-batch live global ids, survivors keep merged order, inserts
    append at the tail.
    """
    operations: list[dict[str, Any]] = []
    n_ops = rng.randint(2, 4)
    for position in range(n_ops):
        kind = "mutate" if position == 0 else rng.choice(
            ("mutate", "mutate", "freeze", "compact")
        )
        if kind != "mutate":
            operations.append({"op": kind})
            continue
        inserts: dict[str, list[list[int]]] = {}
        deletes: dict[str, list[int]] = {}
        for role in roles:
            live = len(docs[role])
            if rng.random() < 0.8:
                inserts[role] = [
                    [rng.randrange(vocabulary) for _ in range(rng.randint(1, 8))]
                    for _ in range(rng.randint(1, 3))
                ]
            if live > 1 and rng.random() < 0.6:
                deletes[role] = sorted(
                    rng.sample(range(live), rng.randint(1, min(3, live - 1)))
                )
        if not inserts and not deletes:
            inserts = {roles[0]: [[rng.randrange(vocabulary)]]}
        for role, doc_ids in deletes.items():
            dead = set(doc_ids)
            docs[role] = [
                cells for i, cells in enumerate(docs[role]) if i not in dead
            ]
        for role, term_lists in inserts.items():
            docs[role].extend(
                Document.from_terms(0, terms).cells for terms in term_lists
            )
        operations.append({"op": "mutate", "inserts": inserts, "deletes": deletes})
    return operations


def _replay_operations(directory: str, operations: list[dict[str, Any]]) -> None:
    """Apply a drawn operation sequence to the workspace on disk."""
    for operation in operations:
        if operation["op"] == "mutate":
            apply_mutations(
                directory,
                MutationBatch.from_term_lists(
                    inserts=operation["inserts"], deletes=operation["deletes"]
                ),
            )
        elif operation["op"] == "freeze":
            freeze_delta(directory)
        else:
            compact(directory)


def _cold_environment(
    config: TrialConfig,
    names: dict[str, str],
    docs: Mapping[str, list[_Cells]],
    kernel: str = "auto",
) -> JoinEnvironment:
    """A fresh in-memory environment over the oracle's live documents.

    Collection names are preserved from the originals so the extent
    names inside the I/O counters line up with the loaded workspace's.
    """
    cold1 = DocumentCollection(
        names["c1"], [Document(i, cells) for i, cells in enumerate(docs["c1"])]
    )
    if config.self_join:
        cold2 = cold1
    else:
        cold2 = DocumentCollection(
            names["c2"],
            [Document(i, cells) for i, cells in enumerate(docs["c2"])],
        )
    return JoinEnvironment(
        cold1, cold2, PageGeometry(config.page_bytes), kernel=kernel
    )


def run_incremental_equivalence(
    seed: int,
    trials: int,
    *,
    executors: Mapping[str, ExecutorFn] | None = None,
    kernels: Sequence[str] | None = None,
    shard_counts: Sequence[int] = INCREMENTAL_SHARD_COUNTS,
    fail_fast: bool = False,
) -> DifferentialOutcome:
    """Prove mutated workspaces equal their cold rebuilds exactly."""
    executors = DEFAULT_EXECUTORS if executors is None else executors
    kernels = _candidate_kernels() if kernels is None else tuple(kernels)
    rng = random.Random(seed)
    outcome = DifferentialOutcome(seed=seed, trials_requested=trials)

    for trial in range(trials):
        config = random_trial_config(rng, trial)
        c1, c2 = config.build_collections()
        roles = ("c1",) if config.self_join else ("c1", "c2")
        names = {"c1": c1.name, "c2": c2.name}
        docs: dict[str, list[_Cells]] = {"c1": [doc.cells for doc in c1]}
        if not config.self_join:
            docs["c2"] = [doc.cells for doc in c2]
        operations = _random_operations(
            rng, docs, roles, config.spec1.vocabulary_size
        )
        reproduction = {
            "base": config.reproduction(),
            "operations": operations,
        }

        def diverge(executor: str, detail: str) -> None:
            outcome.divergences.append(
                Divergence(
                    check="incremental-equivalence",
                    executor=executor,
                    trial=trial,
                    detail=detail,
                    reproduction=reproduction,
                )
            )

        # Selections must reference the *final* live numbering; redraw
        # them over the mutated sizes with the usual probabilities.
        n1 = len(docs["c1"])
        n2 = n1 if config.self_join else len(docs["c2"])
        outer_selection = inner_selection = None
        if n2 > 1 and rng.random() < 0.25:
            outer_selection = tuple(
                sorted(rng.sample(range(n2), rng.randint(1, n2 - 1)))
            )
        if n1 > 1 and rng.random() < 0.2:
            inner_selection = tuple(
                sorted(rng.sample(range(n1), rng.randint(1, n1 - 1)))
            )
        config = replace(
            config,
            outer_selection=outer_selection,
            inner_selection=inner_selection,
        )

        with tempfile.TemporaryDirectory(prefix="repro-inc-") as tmp:
            build_workspace(
                tmp,
                c1,
                None if config.self_join else c2,
                spec=EnvironmentSpec(page_bytes=config.page_bytes),
            )
            _replay_operations(tmp, operations)
            outcome.trials_run += 1

            # The segment layer must stand on its own after the sequence.
            outcome.comparisons += 1
            problems = verify_workspace(tmp)
            if problems:
                diverge(
                    "verify_workspace",
                    f"mutated workspace fails verification: {problems[0]}",
                )

            factory = load_workspace(tmp)
            for name, executor in executors.items():
                # Sequential: full byte identity — matches, I/O, extras.
                try:
                    cold = executor(_cold_environment(config, names, docs), config)
                except InsufficientMemoryError:
                    cold = None
                try:
                    incremental = executor(factory.create(), config)
                except InsufficientMemoryError:
                    incremental = None
                if cold is None and incremental is None:
                    outcome.skips[name] = outcome.skips.get(name, 0) + 1
                    continue
                outcome.comparisons += 1
                if cold is None or incremental is None:
                    side = "cold" if cold is None else "incremental"
                    diverge(name, f"insufficient memory on the {side} side only")
                    continue
                detail = _result_mismatch(cold, incremental)
                if detail is not None:
                    diverge(name, detail)
                    continue

                # Kernel backends: pin each on the loaded factory.
                for kernel in kernels:
                    outcome.comparisons += 1
                    factory.kernel = kernel
                    try:
                        kernel_cold = executor(
                            _cold_environment(config, names, docs, kernel=kernel),
                            config,
                        )
                        kernel_incremental = executor(factory.create(), config)
                    except InsufficientMemoryError:
                        continue
                    finally:
                        factory.kernel = "auto"
                    detail = _result_mismatch(kernel_cold, kernel_incremental)
                    if detail is not None:
                        diverge(name, f"kernel={kernel}: {detail}")

                # Sharded: each worker warm-loads the segmented directory.
                for shards in shard_counts:
                    outcome.comparisons += 1
                    try:
                        sharded = run_sharded(
                            name,
                            config.join_spec(),
                            config.system(),
                            workspace=tmp,
                            shards=shards,
                            outer_ids=config.outer_selection,
                            inner_ids=config.inner_selection,
                            interference=config.interference,
                            delta=config.delta,
                        )
                    except InsufficientMemoryError:
                        continue  # sharding may shrink working sets; fine
                    if sharded.matches != cold.matches:
                        diverge(
                            name,
                            f"shards={shards}: sharded matches over the "
                            "mutated workspace differ from the cold rebuild",
                        )
        if fail_fast and outcome.divergences:
            break
    return outcome


__all__ = ["INCREMENTAL_SHARD_COUNTS", "run_incremental_equivalence"]
