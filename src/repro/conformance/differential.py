"""Differential testing: every execution path against the oracle.

Each trial draws a random :class:`~repro.conformance.trials.TrialConfig`,
computes the ground truth with :func:`~repro.conformance.oracle.oracle_join`,
then runs HHNL, HVNL, VVM and (when the trial is expressible as a query)
the whole :mod:`repro.sql` pipeline over the *same* workload and demands
match-set equality — same outer documents, same ranked inner documents,
same similarities.

Any disagreement becomes a :class:`Divergence` carrying the executor
name, the first differing pair and the trial's full reproduction
parameters; an executor that cannot run under the drawn buffer size is
recorded as a skip, never silently dropped.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.conformance.oracle import Matches, compare_matches, oracle_join
from repro.conformance.trials import (
    DEFAULT_EXECUTORS,
    DEFAULT_STREAMERS,
    ExecutorFn,
    StreamerFn,
    TrialConfig,
    random_cost_trial_config,
    random_trial_config,
)
from repro.cost.params import SystemParams
from repro.errors import InsufficientMemoryError
from repro.storage.iostats import IOStats
from repro.sql.catalog import Catalog, Relation
from repro.sql.executor import execute
from repro.text.collection import DocumentCollection

#: identifier of the SQL pipeline in reports, next to the executor names
SQL_PATH = "SQL"


@dataclass(frozen=True)
class Divergence:
    """One executor disagreeing with the oracle on one trial."""

    check: str
    executor: str
    trial: int
    detail: str
    reproduction: Mapping[str, Any]

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form for the conformance report."""
        return {
            "check": self.check,
            "executor": self.executor,
            "trial": self.trial,
            "detail": self.detail,
            "reproduction": dict(self.reproduction),
        }


@dataclass
class DifferentialOutcome:
    """Aggregated result of one differential sweep."""

    seed: int
    trials_requested: int
    trials_run: int = 0
    comparisons: int = 0
    skips: dict[str, int] = field(default_factory=dict)
    divergences: list[Divergence] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when every comparison agreed with the oracle."""
        return not self.divergences

    @property
    def first_divergence(self) -> Divergence | None:
        """The divergence to reproduce first (None when passing)."""
        return self.divergences[0] if self.divergences else None

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable summary for the conformance report."""
        return {
            "seed": self.seed,
            "trials_requested": self.trials_requested,
            "trials_run": self.trials_run,
            "comparisons": self.comparisons,
            "skips": dict(self.skips),
            "passed": self.passed,
            "divergences": [d.to_dict() for d in self.divergences],
        }


def sql_join_matches(
    collection1: DocumentCollection,
    collection2: DocumentCollection,
    lam: int,
    system: SystemParams,
) -> Matches:
    """Run the join through the whole SQL pipeline and collect matches.

    Builds a two-relation catalog whose rows are bare ids, executes
    ``SELECT A.Id, B.Id ... WHERE A.Doc SIMILAR_TO(lam) B.Doc`` through
    the parser, planner, integrated optimizer and executor, and folds the
    projected rows back into the executors' ``{outer: [(inner, sim)]}``
    shape (outer documents with no match get an empty list, matching the
    executor convention).
    """
    catalog = Catalog()
    inner_relation = Relation.from_rows(
        "R1", [{"Id": i} for i in range(collection1.n_documents)]
    ).bind_text("Doc", collection1)
    outer_relation = Relation.from_rows(
        "R2", [{"Id": i} for i in range(collection2.n_documents)]
    ).bind_text("Doc", collection2)
    catalog.register(inner_relation)
    catalog.register(outer_relation)

    result = execute(
        "SELECT A.Id, B.Id FROM R1 A, R2 B "
        f"WHERE A.Doc SIMILAR_TO({lam}) B.Doc",
        catalog,
        system,
    )
    matches: Matches = {i: [] for i in range(collection2.n_documents)}
    for row in result.as_dicts():
        matches[row["B.Id"]].append((row["A.Id"], row["_similarity"]))
    return matches


def _sql_applicable(config: TrialConfig) -> bool:
    """True when the trial is expressible as a plain SIMILAR_TO query.

    The SQL surface has no cosine flag and selections there are
    predicates, not explicit id lists; the SQL path is cross-checked on
    the trials whose parameters it can express.  A self-join still runs —
    the two relations simply bind the same collection.
    """
    return (
        not config.normalized
        and config.outer_selection is None
        and config.inner_selection is None
    )


def run_differential(
    seed: int,
    trials: int,
    *,
    executors: Mapping[str, ExecutorFn] | None = None,
    include_sql: bool = True,
    tolerance: float = 1e-9,
    fail_fast: bool = False,
) -> DifferentialOutcome:
    """Sweep ``trials`` randomized workloads, comparing all paths to the oracle.

    ``executors`` defaults to the real HHNL/HVNL/VVM registry; passing a
    mapping with a mutated entry is how the test suite certifies that the
    harness *detects* injected bugs.  With ``fail_fast`` the sweep stops
    at the first divergence (useful interactively); the default runs all
    trials so a report shows every affected configuration.
    """
    executors = DEFAULT_EXECUTORS if executors is None else executors
    rng = random.Random(seed)
    outcome = DifferentialOutcome(seed=seed, trials_requested=trials)

    for trial in range(trials):
        config = random_trial_config(rng, trial)
        c1, c2 = config.build_collections()
        expected = oracle_join(
            c1,
            c2,
            lam=config.lam,
            normalized=config.normalized,
            outer_ids=config.outer_selection,
            inner_ids=config.inner_selection,
        )
        environment = config.build_environment()
        outcome.trials_run += 1

        for name, executor in executors.items():
            try:
                result = executor(environment, config)
            except InsufficientMemoryError:
                outcome.skips[name] = outcome.skips.get(name, 0) + 1
                continue
            outcome.comparisons += 1
            detail = compare_matches(expected, result.matches, tolerance=tolerance)
            if detail is not None:
                outcome.divergences.append(
                    Divergence(
                        check="differential",
                        executor=name,
                        trial=trial,
                        detail=detail,
                        reproduction=config.reproduction(),
                    )
                )

        if include_sql and _sql_applicable(config):
            sql_matches = sql_join_matches(c1, c2, config.lam, config.system())
            outcome.comparisons += 1
            detail = compare_matches(expected, sql_matches, tolerance=tolerance)
            if detail is not None:
                outcome.divergences.append(
                    Divergence(
                        check="differential",
                        executor=SQL_PATH,
                        trial=trial,
                        detail=detail,
                        reproduction=config.reproduction(),
                    )
                )

        if fail_fast and outcome.divergences:
            break
    return outcome


def _io_mismatch(materialized: IOStats, streamed: IOStats) -> str | None:
    """Describe the first I/O-counter disagreement, or None when equal."""
    if materialized.sequential_reads != streamed.sequential_reads:
        return (
            f"sequential reads differ: run={materialized.sequential_reads} "
            f"iter={streamed.sequential_reads}"
        )
    if materialized.random_reads != streamed.random_reads:
        return (
            f"random reads differ: run={materialized.random_reads} "
            f"iter={streamed.random_reads}"
        )
    if dict(materialized.by_extent) != dict(streamed.by_extent):
        return (
            f"per-extent reads differ: run={dict(materialized.by_extent)} "
            f"iter={dict(streamed.by_extent)}"
        )
    return None


def _stream_mismatch(
    result: "Any", blocks: list, summary: "Any"
) -> str | None:
    """Compare one materialized run against its streamed twin.

    Byte-identity is demanded, not tolerance-based equality: ``run_*``
    *is* ``collect(iter_*)``, so the streamed blocks must flatten to the
    exact matches dict (same floats, same ranked order, same outer-id
    iteration order) and charge the exact same I/O.
    """
    outer_seen = [block.outer_doc for block in blocks]
    if len(set(outer_seen)) != len(outer_seen):
        return f"an outer document was emitted twice: {outer_seen}"
    if outer_seen != sorted(outer_seen):
        return f"blocks not in ascending outer order: {outer_seen}"
    flattened = {block.outer_doc: list(block.matches) for block in blocks}
    if flattened != result.matches:
        missing = set(result.matches) ^ set(flattened)
        if missing:
            return f"outer documents differ (symmetric difference {sorted(missing)})"
        for outer_doc, hits in result.matches.items():
            if flattened[outer_doc] != hits:
                return (
                    f"matches for outer {outer_doc} differ: "
                    f"run={hits} iter={flattened[outer_doc]}"
                )
        return "matches dicts differ"
    if list(flattened) != list(result.matches):
        return "outer-document emission order differs from materialized order"
    detail = _io_mismatch(result.io, summary.io)
    if detail is not None:
        return detail
    if summary.algorithm != result.algorithm:
        return f"algorithm differs: run={result.algorithm} iter={summary.algorithm}"
    if summary.extras != result.extras:
        return f"extras differ: run={result.extras} iter={summary.extras}"
    return None


def run_streaming_equivalence(
    seed: int,
    trials: int,
    *,
    executors: Mapping[str, ExecutorFn] | None = None,
    streamers: Mapping[str, StreamerFn] | None = None,
    fail_fast: bool = False,
) -> DifferentialOutcome:
    """Prove ``list(iter_*)`` flattens to exactly the ``run_*`` result.

    Each trial draws a cost-scale workload (large enough for multi-page
    layouts and multi-pass VVM), runs every algorithm twice on *fresh*
    environments — once materialized, once consumed block-by-block via
    the raw generator protocol — and demands byte-identical matches,
    identical :class:`~repro.storage.iostats.IOStats` deltas and the
    block-stream invariants (each participating outer document emitted
    exactly once, in ascending order).  A mutated ``streamers`` mapping
    is the harness-detects-bugs hook, mirroring ``run_differential``.
    """
    executors = DEFAULT_EXECUTORS if executors is None else executors
    streamers = DEFAULT_STREAMERS if streamers is None else streamers
    rng = random.Random(seed)
    outcome = DifferentialOutcome(seed=seed, trials_requested=trials)

    for trial in range(trials):
        config = random_cost_trial_config(rng, trial)
        outcome.trials_run += 1
        for name, streamer in streamers.items():
            executor = executors[name]
            try:
                result = executor(config.build_environment(), config)
            except InsufficientMemoryError:
                outcome.skips[name] = outcome.skips.get(name, 0) + 1
                continue

            blocks = []
            stream = streamer(config.build_environment(), config)
            while True:
                try:
                    blocks.append(next(stream))
                except StopIteration as stop:
                    summary = stop.value
                    break

            outcome.comparisons += 1
            detail = _stream_mismatch(result, blocks, summary)
            if detail is not None:
                outcome.divergences.append(
                    Divergence(
                        check="streaming-equivalence",
                        executor=name,
                        trial=trial,
                        detail=detail,
                        reproduction=config.reproduction(),
                    )
                )
        if fail_fast and outcome.divergences:
            break
    return outcome


__all__ = [
    "Divergence",
    "DifferentialOutcome",
    "SQL_PATH",
    "run_differential",
    "run_streaming_equivalence",
    "sql_join_matches",
]
