"""Metamorphic invariants: relations between runs that must always hold.

Differential testing (:mod:`repro.conformance.differential`) checks each
executor against an oracle on *one* input; metamorphic testing checks
relations between executor runs on *related* inputs, which catches bugs
a single ground-truth comparison cannot (and would survive an oracle
that shared the same mistake).  The catalogue:

``lambda-monotonicity``
    ``SIMILAR_TO(lam)`` must be rank-for-rank the first ``lam`` entries
    of ``SIMILAR_TO(2*lam)``: the total order (similarity desc, inner id
    asc) is fixed, so top-``k`` lists are prefix-nested.

``buffer-monotonicity``
    Doubling the buffer must never increase the measured weighted I/O
    cost — more memory means fewer scans/passes/evictions, never more.

``term-permutation``
    Renumbering the vocabulary by a random permutation (both collections
    consistently) must leave the match set bit-identical: similarity is
    a sum over *matching* terms, whatever their numbers.

``document-duplication``
    Duplicating every inner document and doubling ``lambda`` must yield,
    per outer document, each original similarity exactly twice (compared
    as multisets — tie *ranks* may legally shuffle across equal scores).

``normalized-consistency``
    With ``lambda`` large enough to keep every positive match, the raw
    and cosine runs must match the same document *set*, and each cosine
    similarity must equal the raw one divided by the two norms.

Every violation is reported as a
:class:`~repro.conformance.differential.Divergence` with the trial's
full reproduction parameters.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Mapping

from repro.conformance.differential import Divergence
from repro.conformance.trials import (
    DEFAULT_EXECUTORS,
    ExecutorFn,
    TrialConfig,
    random_trial_config,
)
from repro.core.join import JoinEnvironment
from repro.errors import InsufficientMemoryError
from repro.storage.pages import PageGeometry
from repro.text.collection import DocumentCollection
from repro.text.document import Document

#: (invariant name, executor name) -> human-readable failure, or None
InvariantFn = Callable[
    [TrialConfig, Mapping[str, ExecutorFn], float], list[tuple[str, str]]
]


def _environment(
    config: TrialConfig,
    collection1: DocumentCollection,
    collection2: DocumentCollection,
) -> JoinEnvironment:
    return JoinEnvironment(
        collection1, collection2, PageGeometry(config.page_bytes)
    )


def check_lambda_monotonicity(
    config: TrialConfig, executors: Mapping[str, ExecutorFn], tolerance: float
) -> list[tuple[str, str]]:
    """Top-``lam`` must be a rank-exact prefix of top-``2*lam``."""
    failures: list[tuple[str, str]] = []
    environment = config.build_environment()
    wide = replace(config, lam=config.lam * 2)
    for name, executor in executors.items():
        try:
            narrow_run = executor(environment, config)
            wide_run = executor(environment, wide)
        except InsufficientMemoryError:
            continue
        for outer_id, narrow_hits in narrow_run.matches.items():
            prefix = wide_run.matches.get(outer_id, [])[: config.lam]
            if len(narrow_hits) != len(prefix) or any(
                d_n != d_w or abs(s_n - s_w) > tolerance
                for (d_n, s_n), (d_w, s_w) in zip(narrow_hits, prefix)
            ):
                failures.append(
                    (
                        name,
                        f"outer doc {outer_id}: top-{config.lam} is not a "
                        f"prefix of top-{wide.lam}: {narrow_hits} vs {prefix}",
                    )
                )
                break
    return failures


def check_buffer_monotonicity(
    config: TrialConfig, executors: Mapping[str, ExecutorFn], tolerance: float
) -> list[tuple[str, str]]:
    """Doubling ``B`` must not increase the measured weighted cost."""
    failures: list[tuple[str, str]] = []
    environment = config.build_environment()
    bigger = replace(config, buffer_pages=config.buffer_pages * 2)
    for name, executor in executors.items():
        try:
            small_run = executor(environment, config)
            big_run = executor(environment, bigger)
        except InsufficientMemoryError:
            continue
        cost_small = small_run.weighted_cost(config.alpha)
        cost_big = big_run.weighted_cost(config.alpha)
        if cost_big > cost_small * (1.0 + tolerance) + tolerance:
            failures.append(
                (
                    name,
                    f"weighted cost rose from {cost_small:.1f} at "
                    f"B={config.buffer_pages} to {cost_big:.1f} at "
                    f"B={bigger.buffer_pages}",
                )
            )
    return failures


def _permute_collection(
    collection: DocumentCollection, permutation: list[int], name: str
) -> DocumentCollection:
    documents = [
        Document.from_counts(
            doc.doc_id, {permutation[term]: weight for term, weight in doc.cells}
        )
        for doc in collection
    ]
    return DocumentCollection(name, documents)


def check_term_permutation(
    config: TrialConfig, executors: Mapping[str, ExecutorFn], tolerance: float
) -> list[tuple[str, str]]:
    """A consistent vocabulary renumbering must not change any match."""
    failures: list[tuple[str, str]] = []
    c1, c2 = config.build_collections()
    highest_term = max(
        (term for doc in list(c1) + list(c2) for term, _ in doc.cells),
        default=-1,
    )
    permutation = list(range(highest_term + 1))
    random.Random(config.spec1.seed ^ 0x5EED).shuffle(permutation)
    p1 = _permute_collection(c1, permutation, f"{c1.name}-perm")
    p2 = p1 if config.self_join else _permute_collection(c2, permutation, f"{c2.name}-perm")

    original_env = _environment(config, c1, c2)
    permuted_env = _environment(config, p1, p2)
    for name, executor in executors.items():
        try:
            original = executor(original_env, config)
            permuted = executor(permuted_env, config)
        except InsufficientMemoryError:
            continue
        if not original.same_matches_as(permuted, tolerance=tolerance):
            failures.append(
                (name, "match set changed under a term-id permutation")
            )
    return failures


def check_document_duplication(
    config: TrialConfig, executors: Mapping[str, ExecutorFn], tolerance: float
) -> list[tuple[str, str]]:
    """Duplicated inner documents double every similarity's multiplicity.

    Selections are dropped for this invariant (id lists would have to be
    re-derived for the duplicated collection, which would test the
    harness rather than the executors).
    """
    base = replace(config, outer_selection=None, inner_selection=None)
    failures: list[tuple[str, str]] = []
    c1, c2 = base.build_collections()
    n1 = c1.n_documents
    duplicated = DocumentCollection(
        f"{c1.name}-dup",
        list(c1.documents)
        + [Document(n1 + doc.doc_id, doc.cells) for doc in c1.documents],
    )
    doubled = replace(base, lam=base.lam * 2)

    original_env = _environment(base, c1, c2)
    duplicated_env = _environment(base, duplicated, c2)
    for name, executor in executors.items():
        try:
            original = executor(original_env, base)
            doubled_run = executor(duplicated_env, doubled)
        except InsufficientMemoryError:
            continue
        for outer_id, hits in original.matches.items():
            expected = sorted(
                similarity for _, similarity in hits for _ in range(2)
            )
            got = sorted(
                similarity
                for _, similarity in doubled_run.matches.get(outer_id, [])
            )
            if len(expected) != len(got) or any(
                abs(a - b) > tolerance for a, b in zip(expected, got)
            ):
                failures.append(
                    (
                        name,
                        f"outer doc {outer_id}: duplicated-inner similarity "
                        f"multiset {got} != doubled original {expected}",
                    )
                )
                break
    return failures


def check_normalized_consistency(
    config: TrialConfig, executors: Mapping[str, ExecutorFn], tolerance: float
) -> list[tuple[str, str]]:
    """Cosine = raw / (norm1 * norm2), and the match *set* is unchanged.

    Run with ``lambda >= N1`` so no candidate is cut: normalisation
    reorders positive similarities but never creates or destroys one.
    """
    failures: list[tuple[str, str]] = []
    environment = config.build_environment()
    n1 = environment.collection1.n_documents
    raw_config = replace(config, lam=n1, normalized=False)
    cosine_config = replace(config, lam=n1, normalized=True)
    norms1 = environment.norms1()
    norms2 = environment.norms2()
    for name, executor in executors.items():
        try:
            raw_run = executor(environment, raw_config)
            cosine_run = executor(environment, cosine_config)
        except InsufficientMemoryError:
            continue
        for outer_id, raw_hits in raw_run.matches.items():
            raw_by_doc = dict(raw_hits)
            cosine_by_doc = dict(cosine_run.matches.get(outer_id, []))
            if set(raw_by_doc) != set(cosine_by_doc):
                failures.append(
                    (
                        name,
                        f"outer doc {outer_id}: normalisation changed the "
                        f"matched set: {sorted(raw_by_doc)} vs "
                        f"{sorted(cosine_by_doc)}",
                    )
                )
                break
            bad = next(
                (
                    inner_id
                    for inner_id, raw_sim in raw_by_doc.items()
                    if abs(
                        cosine_by_doc[inner_id]
                        - raw_sim / (norms1[inner_id] * norms2[outer_id])
                    )
                    > tolerance
                ),
                None,
            )
            if bad is not None:
                failures.append(
                    (
                        name,
                        f"outer doc {outer_id}, inner doc {bad}: cosine "
                        f"similarity is not raw / (norm1 * norm2)",
                    )
                )
                break
    return failures


#: the catalogue, in documentation order
INVARIANTS: Mapping[str, InvariantFn] = {
    "lambda-monotonicity": check_lambda_monotonicity,
    "buffer-monotonicity": check_buffer_monotonicity,
    "term-permutation": check_term_permutation,
    "document-duplication": check_document_duplication,
    "normalized-consistency": check_normalized_consistency,
}


@dataclass
class MetamorphicOutcome:
    """Aggregated result of one metamorphic sweep."""

    seed: int
    trials_requested: int
    trials_run: int = 0
    checks_run: dict[str, int] = field(default_factory=dict)
    divergences: list[Divergence] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when every invariant held on every trial."""
        return not self.divergences

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable summary for the conformance report."""
        return {
            "seed": self.seed,
            "trials_requested": self.trials_requested,
            "trials_run": self.trials_run,
            "checks_run": dict(self.checks_run),
            "passed": self.passed,
            "divergences": [d.to_dict() for d in self.divergences],
        }


def run_metamorphic(
    seed: int,
    trials: int,
    *,
    executors: Mapping[str, ExecutorFn] | None = None,
    invariants: Mapping[str, InvariantFn] | None = None,
    tolerance: float = 1e-9,
) -> MetamorphicOutcome:
    """Check every invariant of the catalogue on ``trials`` random workloads.

    Uses a different stream than the differential sweep for the same
    seed (the trial configurations are drawn identically — divergences
    reproduce from the same parameters — but invariants derive their own
    modified runs from each)."""
    executors = DEFAULT_EXECUTORS if executors is None else executors
    invariants = INVARIANTS if invariants is None else invariants
    rng = random.Random(seed)
    outcome = MetamorphicOutcome(seed=seed, trials_requested=trials)

    for trial in range(trials):
        config = random_trial_config(rng, trial)
        outcome.trials_run += 1
        for invariant_name, invariant in invariants.items():
            outcome.checks_run[invariant_name] = (
                outcome.checks_run.get(invariant_name, 0) + 1
            )
            for executor_name, detail in invariant(config, executors, tolerance):
                outcome.divergences.append(
                    Divergence(
                        check=f"metamorphic:{invariant_name}",
                        executor=executor_name,
                        trial=trial,
                        detail=detail,
                        reproduction=config.reproduction(),
                    )
                )
    return outcome


__all__ = [
    "INVARIANTS",
    "InvariantFn",
    "MetamorphicOutcome",
    "check_buffer_monotonicity",
    "check_document_duplication",
    "check_lambda_monotonicity",
    "check_normalized_consistency",
    "check_term_permutation",
    "run_metamorphic",
]
