"""Measured-vs-model conformance: I/O counters and access-pattern shape.

The Section 5 formulas (``hhs/hhr``, ``hvs/hvr``, ``vvs/vvr``) claim to
predict what the executors *measure*.  This layer reruns every executor
under a :class:`~repro.storage.trace.TracingIOStats` on randomized
workloads and checks two things:

* **magnitude** — the measured weighted cost stays within the declared
  tolerance band of the matching analytical formula, in both the
  sequential and the worst-case (random interference) scenario.  The
  formulas use average sizes and the vocabulary-growth model ``f(m)``
  while the executor sees true skewed sizes, so the bands are ratios,
  not equalities; the policy and its calibration are spelled out in
  ``docs/CONFORMANCE.md``.
* **shape** — the recorded trace must look like the algorithm: HHNL
  reads the inner collection in whole blocked passes (one per outer
  chunk) and performs no random I/O in the dedicated-device scenario;
  HVNL reads the B+-tree in up-front; VVM's merge interleaves the two
  inverted-file streams.

Violations are reported as
:class:`~repro.conformance.differential.Divergence` records with full
reproduction parameters, like every other conformance check.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from repro.conformance.differential import Divergence
from repro.conformance.trials import (
    DEFAULT_EXECUTORS,
    ExecutorFn,
    TrialConfig,
    random_cost_trial_config,
)
from repro.core.join import JoinEnvironment
from repro.cost.hhnl import hhnl_cost
from repro.cost.hvnl import hvnl_cost
from repro.cost.params import QueryParams
from repro.cost.vvm import vvm_cost
from repro.errors import InsufficientMemoryError
from repro.storage.trace import TracingIOStats

#: ``BTREE_IO_LABEL`` of :mod:`repro.core.hvnl`, the extent name the
#: one-time B+-tree read is charged to
_BTREE_EXTENT = "c1.btree"


@dataclass(frozen=True)
class CostToleranceSpec:
    """The declared measured-vs-model tolerance policy.

    The bands bound the measured/predicted weighted-cost ratio per I/O
    scenario.  They are deliberately the same ratio bands the
    :mod:`repro.experiments.validate` suite has pinned since the cost
    models landed: the formulas work with average document/posting sizes
    and the ``f(m)`` vocabulary-growth model, so a factor-two envelope is
    expected model error, not slack.  The random-scenario band is wider
    on both ends — the worst-case formulas inherit the same size
    approximations *and* amplify them by ``alpha``.  ``pass_rel`` is the
    relative slack on trace-derived scan-pass counts, which are discrete
    and must essentially be exact.
    """

    sequential_low: float = 0.5
    sequential_high: float = 2.0
    random_low: float = 0.4
    random_high: float = 2.5
    pass_rel: float = 0.02


@dataclass(frozen=True)
class CostCheckRow:
    """One measured-vs-predicted comparison."""

    trial: int
    algorithm: str
    scenario: str  # 'sequential' | 'random'
    measured: float
    predicted: float

    @property
    def ratio(self) -> float:
        """measured / predicted (1.0 when both are zero)."""
        if self.predicted == 0:
            return float("inf") if self.measured else 1.0
        return self.measured / self.predicted

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form for the conformance report."""
        return {
            "trial": self.trial,
            "algorithm": self.algorithm,
            "scenario": self.scenario,
            "measured": self.measured,
            "predicted": self.predicted,
            "ratio": self.ratio,
        }


@dataclass
class CostCheckOutcome:
    """Aggregated result of one cost-conformance sweep."""

    seed: int
    trials_requested: int
    tolerance: CostToleranceSpec
    trials_run: int = 0
    rows: list[CostCheckRow] = field(default_factory=list)
    trace_checks: int = 0
    boundary_skips: int = 0
    divergences: list[Divergence] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when every ratio and every trace shape was in band."""
        return not self.divergences

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable summary for the conformance report."""
        return {
            "seed": self.seed,
            "trials_requested": self.trials_requested,
            "trials_run": self.trials_run,
            "rows": [row.to_dict() for row in self.rows],
            "trace_checks": self.trace_checks,
            "boundary_skips": self.boundary_skips,
            "tolerance": {
                "sequential_low": self.tolerance.sequential_low,
                "sequential_high": self.tolerance.sequential_high,
                "random_low": self.tolerance.random_low,
                "random_high": self.tolerance.random_high,
                "pass_rel": self.tolerance.pass_rel,
            },
            "passed": self.passed,
            "divergences": [d.to_dict() for d in self.divergences],
        }


def _predictions(
    environment: JoinEnvironment, config: TrialConfig
) -> dict[str, Any]:
    """``{algorithm: cost object}`` from the Section 5 formulas."""
    side1, side2 = environment.cost_sides(
        config.outer_selection, config.inner_selection
    )
    query = QueryParams(lam=config.lam, delta=config.delta)
    system = config.system()
    q = environment.measured_q()
    return {
        "HHNL": hhnl_cost(side1, side2, system, query),
        "HVNL": hvnl_cost(side1, side2, system, query, q),
        "VVM": vvm_cost(side1, side2, system, query),
    }


def _regime_boundary(name: str, prediction: Any, extras: Mapping[str, Any]) -> bool:
    """True when model and executor disagree on the HVNL buffering regime.

    The model sizes the entry capacity ``X`` from *average* entry sizes;
    the executor bulk-loads only when the *exact* bytes fit.  On trials
    sitting right at the ``X >= T1`` boundary the two tests can land on
    opposite sides, and because a sequential inverted-file scan and
    per-term random fetching differ by orders of magnitude there, the
    ratio carries no information about model quality.  Such trials are
    excluded from the magnitude band and surfaced as ``boundary_skips``.
    """
    if name != "HVNL":
        return False
    model_fits = prediction.regime == "all-entries-fit"
    executor_loaded = bool(extras.get("bulk_loaded"))
    return model_fits != executor_loaded


def _shape_failures(
    trace_stats: TracingIOStats,
    environment: JoinEnvironment,
    config: TrialConfig,
    name: str,
    extras: Mapping[str, Any],
    tolerance: CostToleranceSpec,
) -> list[str]:
    """Trace-shape assertions for one sequential-scenario run."""
    failures: list[str] = []
    trace = trace_stats.trace
    unselected = config.outer_selection is None and config.inner_selection is None

    if name == "HHNL" and unselected:
        if trace.random_fraction() > 0.0:
            failures.append(
                "HHNL performed random I/O in the dedicated-device scenario"
            )
        if not config.self_join and environment.docs1.n_pages > 0:
            passes = trace.scan_passes(
                environment.docs1.name, environment.docs1.n_pages
            )
            expected = float(extras.get("inner_scans", 0))
            if abs(passes - expected) > tolerance.pass_rel * max(expected, 1.0):
                failures.append(
                    f"HHNL trace shows {passes:.2f} inner passes, "
                    f"executor reports {expected:.0f} blocked scans"
                )
    elif name == "HVNL":
        if _BTREE_EXTENT not in trace.extents_touched():
            failures.append("HVNL never charged the one-time B+-tree read")
    elif name == "VVM" and not config.self_join:
        inv1, inv2 = environment.inv1_extent, environment.inv2_extent
        if inv1.n_pages >= 2 and inv2.n_pages >= 2:
            switches = trace.interleaving_switches(inv1.name, inv2.name)
            passes = int(extras.get("passes", 1))
            if switches < passes:
                failures.append(
                    f"VVM trace shows only {switches} interleaving switches "
                    f"across {passes} merge passes — not a merge of two streams"
                )
    return failures


def run_costcheck(
    seed: int,
    trials: int,
    *,
    executors: Mapping[str, ExecutorFn] | None = None,
    tolerance: CostToleranceSpec | None = None,
) -> CostCheckOutcome:
    """Compare measured I/O against the analytical models on random trials.

    Every trial runs each executor twice — once per I/O scenario — with
    a fresh :class:`~repro.storage.trace.TracingIOStats` swapped into the
    environment's disk, relying on ``reset_io()`` clearing both counters
    *and* trace between runs.
    """
    executors = DEFAULT_EXECUTORS if executors is None else executors
    tolerance = tolerance if tolerance is not None else CostToleranceSpec()
    rng = random.Random(seed)
    outcome = CostCheckOutcome(
        seed=seed, trials_requested=trials, tolerance=tolerance
    )

    for trial in range(trials):
        config = random_cost_trial_config(rng, trial)
        environment = config.build_environment()
        environment.disk.stats = TracingIOStats()
        try:
            predictions = _predictions(environment, config)
        except InsufficientMemoryError:
            continue
        outcome.trials_run += 1

        for name, executor in executors.items():
            if name not in predictions:
                continue
            prediction = predictions[name]
            for scenario, interference in (("sequential", False), ("random", True)):
                scenario_config = replace(config, interference=interference)
                environment.reset_io()
                try:
                    result = executor(environment, scenario_config)
                except InsufficientMemoryError:
                    continue
                measured = result.weighted_cost(config.alpha)
                predicted = (
                    prediction.random if interference else prediction.sequential
                )
                if _regime_boundary(name, prediction, result.extras):
                    outcome.boundary_skips += 1
                    continue
                row = CostCheckRow(
                    trial=trial,
                    algorithm=name,
                    scenario=scenario,
                    measured=measured,
                    predicted=predicted,
                )
                outcome.rows.append(row)

                low, high = (
                    (tolerance.random_low, tolerance.random_high)
                    if interference
                    else (tolerance.sequential_low, tolerance.sequential_high)
                )
                in_band = low <= row.ratio <= high
                if not in_band:
                    outcome.divergences.append(
                        Divergence(
                            check=f"costcheck:{scenario}",
                            executor=name,
                            trial=trial,
                            detail=(
                                f"measured weighted cost {measured:.1f} vs "
                                f"predicted {predicted:.1f} "
                                f"(ratio {row.ratio:.3f}) out of band"
                            ),
                            reproduction=config.reproduction(),
                        )
                    )

                if not interference:
                    outcome.trace_checks += 1
                    for detail in _shape_failures(
                        environment.disk.stats,
                        environment,
                        config,
                        name,
                        result.extras,
                        tolerance,
                    ):
                        outcome.divergences.append(
                            Divergence(
                                check="costcheck:trace-shape",
                                executor=name,
                                trial=trial,
                                detail=detail,
                                reproduction=config.reproduction(),
                            )
                        )
    return outcome


__all__ = [
    "CostCheckOutcome",
    "CostCheckRow",
    "CostToleranceSpec",
    "run_costcheck",
]
