"""Kernel-equivalence conformance: the scoring backend changes nothing.

The kernel layer (:mod:`repro.kernels`) promises *byte identity*: every
backend — the scalar reference loops, the stdlib batch kernels, the
numpy bulk kernels — must produce the same match sets, the same
similarity values (bit-for-bit, not within tolerance), the same
per-extent I/O counters and the same operator extras, because a kernel
only reorganises arithmetic whose result is exact either way.

Each trial draws a random :class:`~repro.conformance.trials.TrialConfig`
and runs every executor once per backend against the ``scalar``
reference, then re-runs the reference comparison through the sharded
path (:func:`repro.parallel.run_sharded`) at the configured shard
counts with the backend pinned on the factory — proving the kernel
choice survives the shard workers' pickled factories.  On top, every
trial replays the join over a ``vbyte``-codec environment per backend:
the codec moves physical pages, never matches, so the match sets must
equal the scalar/raw reference exactly while the I/O is allowed (and
expected) to differ.

Backends that need an unavailable accelerator (``numpy`` without numpy
installed) are skipped, not failed: the contract is over the backends
this interpreter can actually run.
"""

from __future__ import annotations

import random
from typing import Mapping, Sequence

from repro.conformance.differential import (
    DifferentialOutcome,
    Divergence,
    _io_mismatch,
)
from repro.conformance.trials import (
    DEFAULT_EXECUTORS,
    ExecutorFn,
    TrialConfig,
    random_trial_config,
)
from repro.core.environment import EnvironmentFactory, EnvironmentSpec
from repro.core.join import JoinEnvironment
from repro.errors import InsufficientMemoryError
from repro.kernels import numpy_available
from repro.parallel.runner import run_sharded
from repro.storage.pages import PageGeometry

#: the reference backend every other backend is held to
REFERENCE_KERNEL = "scalar"

#: shard counts the sharded re-run exercises (1 = pass-through)
KERNEL_SHARD_COUNTS = (1, 4)


def _candidate_kernels() -> tuple[str, ...]:
    """Non-reference backends this interpreter can run."""
    names = ["stdlib"]
    if numpy_available():
        names.append("numpy")
    return tuple(names)


def _kernel_environment(
    config: TrialConfig, kernel: str, codec: str = "raw"
) -> JoinEnvironment:
    """The trial's environment with an explicit kernel (and codec)."""
    c1, c2 = config.build_collections()
    return JoinEnvironment(
        c1, c2, PageGeometry(config.page_bytes), kernel=kernel, codec=codec
    )


def _result_mismatch(reference, candidate) -> str | None:
    """First disagreement between two full join results, or None."""
    if reference.matches != candidate.matches:
        missing = set(reference.matches) ^ set(candidate.matches)
        if missing:
            return (
                "outer documents differ "
                f"(symmetric difference {sorted(missing)})"
            )
        for outer_doc, hits in reference.matches.items():
            if candidate.matches[outer_doc] != hits:
                return (
                    f"matches for outer {outer_doc} differ: "
                    f"reference={hits} candidate={candidate.matches[outer_doc]}"
                )
        return "matches dicts differ"
    for outer_doc, hits in reference.matches.items():
        for (_, ref_sim), (_, cand_sim) in zip(hits, candidate.matches[outer_doc]):
            # == alone would bless int 22 against float 22.0; rendered
            # output (sql --rows-only) exposes the type, so pin it too.
            if type(cand_sim) is not type(ref_sim):
                return (
                    f"similarity type for outer {outer_doc} differs: "
                    f"reference {type(ref_sim).__name__}({ref_sim}) "
                    f"candidate {type(cand_sim).__name__}({cand_sim})"
                )
    detail = _io_mismatch(reference.io, candidate.io)
    if detail is not None:
        return detail
    if reference.extras != candidate.extras:
        return (
            f"extras differ: reference={reference.extras} "
            f"candidate={candidate.extras}"
        )
    return None


def run_kernel_equivalence(
    seed: int,
    trials: int,
    *,
    executors: Mapping[str, ExecutorFn] | None = None,
    kernels: Sequence[str] | None = None,
    shard_counts: Sequence[int] = KERNEL_SHARD_COUNTS,
    fail_fast: bool = False,
) -> DifferentialOutcome:
    """Prove every kernel backend reproduces the scalar loops exactly."""
    executors = DEFAULT_EXECUTORS if executors is None else executors
    kernels = _candidate_kernels() if kernels is None else tuple(kernels)
    rng = random.Random(seed)
    outcome = DifferentialOutcome(seed=seed, trials_requested=trials)

    for trial in range(trials):
        config = random_trial_config(rng, trial)
        outcome.trials_run += 1

        for name, executor in executors.items():
            try:
                reference = executor(
                    _kernel_environment(config, REFERENCE_KERNEL), config
                )
            except InsufficientMemoryError:
                outcome.skips[name] = outcome.skips.get(name, 0) + 1
                continue

            def diverge(detail: str) -> None:
                outcome.divergences.append(
                    Divergence(
                        check="kernel-equivalence",
                        executor=name,
                        trial=trial,
                        detail=detail,
                        reproduction=config.reproduction(),
                    )
                )

            for kernel in kernels:
                # Sequential: full byte identity — matches, I/O, extras.
                outcome.comparisons += 1
                try:
                    candidate = executor(
                        _kernel_environment(config, kernel), config
                    )
                except InsufficientMemoryError:
                    diverge(
                        f"kernel={kernel}: insufficient memory although the "
                        "scalar run fits"
                    )
                    continue
                detail = _result_mismatch(reference, candidate)
                if detail is not None:
                    diverge(f"kernel={kernel}: {detail}")

                # Sharded: the backend must survive pickled factories.
                for shards in shard_counts:
                    outcome.comparisons += 1
                    c1, c2 = config.build_collections()
                    factory = EnvironmentFactory(
                        c1,
                        None if config.self_join else c2,
                        spec=EnvironmentSpec(page_bytes=config.page_bytes),
                        kernel=kernel,
                    )
                    try:
                        sharded = run_sharded(
                            name,
                            config.join_spec(),
                            config.system(),
                            factory=factory,
                            shards=shards,
                            outer_ids=config.outer_selection,
                            inner_ids=config.inner_selection,
                            interference=config.interference,
                            delta=config.delta,
                        )
                    except InsufficientMemoryError:
                        continue  # sharding may shrink working sets; fine
                    if sharded.matches != reference.matches:
                        diverge(
                            f"kernel={kernel} shards={shards}: sharded "
                            "matches differ from the scalar sequential run"
                        )

                # Compressed codec: matches are codec-invariant.
                outcome.comparisons += 1
                try:
                    compressed = executor(
                        _kernel_environment(config, kernel, codec="vbyte"),
                        config,
                    )
                except InsufficientMemoryError:
                    continue
                if compressed.matches != reference.matches:
                    diverge(
                        f"kernel={kernel} codec=vbyte: matches differ from "
                        "the raw reference"
                    )
        if fail_fast and outcome.divergences:
            break
    return outcome


__all__ = [
    "KERNEL_SHARD_COUNTS",
    "REFERENCE_KERNEL",
    "run_kernel_equivalence",
]
