"""Randomized trial workloads shared by every conformance check.

One :class:`TrialConfig` captures *everything* a trial depends on —
collection recipes, query, system parameters, selections, the I/O
scenario — as a frozen value object, so any reported divergence can be
replayed exactly from the parameters embedded in the report
(:meth:`TrialConfig.reproduction`).

Collections come from :mod:`repro.workloads.synthetic`, sized so that a
trial costs milliseconds: the point of a conformance sweep is many small
randomized configurations, not one big one.  The executor registry maps
algorithm names to uniform adapters over a trial, which is also the
mutation hook the differential tests use to prove the harness catches an
injected executor bug.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping

from repro.core.hhnl import iter_hhnl, run_hhnl
from repro.core.hvnl import iter_hvnl, run_hvnl
from repro.core.join import JoinEnvironment, TextJoinResult, TextJoinSpec
from repro.core.vvm import iter_vvm, run_vvm
from repro.cost.params import SystemParams
from repro.errors import ConformanceError
from repro.exec.stream import MatchBlock
from repro.storage.pages import PageGeometry
from repro.text.collection import DocumentCollection
from repro.workloads.synthetic import SyntheticSpec, generate_collection

#: uniform executor signature over one trial
ExecutorFn = Callable[[JoinEnvironment, "TrialConfig"], TextJoinResult]

#: uniform streaming-executor signature over one trial
StreamerFn = Callable[[JoinEnvironment, "TrialConfig"], Iterator[MatchBlock]]


@dataclass(frozen=True)
class TrialConfig:
    """Full reproduction parameters for one randomized trial.

    ``spec2 is None`` means a self-join (C2 *is* C1, sharing storage and
    indexes, as in Group 1 of the paper's simulations).
    """

    trial: int
    spec1: SyntheticSpec
    spec2: SyntheticSpec | None
    lam: int
    normalized: bool
    buffer_pages: int
    page_bytes: int
    alpha: float
    delta: float = 0.25
    interference: bool = False
    outer_selection: tuple[int, ...] | None = None
    inner_selection: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if self.lam <= 0:
            raise ConformanceError(f"lambda must be positive, got {self.lam}")

    @property
    def self_join(self) -> bool:
        """True when C2 is the same collection (and storage) as C1."""
        return self.spec2 is None

    def build_collections(self) -> tuple[DocumentCollection, DocumentCollection]:
        """Materialise (C1, C2); a self-join returns the same object twice."""
        c1 = generate_collection(self.spec1)
        c2 = c1 if self.spec2 is None else generate_collection(self.spec2)
        return c1, c2

    def build_environment(self) -> JoinEnvironment:
        """Both collections laid out on a fresh simulated disk."""
        c1, c2 = self.build_collections()
        return JoinEnvironment(c1, c2, PageGeometry(self.page_bytes))

    def system(self) -> SystemParams:
        """The trial's ``B``/``P``/``alpha``."""
        return SystemParams(
            buffer_pages=self.buffer_pages,
            page_bytes=self.page_bytes,
            alpha=self.alpha,
        )

    def join_spec(self) -> TextJoinSpec:
        """The trial's SIMILAR_TO specification."""
        return TextJoinSpec(lam=self.lam, normalized=self.normalized)

    def reproduction(self) -> dict[str, Any]:
        """JSON-serialisable parameters that replay this trial exactly."""
        def spec_dict(spec: SyntheticSpec) -> dict[str, Any]:
            return {
                "name": spec.name,
                "n_documents": spec.n_documents,
                "avg_terms_per_doc": spec.avg_terms_per_doc,
                "vocabulary_size": spec.vocabulary_size,
                "skew": spec.skew,
                "seed": spec.seed,
                "clusters": spec.clusters,
                "cluster_affinity": spec.cluster_affinity,
                "max_occurrences": spec.max_occurrences,
            }

        return {
            "trial": self.trial,
            "spec1": spec_dict(self.spec1),
            "spec2": None if self.spec2 is None else spec_dict(self.spec2),
            "lam": self.lam,
            "normalized": self.normalized,
            "buffer_pages": self.buffer_pages,
            "page_bytes": self.page_bytes,
            "alpha": self.alpha,
            "delta": self.delta,
            "interference": self.interference,
            "outer_selection": (
                None if self.outer_selection is None else list(self.outer_selection)
            ),
            "inner_selection": (
                None if self.inner_selection is None else list(self.inner_selection)
            ),
        }


def random_trial_config(rng: random.Random, trial: int) -> TrialConfig:
    """Draw one randomized configuration.

    Sizes are kept small (tens of documents, hundreds of terms) so a
    sweep of dozens of trials finishes in seconds, while still covering
    multi-page layouts, buffer eviction, multi-pass VVM, self-joins,
    selections on both sides, normalisation and the worst-case scenario.
    """
    n1 = rng.randint(6, 36)
    avg1 = rng.randint(4, 10)
    vocabulary = rng.randint(max(40, avg1 + 1), 140)
    skew = rng.choice((0.0, 0.7, 1.0, 1.3))
    spec1 = SyntheticSpec(
        name=f"conf{trial}-c1",
        n_documents=n1,
        avg_terms_per_doc=avg1,
        vocabulary_size=vocabulary,
        skew=skew,
        seed=rng.randrange(2**20),
    )

    if rng.random() < 0.15:
        spec2 = None
        n2 = n1
    else:
        n2 = rng.randint(4, 28)
        avg2 = rng.randint(4, 10)
        spec2 = SyntheticSpec(
            name=f"conf{trial}-c2",
            n_documents=n2,
            avg_terms_per_doc=avg2,
            vocabulary_size=vocabulary,
            skew=skew,
            seed=rng.randrange(2**20),
        )

    outer_selection: tuple[int, ...] | None = None
    if rng.random() < 0.25:
        outer_selection = tuple(
            sorted(rng.sample(range(n2), rng.randint(1, max(1, n2 - 1))))
        )
    inner_selection: tuple[int, ...] | None = None
    if rng.random() < 0.2:
        inner_selection = tuple(
            sorted(rng.sample(range(n1), rng.randint(1, max(1, n1 - 1))))
        )

    return TrialConfig(
        trial=trial,
        spec1=spec1,
        spec2=spec2,
        lam=rng.randint(1, 8),
        normalized=rng.random() < 0.3,
        buffer_pages=rng.randint(18, 72),
        page_bytes=rng.choice((256, 512, 1024)),
        alpha=rng.choice((2.0, 5.0, 10.0)),
        delta=rng.choice((0.15, 0.25, 0.5)),
        interference=rng.random() < 0.25,
        outer_selection=outer_selection,
        inner_selection=inner_selection,
    )


def random_cost_trial_config(rng: random.Random, trial: int) -> TrialConfig:
    """Draw one randomized configuration for measured-vs-model checks.

    Cost conformance needs *larger* collections than match conformance:
    the Section 5 formulas work with fractional average sizes while the
    simulated disk charges whole pages, so on a three-page workload the
    rounding alone can exceed the prediction.  These trials span tens of
    pages per collection, which keeps the discretization error a small
    fraction of the total while still finishing in milliseconds.
    """
    vocabulary = rng.randint(200, 600)
    skew = rng.choice((0.0, 0.7, 1.0))
    spec1 = SyntheticSpec(
        name=f"cost{trial}-c1",
        n_documents=rng.randint(50, 110),
        avg_terms_per_doc=rng.randint(10, 18),
        vocabulary_size=vocabulary,
        skew=skew,
        seed=rng.randrange(2**20),
    )
    spec2: SyntheticSpec | None = None
    if rng.random() >= 0.15:
        spec2 = SyntheticSpec(
            name=f"cost{trial}-c2",
            n_documents=rng.randint(40, 90),
            avg_terms_per_doc=rng.randint(10, 18),
            vocabulary_size=vocabulary,
            skew=skew,
            seed=rng.randrange(2**20),
        )
    return TrialConfig(
        trial=trial,
        spec1=spec1,
        spec2=spec2,
        lam=rng.randint(2, 6),
        normalized=False,
        buffer_pages=rng.randint(10, 48),
        page_bytes=rng.choice((512, 1024)),
        alpha=rng.choice((2.0, 5.0, 10.0)),
        delta=rng.choice((0.25, 0.5)),
    )


def _run_hhnl(environment: JoinEnvironment, config: TrialConfig) -> TextJoinResult:
    """HHNL adapter over a trial."""
    return run_hhnl(
        environment,
        config.join_spec(),
        config.system(),
        outer_ids=config.outer_selection,
        inner_ids=config.inner_selection,
        interference=config.interference,
    )


def _run_hvnl(environment: JoinEnvironment, config: TrialConfig) -> TextJoinResult:
    """HVNL adapter over a trial."""
    return run_hvnl(
        environment,
        config.join_spec(),
        config.system(),
        outer_ids=config.outer_selection,
        inner_ids=config.inner_selection,
        interference=config.interference,
        delta=config.delta,
    )


def _run_vvm(environment: JoinEnvironment, config: TrialConfig) -> TextJoinResult:
    """VVM adapter over a trial."""
    return run_vvm(
        environment,
        config.join_spec(),
        config.system(),
        outer_ids=config.outer_selection,
        inner_ids=config.inner_selection,
        interference=config.interference,
        delta=config.delta,
    )


def _iter_hhnl(environment: JoinEnvironment, config: TrialConfig) -> Iterator[MatchBlock]:
    """Streaming HHNL adapter over a trial."""
    return iter_hhnl(
        environment,
        config.join_spec(),
        config.system(),
        outer_ids=config.outer_selection,
        inner_ids=config.inner_selection,
        interference=config.interference,
    )


def _iter_hvnl(environment: JoinEnvironment, config: TrialConfig) -> Iterator[MatchBlock]:
    """Streaming HVNL adapter over a trial."""
    return iter_hvnl(
        environment,
        config.join_spec(),
        config.system(),
        outer_ids=config.outer_selection,
        inner_ids=config.inner_selection,
        interference=config.interference,
        delta=config.delta,
    )


def _iter_vvm(environment: JoinEnvironment, config: TrialConfig) -> Iterator[MatchBlock]:
    """Streaming VVM adapter over a trial."""
    return iter_vvm(
        environment,
        config.join_spec(),
        config.system(),
        outer_ids=config.outer_selection,
        inner_ids=config.inner_selection,
        interference=config.interference,
        delta=config.delta,
    )


#: name -> adapter; the default set every check cross-examines.  Tests
#: inject mutated entries here (via the ``executors=`` parameters, never
#: by mutating this mapping) to prove divergences are caught.
DEFAULT_EXECUTORS: Mapping[str, ExecutorFn] = {
    "HHNL": _run_hhnl,
    "HVNL": _run_hvnl,
    "VVM": _run_vvm,
}

#: name -> streaming adapter, aligned with :data:`DEFAULT_EXECUTORS` so
#: the streaming-equivalence check can pair each ``iter_*`` generator
#: with its materializing ``run_*`` twin on the same trial.
DEFAULT_STREAMERS: Mapping[str, StreamerFn] = {
    "HHNL": _iter_hhnl,
    "HVNL": _iter_hvnl,
    "VVM": _iter_vvm,
}


__all__ = [
    "DEFAULT_EXECUTORS",
    "DEFAULT_STREAMERS",
    "ExecutorFn",
    "StreamerFn",
    "TrialConfig",
    "random_cost_trial_config",
    "random_trial_config",
]
