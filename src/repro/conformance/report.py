"""The conformance report: one JSON document per sweep.

A report is a plain dictionary with a versioned ``schema`` tag
(:data:`REPORT_SCHEMA`), so CI can archive it as an artifact and later
tooling can detect incompatible layouts instead of misreading them.
:func:`validate_report` is deliberately strict — an unknown schema tag,
a missing section or a wrongly-typed field raises
:class:`~repro.errors.ConformanceError` — because a malformed report
that *looks* passing is worse than no report.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from repro.errors import ConformanceError

#: versioned schema tag embedded in (and demanded of) every report
REPORT_SCHEMA = "repro-conformance-report/1"

#: every check a report may contain, in canonical order
CHECK_NAMES = (
    "differential",
    "metamorphic",
    "costcheck",
    "streaming-equivalence",
    "workspace-roundtrip",
    "parallel-equivalence",
    "kernel-equivalence",
    "incremental-equivalence",
)


def build_report(
    seed: int,
    trials: int,
    sections: Mapping[str, Mapping[str, Any]],
) -> dict[str, Any]:
    """Assemble the report dictionary from per-check outcome summaries.

    ``sections`` maps check names (a subset of :data:`CHECK_NAMES`) to
    the matching outcome's ``to_dict()``; each must carry ``passed`` and
    ``divergences``.
    """
    unknown = sorted(set(sections) - set(CHECK_NAMES))
    if unknown:
        raise ConformanceError(f"unknown conformance checks: {unknown}")
    divergence_count = sum(
        len(section["divergences"]) for section in sections.values()
    )
    report = {
        "schema": REPORT_SCHEMA,
        "seed": seed,
        "trials": trials,
        "checks": {
            name: dict(sections[name]) for name in CHECK_NAMES if name in sections
        },
        "divergence_count": divergence_count,
        "passed": all(section["passed"] for section in sections.values()),
    }
    validate_report(report)
    return report


def validate_report(report: Mapping[str, Any]) -> None:
    """Raise :class:`~repro.errors.ConformanceError` unless well-formed."""
    if not isinstance(report, Mapping):
        raise ConformanceError("conformance report must be a mapping")
    schema = report.get("schema")
    if schema != REPORT_SCHEMA:
        raise ConformanceError(
            f"unsupported report schema {schema!r}, expected {REPORT_SCHEMA!r}"
        )
    for key, kind in (("seed", int), ("trials", int), ("passed", bool),
                      ("divergence_count", int), ("checks", Mapping)):
        if not isinstance(report.get(key), kind):
            raise ConformanceError(
                f"report field {key!r} missing or not a {kind.__name__}"
            )
    checks = report["checks"]
    unknown = sorted(set(checks) - set(CHECK_NAMES))
    if unknown:
        raise ConformanceError(f"report contains unknown checks: {unknown}")
    for name, section in checks.items():
        if not isinstance(section, Mapping):
            raise ConformanceError(f"check section {name!r} is not a mapping")
        if not isinstance(section.get("passed"), bool):
            raise ConformanceError(
                f"check section {name!r} has no boolean 'passed'"
            )
        if not isinstance(section.get("divergences"), list):
            raise ConformanceError(
                f"check section {name!r} has no 'divergences' list"
            )
    declared = report["divergence_count"]
    actual = sum(len(section["divergences"]) for section in checks.values())
    if declared != actual:
        raise ConformanceError(
            f"report declares {declared} divergences but lists {actual}"
        )


def save_report(report: Mapping[str, Any], path: str | Path) -> None:
    """Validate and write the report as pretty-printed JSON."""
    validate_report(report)
    Path(path).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


def load_report(path: str | Path) -> dict[str, Any]:
    """Read and validate a report written by :func:`save_report`."""
    try:
        raw = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ConformanceError(f"cannot read conformance report {path}: {exc}")
    validate_report(raw)
    return raw


__all__ = [
    "CHECK_NAMES",
    "REPORT_SCHEMA",
    "build_report",
    "load_report",
    "save_report",
    "validate_report",
]
