"""Workspace round-trip conformance: persisted datasets change nothing.

The workspace contract (:mod:`repro.workspace`) is *exact* equivalence:
an environment assembled from artifacts that went through disk must be
indistinguishable from one derived in memory — identical matches,
identical similarities, identical :class:`~repro.storage.iostats.IOStats`
down to the per-extent counters, identical executor extras.  Anything
less would make workspace-backed experiments incomparable with the
published in-memory numbers.

Each trial draws a random :class:`~repro.conformance.trials.TrialConfig`,
persists its collections with :func:`~repro.workspace.build_workspace`
into a temporary directory, reloads them through the ``loader`` hook
(:func:`~repro.workspace.load_workspace` by default — tests inject a
corrupting loader to prove the harness catches, e.g., a dropped inverted
entry), and runs every executor twice on fresh environments.
"""

from __future__ import annotations

import random
import tempfile
from typing import Callable, Mapping

from repro.conformance.differential import Divergence, DifferentialOutcome, _io_mismatch
from repro.conformance.trials import (
    DEFAULT_EXECUTORS,
    ExecutorFn,
    TrialConfig,
    random_trial_config,
)
from repro.core.environment import EnvironmentFactory, EnvironmentSpec
from repro.errors import InsufficientMemoryError
from repro.workspace.builder import build_workspace
from repro.workspace.loader import load_workspace

#: how a trial turns a workspace directory back into a factory; the
#: injection point for corruption-detection tests
LoaderFn = Callable[[str], EnvironmentFactory]


def _result_mismatch(memory: "object", loaded: "object") -> str | None:
    """Describe the first disagreement between the two runs, or None.

    Exact equality throughout — the d-cells hold integer weights, both
    runs compute similarities from the same integers, so even the floats
    must agree bit-for-bit.
    """
    if memory.matches != loaded.matches:
        missing = set(memory.matches) ^ set(loaded.matches)
        if missing:
            return (
                f"outer documents differ (symmetric difference {sorted(missing)})"
            )
        for outer_doc, hits in memory.matches.items():
            if loaded.matches[outer_doc] != hits:
                return (
                    f"matches for outer {outer_doc} differ: "
                    f"memory={hits} workspace={loaded.matches[outer_doc]}"
                )
        return "matches dicts differ"
    detail = _io_mismatch(memory.io, loaded.io)
    if detail is not None:
        return detail
    if memory.extras != loaded.extras:
        return f"extras differ: memory={memory.extras} workspace={loaded.extras}"
    return None


def run_workspace_roundtrip(
    seed: int,
    trials: int,
    *,
    executors: Mapping[str, ExecutorFn] | None = None,
    loader: LoaderFn | None = None,
    fail_fast: bool = False,
) -> DifferentialOutcome:
    """Prove save → load → join equals the all-in-memory join exactly.

    Every trial builds one workspace and every executor runs once over a
    fresh in-memory environment and once over a fresh environment from
    the loaded factory; any difference in matches, I/O counters or
    extras is a :class:`~repro.conformance.differential.Divergence`.  An
    executor may be infeasible under the drawn buffer — but then it must
    be infeasible on *both* environments (counted as a skip); raising on
    only one side is itself a divergence.
    """
    executors = DEFAULT_EXECUTORS if executors is None else executors
    loader = load_workspace if loader is None else loader
    rng = random.Random(seed)
    outcome = DifferentialOutcome(seed=seed, trials_requested=trials)

    for trial in range(trials):
        config = random_trial_config(rng, trial)
        c1, c2 = config.build_collections()
        spec = EnvironmentSpec(page_bytes=config.page_bytes)
        with tempfile.TemporaryDirectory(prefix="repro-ws-") as tmp:
            build_workspace(tmp, c1, None if config.self_join else c2, spec=spec)
            factory = loader(tmp)
            outcome.trials_run += 1

            for name, executor in executors.items():
                try:
                    memory_result = executor(config.build_environment(), config)
                except InsufficientMemoryError:
                    memory_result = None
                try:
                    loaded_result = executor(factory.create(), config)
                except InsufficientMemoryError:
                    loaded_result = None
                if memory_result is None and loaded_result is None:
                    outcome.skips[name] = outcome.skips.get(name, 0) + 1
                    continue
                outcome.comparisons += 1
                if memory_result is None or loaded_result is None:
                    side = "in-memory" if memory_result is None else "workspace"
                    detail = f"insufficient memory on the {side} side only"
                else:
                    detail = _result_mismatch(memory_result, loaded_result)
                if detail is not None:
                    outcome.divergences.append(
                        Divergence(
                            check="workspace-roundtrip",
                            executor=name,
                            trial=trial,
                            detail=detail,
                            reproduction=config.reproduction(),
                        )
                    )
        if fail_fast and outcome.divergences:
            break
    return outcome


__all__ = ["LoaderFn", "run_workspace_roundtrip"]
