"""textjoin-repro: processing joins between textual attributes.

A faithful, executable reproduction of *"Performance Analysis of Several
Algorithms for Processing Joins between Textual Attributes"* (Meng, Yu,
Wang, Rishe — ICDE 1996): the HHNL / HVNL / VVM join algorithms, their
six analytical I/O cost formulas, the integrated algorithm that picks the
cheapest one, and the full five-group simulation study over the paper's
TREC collection statistics.

Quickstart::

    from repro import (
        DocumentCollection, JoinEnvironment, TextJoinSpec,
        SystemParams, IntegratedJoin,
    )

    c1 = DocumentCollection.from_term_lists("resumes", [[1, 2, 3], [2, 4]])
    c2 = DocumentCollection.from_term_lists("jobs", [[2, 3], [1, 4]])
    env = JoinEnvironment(c1, c2)
    result = IntegratedJoin(env, SystemParams(buffer_pages=64)).run(
        TextJoinSpec(lam=1)
    )
    print(result.matches, result.io)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.constants import (
    DEFAULT_ALPHA,
    DEFAULT_BUFFER_PAGES,
    DEFAULT_DELTA,
    DEFAULT_LAMBDA,
    DEFAULT_PAGE_BYTES,
)
from repro.core import (
    IntegratedDecision,
    IntegratedJoin,
    JoinEnvironment,
    TextJoinResult,
    TextJoinSpec,
    run_hhnl,
    run_hvnl,
    run_vvm,
)
from repro.cost import (
    CostModel,
    CostReport,
    JoinSide,
    QueryParams,
    SystemParams,
    overlap_probabilities,
)
from repro.index import BPlusTree, CollectionStats, InvertedFile
from repro.text import Document, DocumentCollection, Tokenizer, Vocabulary

__version__ = "1.0.0"

__all__ = [
    "BPlusTree",
    "CollectionStats",
    "CostModel",
    "CostReport",
    "DEFAULT_ALPHA",
    "DEFAULT_BUFFER_PAGES",
    "DEFAULT_DELTA",
    "DEFAULT_LAMBDA",
    "DEFAULT_PAGE_BYTES",
    "Document",
    "DocumentCollection",
    "IntegratedDecision",
    "IntegratedJoin",
    "InvertedFile",
    "JoinEnvironment",
    "JoinSide",
    "QueryParams",
    "SystemParams",
    "TextJoinResult",
    "TextJoinSpec",
    "Tokenizer",
    "Vocabulary",
    "overlap_probabilities",
    "run_hhnl",
    "run_hvnl",
    "run_vvm",
]
