"""``python -m repro.analysis`` — run the linter from a shell."""

from __future__ import annotations

import sys

from repro.analysis.cli import run

if __name__ == "__main__":
    sys.exit(run())
