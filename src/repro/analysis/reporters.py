"""Text, JSON and SARIF renderings of an :class:`~repro.analysis.engine.AnalysisReport`.

The text form is for humans at a terminal (one ``path:line:col`` line
per finding); the JSON form is for CI gates and downstream tooling and
is stable: ``files``, ``rules``, ``findings``, ``suppressed``, ``clean``,
``cache``.  The SARIF form targets the SARIF 2.1.0 log format so code
hosts and IDEs can ingest lint results; :func:`validate_sarif` checks
the structural invariants this module relies on and
:func:`findings_from_sarif` converts a log back into findings for
round-trip tests.
"""

from __future__ import annotations

import json
from typing import Mapping, Sequence

from repro.analysis.engine import AnalysisReport, Finding
from repro.errors import AnalysisError

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
_SARIF_LEVELS = {"error", "warning", "note", "none"}


def _format_finding(finding: Finding) -> str:
    mark = " (suppressed)" if finding.suppressed else ""
    return (
        f"{finding.location}: {finding.rule_id} {finding.severity}: "
        f"{finding.message}{mark}"
    )


def render_text(report: AnalysisReport, *, show_suppressed: bool = False) -> str:
    """Human-readable report; one line per finding plus a summary line."""
    lines = [_format_finding(finding) for finding in report.findings]
    if show_suppressed:
        lines.extend(_format_finding(finding) for finding in report.suppressed)
    lines.append(
        f"{len(report.findings)} finding(s), {len(report.suppressed)} suppressed, "
        f"{report.n_files} file(s), {len(report.rule_ids)} rule(s)"
    )
    return "\n".join(lines)


def render_json(report: AnalysisReport) -> str:
    """The report as a stable JSON document (for CI and tooling)."""
    return json.dumps(report.as_dict(), indent=2, sort_keys=True)


def _sarif_result(finding: Finding) -> dict[str, object]:
    result: dict[str, object] = {
        "ruleId": finding.rule_id,
        "level": finding.severity if finding.severity in _SARIF_LEVELS else "error",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.column,
                    },
                }
            }
        ],
    }
    if finding.suppressed:
        result["suppressions"] = [{"kind": "inSource"}]
    return result


def render_sarif(
    report: AnalysisReport, rule_summaries: Mapping[str, str] | None = None
) -> str:
    """The report as a SARIF 2.1.0 log document.

    ``rule_summaries`` maps rule id to its one-line summary; ids without
    a summary still appear in the driver's rule table so every result's
    ``ruleId`` resolves.
    """
    summaries = dict(rule_summaries or {})
    rules = [
        {
            "id": rule_id,
            "shortDescription": {"text": summaries.get(rule_id, rule_id)},
        }
        for rule_id in report.rule_ids
    ]
    results = [
        _sarif_result(finding)
        for finding in (*report.findings, *report.suppressed)
    ]
    document = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analysis",
                        "informationUri": "https://example.invalid/repro",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def validate_sarif(document: object) -> None:
    """Check the structural invariants of a SARIF 2.1.0 log.

    Not a full JSON-Schema validation (the toolchain is stdlib-only) but
    enough to catch every shape mistake the renderer could make: raises
    :class:`~repro.errors.AnalysisError` on the first violation.
    """
    if not isinstance(document, dict):
        raise AnalysisError("SARIF log must be a JSON object")
    if document.get("version") != SARIF_VERSION:
        raise AnalysisError(
            f"SARIF version must be {SARIF_VERSION!r}, got "
            f"{document.get('version')!r}"
        )
    runs = document.get("runs")
    if not isinstance(runs, list) or not runs:
        raise AnalysisError("SARIF log must carry a non-empty 'runs' array")
    for run in runs:
        if not isinstance(run, dict):
            raise AnalysisError("each SARIF run must be an object")
        driver = run.get("tool", {}).get("driver") if isinstance(
            run.get("tool"), dict
        ) else None
        if not isinstance(driver, dict) or not driver.get("name"):
            raise AnalysisError("each SARIF run needs tool.driver.name")
        rule_ids = set()
        for rule in driver.get("rules", ()):
            if not isinstance(rule, dict) or not rule.get("id"):
                raise AnalysisError("each SARIF rule needs an 'id'")
            rule_ids.add(rule["id"])
        results = run.get("results")
        if not isinstance(results, list):
            raise AnalysisError("each SARIF run needs a 'results' array")
        for result in results:
            _validate_sarif_result(result, rule_ids)


def _validate_sarif_result(result: object, rule_ids: set[str]) -> None:
    if not isinstance(result, dict):
        raise AnalysisError("each SARIF result must be an object")
    rule_id = result.get("ruleId")
    if not rule_id:
        raise AnalysisError("each SARIF result needs a 'ruleId'")
    if rule_ids and rule_id not in rule_ids:
        raise AnalysisError(
            f"SARIF result references undeclared rule {rule_id!r}"
        )
    if result.get("level") not in _SARIF_LEVELS:
        raise AnalysisError(
            f"SARIF result level must be one of {sorted(_SARIF_LEVELS)}"
        )
    message = result.get("message")
    if not isinstance(message, dict) or "text" not in message:
        raise AnalysisError("each SARIF result needs message.text")
    locations = result.get("locations")
    if not isinstance(locations, list) or not locations:
        raise AnalysisError("each SARIF result needs a location")
    for location in locations:
        physical = (
            location.get("physicalLocation")
            if isinstance(location, dict)
            else None
        )
        if not isinstance(physical, dict):
            raise AnalysisError("each SARIF location needs physicalLocation")
        artifact = physical.get("artifactLocation")
        if not isinstance(artifact, dict) or not artifact.get("uri"):
            raise AnalysisError("physicalLocation needs artifactLocation.uri")
        region = physical.get("region")
        if not isinstance(region, dict) or not isinstance(
            region.get("startLine"), int
        ):
            raise AnalysisError("physicalLocation needs region.startLine")


def findings_from_sarif(document: Mapping[str, object]) -> tuple[Finding, ...]:
    """Rebuild findings from a SARIF log (the round-trip direction).

    The log is validated first, so malformed input raises
    :class:`~repro.errors.AnalysisError` rather than producing garbage.
    """
    validate_sarif(document)
    findings: list[Finding] = []
    runs: Sequence[Mapping[str, object]] = document["runs"]  # type: ignore[assignment]
    for run in runs:
        for result in run["results"]:  # type: ignore[index]
            location = result["locations"][0]["physicalLocation"]
            findings.append(
                Finding(
                    rule_id=str(result["ruleId"]),
                    severity=str(result["level"]),
                    path=str(location["artifactLocation"]["uri"]),
                    line=int(location["region"]["startLine"]),
                    column=int(location["region"].get("startColumn", 1)),
                    message=str(result["message"]["text"]),
                    suppressed=bool(result.get("suppressions")),
                )
            )
    return tuple(findings)


__all__ = [
    "SARIF_SCHEMA_URI",
    "SARIF_VERSION",
    "findings_from_sarif",
    "render_json",
    "render_sarif",
    "render_text",
    "validate_sarif",
]
