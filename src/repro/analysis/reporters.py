"""Text and JSON renderings of an :class:`~repro.analysis.engine.AnalysisReport`.

The text form is for humans at a terminal (one ``path:line:col`` line
per finding); the JSON form is for CI gates and downstream tooling and
is stable: ``files``, ``rules``, ``findings``, ``suppressed``, ``clean``.
"""

from __future__ import annotations

import json

from repro.analysis.engine import AnalysisReport, Finding


def _format_finding(finding: Finding) -> str:
    mark = " (suppressed)" if finding.suppressed else ""
    return (
        f"{finding.location}: {finding.rule_id} {finding.severity}: "
        f"{finding.message}{mark}"
    )


def render_text(report: AnalysisReport, *, show_suppressed: bool = False) -> str:
    """Human-readable report; one line per finding plus a summary line."""
    lines = [_format_finding(finding) for finding in report.findings]
    if show_suppressed:
        lines.extend(_format_finding(finding) for finding in report.suppressed)
    lines.append(
        f"{len(report.findings)} finding(s), {len(report.suppressed)} suppressed, "
        f"{report.n_files} file(s), {len(report.rule_ids)} rule(s)"
    )
    return "\n".join(lines)


def render_json(report: AnalysisReport) -> str:
    """The report as a stable JSON document (for CI and tooling)."""
    return json.dumps(report.as_dict(), indent=2, sort_keys=True)


__all__ = ["render_json", "render_text"]
