"""Core of the domain-aware static-analysis engine.

The engine parses every Python file it is pointed at with the stdlib
:mod:`ast`, hands each module to a set of registered rules, and collects
:class:`Finding` objects.  It exists because the paper's cost formulas
(``hhs/hhr``, ``hvs/hvr``, ``vvs/vvr``) rest on invariants that unit
tests cannot watch everywhere at once: page counts must never mix with
byte counts, cost formulas must stay pure, and every simulated read must
be charged through :class:`~repro.storage.iostats.IOStats`.

Rules come in two shapes.  A plain :class:`Rule` sees one
:class:`ModuleContext` at a time.  A :class:`ProgramRule` additionally
receives a :class:`~repro.analysis.program.model.ProgramModel` — symbol
table, call graph, dataflow — after every module is parsed, so it can
reason across files (transitive cost purity, process-pool worker
safety, stale suppressions).

Suppressions
------------
A finding is suppressed by a trailing *comment* on the reported line —
the marker must be a real ``#`` comment token, text inside strings or
docstrings (such as this paragraph) does not count::

    from repro.storage.disk import SimulatedDisk  # repro: ignore[RA-CORE-IO] -- layout boundary

Several ids may be listed, comma-separated.  Suppressed findings are
kept (so reporters can show them and tests can count them) but do not
affect the exit code.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from functools import partial
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping, Sequence

from repro.errors import AnalysisError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.analysis.program.cache import AnalysisCache
    from repro.analysis.program.model import ProgramModel

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

_SUPPRESSION_RE = re.compile(r"#\s*repro:\s*ignore\[([A-Za-z0-9_\-, ]+)\]")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    severity: str
    path: str
    line: int
    column: int
    message: str
    suppressed: bool = False

    @property
    def location(self) -> str:
        """``path:line:column`` — the clickable anchor of the finding."""
        return f"{self.path}:{self.line}:{self.column}"

    def as_dict(self) -> dict[str, object]:
        """A JSON-serialisable view of the finding."""
        return {
            "rule": self.rule_id,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "suppressed": self.suppressed,
        }


@dataclass(frozen=True)
class ModuleContext:
    """One parsed module plus everything a rule needs to inspect it."""

    path: Path
    module_name: str
    source: str
    tree: ast.Module
    suppressions: Mapping[int, frozenset[str]]

    def in_package(self, prefix: str) -> bool:
        """True when the module lives at or below the dotted ``prefix``."""
        return self.module_name == prefix or self.module_name.startswith(prefix + ".")


class Rule:
    """Base class for analysis rules.

    Subclasses set :attr:`rule_id`, :attr:`severity` and :attr:`summary`
    and implement :meth:`check`, yielding findings via :meth:`finding`.
    """

    rule_id: str = ""
    severity: str = SEVERITY_ERROR
    summary: str = ""

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        """Yield every violation of this rule in ``module``."""
        raise NotImplementedError

    def finding(self, module: ModuleContext, node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node``, honouring suppressions."""
        line = int(getattr(node, "lineno", 1))
        column = int(getattr(node, "col_offset", 0)) + 1
        suppressed = self.rule_id in module.suppressions.get(line, frozenset())
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            path=str(module.path),
            line=line,
            column=column,
            message=message,
            suppressed=suppressed,
        )


class ProgramRule(Rule):
    """A rule that reasons over the whole program, not one module.

    The engine runs :meth:`check_program` once per analysis, after every
    file has been parsed, passing the assembled
    :class:`~repro.analysis.program.model.ProgramModel`.  Per-module
    :meth:`check` is a no-op for these rules.

    Rules with :attr:`needs_findings` set run *after* all other rules
    and see, via ``program.suppression_hits``, which suppressions
    absorbed a finding this run — the stale-suppression rule lives on
    that ordering.
    """

    needs_findings: bool = False

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        """Program rules contribute nothing during the per-module pass."""
        return iter(())

    def check_program(self, program: "ProgramModel") -> Iterator[Finding]:
        """Yield every whole-program violation of this rule."""
        raise NotImplementedError


@dataclass(frozen=True)
class AnalysisReport:
    """The outcome of one engine run."""

    findings: tuple[Finding, ...]
    suppressed: tuple[Finding, ...]
    n_files: int
    rule_ids: tuple[str, ...]
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def clean(self) -> bool:
        """True when no unsuppressed finding was produced."""
        return not self.findings

    def as_dict(self) -> dict[str, object]:
        """A JSON-serialisable view of the whole report."""
        return {
            "files": self.n_files,
            "rules": list(self.rule_ids),
            "findings": [f.as_dict() for f in self.findings],
            "suppressed": [f.as_dict() for f in self.suppressed],
            "clean": self.clean,
            "cache": {"hits": self.cache_hits, "misses": self.cache_misses},
        }


def _suppression_ids(comment: str) -> frozenset[str]:
    """Rule ids named by one suppression comment ('' comments give none)."""
    match = _SUPPRESSION_RE.search(comment)
    if not match:
        return frozenset()
    return frozenset(
        part.strip() for part in match.group(1).split(",") if part.strip()
    )


def _parse_suppressions_regex(source: str) -> dict[int, frozenset[str]]:
    """Line-regex fallback for sources the tokenizer rejects."""
    table: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        ids = _suppression_ids(line)
        if ids:
            table[lineno] = ids
    return table


def parse_suppressions(source: str) -> dict[int, frozenset[str]]:
    """Map line number to the rule ids suppressed on that line.

    Only real ``#`` comment tokens count: the source is tokenized, so a
    suppression example quoted inside a docstring is not a suppression.
    Sources the tokenizer cannot handle fall back to a line regex.
    """
    table: dict[int, frozenset[str]] = {}
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type != tokenize.COMMENT:
                continue
            ids = _suppression_ids(token.string)
            if ids:
                table[token.start[0]] = ids
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return _parse_suppressions_regex(source)
    return table


def module_name_for(path: Path) -> str:
    """Dotted module name inferred from the path.

    The rightmost ``repro`` directory component anchors the package, so
    both ``src/repro/cost/hvnl.py`` and a test fixture laid out as
    ``fixtures/repro/cost/bad.py`` resolve to ``repro.cost.*`` and are
    scoped identically by path-sensitive rules.
    """
    parts = list(path.parts)
    stem = path.stem
    anchor = None
    for index in range(len(parts) - 2, -1, -1):
        if parts[index] == "repro":
            anchor = index
            break
    if anchor is None:
        return stem
    dotted = list(parts[anchor:-1])
    if stem != "__init__":
        dotted.append(stem)
    return ".".join(dotted)


def load_module(path: Path) -> ModuleContext:
    """Parse one file into a :class:`ModuleContext`.

    Raises :class:`~repro.errors.AnalysisError` for unreadable or
    syntactically invalid files.
    """
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise AnalysisError(f"cannot read {path}: {exc}") from exc
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        raise AnalysisError(f"cannot parse {path}: {exc}") from exc
    return ModuleContext(
        path=path,
        module_name=module_name_for(path),
        source=source,
        tree=tree,
        suppressions=parse_suppressions(source),
    )


def iter_python_files(paths: Iterable[Path]) -> list[Path]:
    """Expand files and directories into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for path in paths:
        if path.is_dir():
            files.update(
                candidate
                for candidate in path.rglob("*.py")
                if "__pycache__" not in candidate.parts
            )
        elif path.is_file():
            files.add(path)
        else:
            raise AnalysisError(f"no such file or directory: {path}")
    return sorted(files)


def _analyze_file_task(
    path_str: str, rules: Sequence[Rule]
) -> tuple[Finding, ...]:
    """Run the local rules over one file — the process-pool worker entry.

    Takes only picklable inputs (a path string and stateless rule
    instances) and returns picklable findings; parses the file itself so
    no AST crosses a process boundary.
    """
    module = load_module(Path(path_str))
    found: list[Finding] = []
    for rule in rules:
        found.extend(rule.check(module))
    return tuple(found)


def _rules_signature_of(rules: Sequence[Rule]) -> str:
    """Cache signature of a rule set (ids plus implementing classes)."""
    from repro.analysis.program.cache import rules_signature

    return rules_signature(
        [
            f"{rule.rule_id}:{type(rule).__module__}.{type(rule).__qualname__}"
            for rule in rules
        ]
    )


def _select_rules(
    rules: Sequence[Rule], select: Iterable[str] | None
) -> list[Rule]:
    """The active subset of ``rules``; unknown ids fail loudly."""
    active = list(rules)
    if select is None:
        return active
    wanted = set(select)
    known = {rule.rule_id for rule in active}
    unknown = wanted - known
    if unknown:
        raise AnalysisError(
            f"unknown rule id(s): {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(known))}"
        )
    return [rule for rule in active if rule.rule_id in wanted]


def _run_program_rules(
    program_rules: Sequence["ProgramRule"],
    modules: Sequence[ModuleContext],
    known_rule_ids: Iterable[str],
    active_rule_ids: Iterable[str],
    prior_findings: Sequence[Finding],
) -> tuple[Finding, ...]:
    """Build the program model and run the whole-program rules in order."""
    from repro.analysis.program.model import ProgramModel

    program = ProgramModel.build(
        modules,
        known_rule_ids=known_rule_ids,
        active_rule_ids=active_rule_ids,
    )
    collected: list[Finding] = []
    for rule in program_rules:
        if not rule.needs_findings:
            collected.extend(rule.check_program(program))
    late = [rule for rule in program_rules if rule.needs_findings]
    if late:
        program.mark_suppression_hits([*prior_findings, *collected])
        for rule in late:
            collected.extend(rule.check_program(program))
    return tuple(collected)


def analyze_paths(
    paths: Sequence[Path],
    rules: Sequence[Rule],
    select: Iterable[str] | None = None,
    *,
    jobs: int = 1,
    cache: "AnalysisCache | None" = None,
) -> AnalysisReport:
    """Run ``rules`` over every Python file reachable from ``paths``.

    ``select`` restricts the run to the given rule ids; unknown ids
    raise :class:`~repro.errors.AnalysisError` so typos fail loudly.

    ``jobs`` > 1 fans the per-module rules out over a
    :class:`~concurrent.futures.ProcessPoolExecutor`; reports are
    byte-identical to a sequential run because findings are sorted by
    location, never by completion order.

    ``cache`` (an :class:`~repro.analysis.program.cache.AnalysisCache`)
    reuses findings for files whose SHA-256 is unchanged; the report's
    ``cache_hits``/``cache_misses`` counters are the only fields a warm
    run may change.
    """
    if jobs < 1:
        raise AnalysisError(f"jobs must be a positive integer, got {jobs}")
    active = _select_rules(rules, select)
    local_rules = [rule for rule in active if not isinstance(rule, ProgramRule)]
    program_rules = [rule for rule in active if isinstance(rule, ProgramRule)]

    files = iter_python_files(paths)
    per_file: dict[str, tuple[Finding, ...]] = {}
    shas: dict[str, str] = {}
    cache_hits = 0
    cache_misses = 0
    local_signature = ""

    pending: list[Path] = list(files)
    if cache is not None:
        from repro.analysis.program.cache import file_sha256

        local_signature = _rules_signature_of(local_rules)
        pending = []
        for file_path in files:
            key = str(file_path)
            shas[key] = file_sha256(file_path)
            hit = cache.lookup_file(key, shas[key], local_signature)
            if hit is not None:
                per_file[key] = hit
                cache_hits += 1
            else:
                pending.append(file_path)
                cache_misses += 1

    contexts: dict[str, ModuleContext] = {}

    def context_for(file_path: Path) -> ModuleContext:
        key = str(file_path)
        if key not in contexts:
            contexts[key] = load_module(file_path)
        return contexts[key]

    if pending:
        if jobs > 1 and len(pending) > 1:
            worker = partial(_analyze_file_task, rules=tuple(local_rules))
            chunksize = max(1, len(pending) // (jobs * 4))
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                results = list(
                    pool.map(
                        worker,
                        [str(file_path) for file_path in pending],
                        chunksize=chunksize,
                    )
                )
            for file_path, found in zip(pending, results):
                per_file[str(file_path)] = found
        else:
            for file_path in pending:
                module = context_for(file_path)
                per_file[str(file_path)] = tuple(
                    found
                    for rule in local_rules
                    for found in rule.check(module)
                )
        if cache is not None:
            for file_path in pending:
                key = str(file_path)
                cache.store_file(key, shas[key], local_signature, per_file[key])

    local_findings = [
        found for file_path in files for found in per_file.get(str(file_path), ())
    ]

    program_findings: tuple[Finding, ...] = ()
    if program_rules:
        fingerprint = ""
        program_signature = ""
        cached_program: tuple[Finding, ...] | None = None
        if cache is not None:
            from repro.analysis.program.cache import program_fingerprint

            fingerprint = program_fingerprint(shas)
            program_signature = _rules_signature_of(active)
            cached_program = cache.lookup_program(fingerprint, program_signature)
        if cached_program is not None:
            program_findings = cached_program
            cache_hits += 1
        else:
            modules = [context_for(file_path) for file_path in files]
            program_findings = _run_program_rules(
                program_rules,
                modules,
                known_rule_ids=[rule.rule_id for rule in rules],
                active_rule_ids=[rule.rule_id for rule in active],
                prior_findings=local_findings,
            )
            if cache is not None:
                cache.store_program(
                    fingerprint, program_signature, program_findings
                )
                cache_misses += 1
    if cache is not None:
        cache.save()

    open_findings: list[Finding] = []
    suppressed: list[Finding] = []
    for found in [*local_findings, *program_findings]:
        if found.suppressed:
            suppressed.append(found)
        else:
            open_findings.append(found)
    order = lambda f: (f.path, f.line, f.column, f.rule_id)  # noqa: E731
    return AnalysisReport(
        findings=tuple(sorted(open_findings, key=order)),
        suppressed=tuple(sorted(suppressed, key=order)),
        n_files=len(files),
        rule_ids=tuple(rule.rule_id for rule in active),
        cache_hits=cache_hits,
        cache_misses=cache_misses,
    )


__all__ = [
    "AnalysisReport",
    "Finding",
    "ModuleContext",
    "ProgramRule",
    "Rule",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "analyze_paths",
    "iter_python_files",
    "load_module",
    "module_name_for",
    "parse_suppressions",
]
