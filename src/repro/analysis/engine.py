"""Core of the domain-aware static-analysis engine.

The engine parses every Python file it is pointed at with the stdlib
:mod:`ast`, hands each module to a set of registered rules, and collects
:class:`Finding` objects.  It exists because the paper's cost formulas
(``hhs/hhr``, ``hvs/hvr``, ``vvs/vvr``) rest on invariants that unit
tests cannot watch everywhere at once: page counts must never mix with
byte counts, cost formulas must stay pure, and every simulated read must
be charged through :class:`~repro.storage.iostats.IOStats`.

Suppressions
------------
A finding is suppressed by a trailing comment on the reported line::

    from repro.storage.disk import SimulatedDisk  # repro: ignore[RA-CORE-IO] -- layout boundary

Several ids may be listed, comma-separated.  Suppressed findings are
kept (so reporters can show them and tests can count them) but do not
affect the exit code.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Mapping, Sequence

from repro.errors import AnalysisError

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

_SUPPRESSION_RE = re.compile(r"#\s*repro:\s*ignore\[([A-Za-z0-9_\-, ]+)\]")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    severity: str
    path: str
    line: int
    column: int
    message: str
    suppressed: bool = False

    @property
    def location(self) -> str:
        """``path:line:column`` — the clickable anchor of the finding."""
        return f"{self.path}:{self.line}:{self.column}"

    def as_dict(self) -> dict[str, object]:
        """A JSON-serialisable view of the finding."""
        return {
            "rule": self.rule_id,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "suppressed": self.suppressed,
        }


@dataclass(frozen=True)
class ModuleContext:
    """One parsed module plus everything a rule needs to inspect it."""

    path: Path
    module_name: str
    source: str
    tree: ast.Module
    suppressions: Mapping[int, frozenset[str]]

    def in_package(self, prefix: str) -> bool:
        """True when the module lives at or below the dotted ``prefix``."""
        return self.module_name == prefix or self.module_name.startswith(prefix + ".")


class Rule:
    """Base class for analysis rules.

    Subclasses set :attr:`rule_id`, :attr:`severity` and :attr:`summary`
    and implement :meth:`check`, yielding findings via :meth:`finding`.
    """

    rule_id: str = ""
    severity: str = SEVERITY_ERROR
    summary: str = ""

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        """Yield every violation of this rule in ``module``."""
        raise NotImplementedError

    def finding(self, module: ModuleContext, node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node``, honouring suppressions."""
        line = int(getattr(node, "lineno", 1))
        column = int(getattr(node, "col_offset", 0)) + 1
        suppressed = self.rule_id in module.suppressions.get(line, frozenset())
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            path=str(module.path),
            line=line,
            column=column,
            message=message,
            suppressed=suppressed,
        )


@dataclass(frozen=True)
class AnalysisReport:
    """The outcome of one engine run."""

    findings: tuple[Finding, ...]
    suppressed: tuple[Finding, ...]
    n_files: int
    rule_ids: tuple[str, ...]

    @property
    def clean(self) -> bool:
        """True when no unsuppressed finding was produced."""
        return not self.findings

    def as_dict(self) -> dict[str, object]:
        """A JSON-serialisable view of the whole report."""
        return {
            "files": self.n_files,
            "rules": list(self.rule_ids),
            "findings": [f.as_dict() for f in self.findings],
            "suppressed": [f.as_dict() for f in self.suppressed],
            "clean": self.clean,
        }


def parse_suppressions(source: str) -> dict[int, frozenset[str]]:
    """Map line number to the rule ids suppressed on that line."""
    table: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESSION_RE.search(line)
        if match:
            ids = frozenset(
                part.strip() for part in match.group(1).split(",") if part.strip()
            )
            if ids:
                table[lineno] = ids
    return table


def module_name_for(path: Path) -> str:
    """Dotted module name inferred from the path.

    The rightmost ``repro`` directory component anchors the package, so
    both ``src/repro/cost/hvnl.py`` and a test fixture laid out as
    ``fixtures/repro/cost/bad.py`` resolve to ``repro.cost.*`` and are
    scoped identically by path-sensitive rules.
    """
    parts = list(path.parts)
    stem = path.stem
    anchor = None
    for index in range(len(parts) - 2, -1, -1):
        if parts[index] == "repro":
            anchor = index
            break
    if anchor is None:
        return stem
    dotted = list(parts[anchor:-1])
    if stem != "__init__":
        dotted.append(stem)
    return ".".join(dotted)


def load_module(path: Path) -> ModuleContext:
    """Parse one file into a :class:`ModuleContext`.

    Raises :class:`~repro.errors.AnalysisError` for unreadable or
    syntactically invalid files.
    """
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise AnalysisError(f"cannot read {path}: {exc}") from exc
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        raise AnalysisError(f"cannot parse {path}: {exc}") from exc
    return ModuleContext(
        path=path,
        module_name=module_name_for(path),
        source=source,
        tree=tree,
        suppressions=parse_suppressions(source),
    )


def iter_python_files(paths: Iterable[Path]) -> list[Path]:
    """Expand files and directories into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for path in paths:
        if path.is_dir():
            files.update(
                candidate
                for candidate in path.rglob("*.py")
                if "__pycache__" not in candidate.parts
            )
        elif path.is_file():
            files.add(path)
        else:
            raise AnalysisError(f"no such file or directory: {path}")
    return sorted(files)


def analyze_paths(
    paths: Sequence[Path], rules: Sequence[Rule], select: Iterable[str] | None = None
) -> AnalysisReport:
    """Run ``rules`` over every Python file reachable from ``paths``.

    ``select`` restricts the run to the given rule ids; unknown ids
    raise :class:`~repro.errors.AnalysisError` so typos fail loudly.
    """
    active = list(rules)
    if select is not None:
        wanted = set(select)
        known = {rule.rule_id for rule in active}
        unknown = wanted - known
        if unknown:
            raise AnalysisError(
                f"unknown rule id(s): {', '.join(sorted(unknown))}; "
                f"known: {', '.join(sorted(known))}"
            )
        active = [rule for rule in active if rule.rule_id in wanted]

    open_findings: list[Finding] = []
    suppressed: list[Finding] = []
    files = iter_python_files(paths)
    for file_path in files:
        module = load_module(file_path)
        for rule in active:
            for found in rule.check(module):
                if found.suppressed:
                    suppressed.append(found)
                else:
                    open_findings.append(found)
    order = lambda f: (f.path, f.line, f.column, f.rule_id)  # noqa: E731
    return AnalysisReport(
        findings=tuple(sorted(open_findings, key=order)),
        suppressed=tuple(sorted(suppressed, key=order)),
        n_files=len(files),
        rule_ids=tuple(rule.rule_id for rule in active),
    )


__all__ = [
    "AnalysisReport",
    "Finding",
    "ModuleContext",
    "Rule",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "analyze_paths",
    "iter_python_files",
    "load_module",
    "module_name_for",
    "parse_suppressions",
]
