"""RA-STALE-SUPPRESS — every suppression must still suppress something.

A ``# repro: ignore[RULE-ID] -- reason`` comment is a standing claim:
*this line violates RULE-ID on purpose*.  When the code moves on — the
violation is fixed, the rule is renamed, the line is refactored — the
comment silently outlives its reason and starts masking *future*
violations on that line.  This rule runs after every other rule and
flags each suppression that absorbed no finding this run.

A suppressed id is judged when it is active in this run, or when no
rule with that id exists at all (a typo or a renamed rule can never
fire, so such a suppression is stale under any ``--select``).  Ids that
exist but were deselected are left alone — a partial run proves
nothing about them.
"""

from __future__ import annotations

from types import SimpleNamespace
from typing import Iterator

from repro.analysis.engine import Finding, ProgramRule
from repro.analysis.program.model import ProgramModel


class StaleSuppressionRule(ProgramRule):
    """Flag ``repro: ignore`` comments whose rule no longer fires there."""

    rule_id = "RA-STALE-SUPPRESS"
    needs_findings = True
    summary = (
        "a '# repro: ignore[...]' comment whose rule no longer fires on "
        "that line is dead and must be removed"
    )

    def check_program(self, program: ProgramModel) -> Iterator[Finding]:
        """Yield one finding per suppression that absorbed no finding."""
        for context in program.modules:
            path = str(context.path)
            for line in sorted(context.suppressions):
                for suppressed_id in sorted(context.suppressions[line]):
                    if suppressed_id == self.rule_id:
                        continue  # judging our own marker would be circular
                    known = suppressed_id in program.known_rule_ids
                    if known and suppressed_id not in program.active_rule_ids:
                        continue  # deselected this run; nothing is proven
                    if (path, line, suppressed_id) in program.suppression_hits:
                        continue
                    anchor = SimpleNamespace(lineno=line, col_offset=0)
                    if known:
                        message = (
                            f"suppression ignore[{suppressed_id}] is stale: "
                            f"{suppressed_id} no longer fires on this line — "
                            "remove the comment so future violations surface"
                        )
                    else:
                        message = (
                            f"suppression names unknown rule id "
                            f"{suppressed_id!r}; it can never fire, so the "
                            "comment is dead — remove or correct it"
                        )
                    yield self.finding(context, anchor, message)


__all__ = ["StaleSuppressionRule"]
