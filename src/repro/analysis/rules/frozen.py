"""RA-FROZEN — parameter and statistics dataclasses must be immutable.

Cost formulas are memo-safe and comparable only because their inputs
(``SystemParams``, ``QueryParams``, ``CollectionStats``, the per-
algorithm ``*Cost`` results) cannot change under them.  Any
``@dataclass`` whose name ends in ``Params``, ``Stats``, ``Spec`` or
``Cost`` therefore has to be declared ``frozen=True``; deliberately
mutable accumulators (e.g. the ``IOStats`` counters) carry an explicit
suppression with a justification.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, ModuleContext, Rule

_VALUE_TYPE_SUFFIXES = ("Params", "Stats", "Spec", "Cost")


def _dataclass_decorator(node: ast.ClassDef) -> ast.expr | None:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return decorator
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return decorator
    return None


def _is_frozen(decorator: ast.expr) -> bool:
    if not isinstance(decorator, ast.Call):
        return False
    for keyword in decorator.keywords:
        if keyword.arg == "frozen":
            return isinstance(keyword.value, ast.Constant) and bool(
                keyword.value.value
            )
    return False


class FrozenValueTypesRule(Rule):
    """Flag mutable ``@dataclass`` value types (``*Params`` etc.)."""

    rule_id = "RA-FROZEN"
    summary = (
        "dataclasses named *Params/*Stats/*Spec/*Cost must be "
        "@dataclass(frozen=True)"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        """Yield a finding per mutable value-type dataclass."""
        if not module.in_package("repro"):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not node.name.endswith(_VALUE_TYPE_SUFFIXES):
                continue
            decorator = _dataclass_decorator(node)
            if decorator is not None and not _is_frozen(decorator):
                yield self.finding(
                    module,
                    node,
                    f"value type {node.name} is a mutable dataclass; declare it "
                    "@dataclass(frozen=True) so cost inputs cannot drift",
                )


__all__ = ["FrozenValueTypesRule"]
