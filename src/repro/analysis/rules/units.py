"""RA-UNITS — unit discipline for the cost-model quantities.

The paper's formulas juggle five incompatible units: *pages* (``B``,
``D``, ``I``, ``Bt``), *bytes* (``P``, cell sizes), *terms* (``T``,
``K``), *entries* (``X``) and *documents* (``N``).  Mixing them silently
is exactly the class of bug that corrupts a cost model while every unit
test still passes, so any addition, subtraction, comparison or direct
assignment between identifiers tagged with different units is flagged.
Conversions must go through arithmetic (``pages * page_bytes``) or a
helper, which the rule deliberately does not flag.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, ModuleContext, Rule

#: identifier suffix -> unit tag
_SUFFIX_UNITS = {
    "pages": "pages",
    "bytes": "bytes",
    "terms": "terms",
    "entries": "entries",
    "documents": "documents",
    "docs": "documents",
    "records": "records",
}

_COMPARE_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)


def unit_of_name(name: str) -> str | None:
    """The unit an identifier advertises, or ``None``.

    Plural suffixes tag counts (``buffer_pages`` -> pages); singular
    forms (``first_page``) are ordinals, not quantities, and stay
    untagged so index arithmetic is never flagged.
    """
    lowered = name.lower()
    if lowered in _SUFFIX_UNITS:
        return _SUFFIX_UNITS[lowered]
    tail = lowered.rsplit("_", 1)[-1]
    if tail != lowered and tail in _SUFFIX_UNITS:
        return _SUFFIX_UNITS[tail]
    return None


def _expr_unit(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return unit_of_name(node.id)
    if isinstance(node, ast.Attribute):
        return unit_of_name(node.attr)
    return None


class UnitDisciplineRule(Rule):
    """Flag additive arithmetic, comparison or assignment across units."""

    rule_id = "RA-UNITS"
    summary = (
        "pages/bytes/terms/entries/documents quantities must not be added, "
        "compared or cross-assigned without an explicit conversion"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        """Walk the module and yield every cross-unit operation."""
        for node in ast.walk(module.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
                yield from self._binop(module, node)
            elif isinstance(node, ast.Compare):
                yield from self._compare(module, node)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    yield from self._assignment(module, node, target, node.value)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                yield from self._assignment(module, node, node.target, node.value)
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                yield from self._assignment(module, node, node.target, node.value)

    def _binop(self, module: ModuleContext, node: ast.BinOp) -> Iterator[Finding]:
        left, right = _expr_unit(node.left), _expr_unit(node.right)
        if left is not None and right is not None and left != right:
            verb = "adds" if isinstance(node.op, ast.Add) else "subtracts"
            yield self.finding(
                module,
                node,
                f"{verb} {right} to/from {left} without an explicit conversion",
            )

    def _compare(self, module: ModuleContext, node: ast.Compare) -> Iterator[Finding]:
        operands = [node.left, *node.comparators]
        for index, op in enumerate(node.ops):
            if not isinstance(op, _COMPARE_OPS):
                continue
            left = _expr_unit(operands[index])
            right = _expr_unit(operands[index + 1])
            if left is not None and right is not None and left != right:
                yield self.finding(
                    module,
                    node,
                    f"compares a {left} quantity against a {right} quantity",
                )

    def _assignment(
        self,
        module: ModuleContext,
        node: ast.AST,
        target: ast.expr,
        value: ast.expr,
    ) -> Iterator[Finding]:
        left = _expr_unit(target)
        right = _expr_unit(value)
        if left is not None and right is not None and left != right:
            yield self.finding(
                module,
                node,
                f"assigns a {right} quantity to a {left} variable "
                "without an explicit conversion",
            )


__all__ = ["UnitDisciplineRule", "unit_of_name"]
