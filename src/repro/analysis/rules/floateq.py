"""RA-FLOAT-EQ — no exact float equality in cost and similarity code.

Costs and similarities are accumulated floats; ``==``/``!=`` against a
float literal (or a freshly divided value) encodes an exact-representation
assumption that breaks silently when a formula is re-ordered.  Use an
ordering comparison, ``math.isclose`` or an explicit epsilon instead.
Scoped to ``repro.cost`` and the similarity modules, where the numbers
are genuinely approximate; discrete code may keep exact sentinels.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, ModuleContext, Rule


def _is_floatish(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
        return True
    if isinstance(node, ast.UnaryOp):
        return _is_floatish(node.operand)
    return False


class FloatEqualityRule(Rule):
    """Flag ``==``/``!=`` where either operand is visibly a float."""

    rule_id = "RA-FLOAT-EQ"
    summary = (
        "cost/similarity code must not compare floats with == or !=; use "
        "ordering, math.isclose or an epsilon"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        """Yield a finding per exact float comparison in scope."""
        if not (
            module.in_package("repro.cost") or "similarity" in module.module_name
        ):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_floatish(operands[index]) or _is_floatish(operands[index + 1]):
                    yield self.finding(
                        module,
                        node,
                        "exact float equality; use an ordering comparison, "
                        "math.isclose or an explicit epsilon",
                    )


__all__ = ["FloatEqualityRule"]
