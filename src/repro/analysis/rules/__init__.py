"""The domain-aware rule set; see each module for the rationale.

:func:`default_rules` is the single assembly point — the CLI, the tier-1
self-check and the fixture tests all instantiate the same list, so a
rule registered here is automatically enforced everywhere.
"""

from __future__ import annotations

from repro.analysis.engine import Rule
from repro.analysis.rules.api import PublicApiRule
from repro.analysis.rules.asserts import NoBareAssertRule
from repro.analysis.rules.context_discipline import ContextDisciplineRule
from repro.analysis.rules.errors_discipline import ErrorHierarchyRule
from repro.analysis.rules.floateq import FloatEqualityRule
from repro.analysis.rules.frozen import FrozenValueTypesRule
from repro.analysis.rules.io_discipline import CoreIODisciplineRule
from repro.analysis.rules.purity import CostPurityRule
from repro.analysis.rules.units import UnitDisciplineRule


def default_rules() -> tuple[Rule, ...]:
    """Instantiate every registered rule, in reporting order."""
    return (
        UnitDisciplineRule(),
        CostPurityRule(),
        CoreIODisciplineRule(),
        ContextDisciplineRule(),
        FrozenValueTypesRule(),
        FloatEqualityRule(),
        ErrorHierarchyRule(),
        PublicApiRule(),
        NoBareAssertRule(),
    )


__all__ = [
    "ContextDisciplineRule",
    "CoreIODisciplineRule",
    "CostPurityRule",
    "ErrorHierarchyRule",
    "FloatEqualityRule",
    "FrozenValueTypesRule",
    "NoBareAssertRule",
    "PublicApiRule",
    "UnitDisciplineRule",
    "default_rules",
]
