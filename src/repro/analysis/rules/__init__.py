"""The domain-aware rule set; see each module for the rationale.

:func:`default_rules` is the single assembly point — the CLI, the tier-1
self-check and the fixture tests all instantiate the same list, so a
rule registered here is automatically enforced everywhere.  The
stale-suppression rule is listed last: it is a
:class:`~repro.analysis.engine.ProgramRule` with ``needs_findings`` set,
so the engine runs it after every other rule has reported.
"""

from __future__ import annotations

from repro.analysis.engine import Rule
from repro.analysis.rules.api import PublicApiRule
from repro.analysis.rules.asserts import NoBareAssertRule
from repro.analysis.rules.context_discipline import ContextDisciplineRule
from repro.analysis.rules.errors_discipline import ErrorHierarchyRule
from repro.analysis.rules.floateq import FloatEqualityRule
from repro.analysis.rules.frozen import FrozenValueTypesRule
from repro.analysis.rules.io_discipline import CoreIODisciplineRule
from repro.analysis.rules.parallel_safety import ParallelSafetyRule
from repro.analysis.rules.purity import CostPurityRule
from repro.analysis.rules.stale_suppress import StaleSuppressionRule
from repro.analysis.rules.stream_discipline import StreamDisciplineRule
from repro.analysis.rules.units import UnitDisciplineRule


def default_rules() -> tuple[Rule, ...]:
    """Instantiate every registered rule, in reporting order."""
    return (
        UnitDisciplineRule(),
        CostPurityRule(),
        CoreIODisciplineRule(),
        ContextDisciplineRule(),
        FrozenValueTypesRule(),
        FloatEqualityRule(),
        ErrorHierarchyRule(),
        PublicApiRule(),
        NoBareAssertRule(),
        ParallelSafetyRule(),
        StreamDisciplineRule(),
        StaleSuppressionRule(),
    )


__all__ = [
    "ContextDisciplineRule",
    "CoreIODisciplineRule",
    "CostPurityRule",
    "ErrorHierarchyRule",
    "FloatEqualityRule",
    "FrozenValueTypesRule",
    "NoBareAssertRule",
    "ParallelSafetyRule",
    "PublicApiRule",
    "StaleSuppressionRule",
    "StreamDisciplineRule",
    "UnitDisciplineRule",
    "default_rules",
]
