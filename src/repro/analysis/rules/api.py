"""RA-PUBLIC-API — module docstrings and honest ``__all__`` lists.

The package is grown PR by PR by sessions with no shared memory; the
public surface *is* the documentation.  Three checks keep it honest:
every module carries a docstring, every name exported through
``__all__`` actually exists in the module, and every function or class
defined here and exported is documented.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, ModuleContext, Rule


def _defined_names(tree: ast.Module) -> set[str]:
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                if alias.name == "*":
                    continue
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, (ast.If, ast.Try)):
            names.update(_defined_names_in_block(node))
    return names


def _defined_names_in_block(node: ast.AST) -> set[str]:
    names: set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(child.name)
        elif isinstance(child, ast.Assign):
            for target in child.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(child, (ast.Import, ast.ImportFrom)):
            for alias in child.names:
                if alias.name != "*":
                    names.add(alias.asname or alias.name.split(".")[0])
    return names


def _find_all(tree: ast.Module) -> tuple[ast.Assign | None, list[ast.expr]]:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    if isinstance(node.value, (ast.List, ast.Tuple)):
                        return node, list(node.value.elts)
                    return node, []
    return None, []


class PublicApiRule(Rule):
    """Flag missing docstrings and inconsistent ``__all__`` lists."""

    rule_id = "RA-PUBLIC-API"
    summary = (
        "modules need docstrings; __all__ entries must exist and exported "
        "definitions must be documented"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        """Yield docstring and ``__all__`` consistency findings."""
        if not module.in_package("repro"):
            return
        tree = module.tree
        if tree.body and ast.get_docstring(tree) is None:
            yield self.finding(
                module,
                tree.body[0],
                "module has no docstring; say what this file contributes",
            )
        all_node, elements = self._exported(module)
        if all_node is None:
            return
        defined = _defined_names(tree)
        seen: set[str] = set()
        exported: set[str] = set()
        for element in elements:
            if not (
                isinstance(element, ast.Constant) and isinstance(element.value, str)
            ):
                yield self.finding(
                    module, element, "__all__ entries must be string literals"
                )
                continue
            name = element.value
            if name in seen:
                yield self.finding(
                    module, element, f"__all__ lists {name!r} more than once"
                )
            seen.add(name)
            exported.add(name)
            if name not in defined:
                yield self.finding(
                    module,
                    element,
                    f"__all__ exports {name!r} but the module never defines "
                    "or imports it",
                )
        for node in tree.body:
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
                and node.name in exported
                and ast.get_docstring(node) is None
            ):
                yield self.finding(
                    module,
                    node,
                    f"{node.name!r} is exported via __all__ but has no docstring",
                )

    def _exported(
        self, module: ModuleContext
    ) -> tuple[ast.Assign | None, list[ast.expr]]:
        return _find_all(module.tree)


__all__ = ["PublicApiRule"]
