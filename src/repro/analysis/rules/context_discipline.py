"""RA-CONTEXT — executors must not manufacture their own I/O counters.

The streaming refactor threads every page an operator reads through one
:class:`~repro.exec.context.ExecutionContext` guarding the environment's
:class:`~repro.storage.iostats.IOStats`.  An executor that constructs a
*fresh* ``IOStats`` (or ``TracingIOStats``) sidesteps that guard: pages
recorded into a private counter are invisible to page budgets, phase
accounting and metric hooks, so the numbers the context reports stop
being the numbers the run charged.

The rule therefore flags ``IOStats(...)`` / ``TracingIOStats(...)``
constructor calls inside ``repro/core/``, ``repro/exec/``,
``repro/workspace/`` (a workspace loader that counted its own pages
would let "warm" environments report different I/O than cold ones) and
``repro/kernels/`` (a batch kernel keeping private books would charge
pages invisible to the scalar reference, breaking the backends'
byte-identity contract).
Two sanctioned boundaries exist:

* ``repro.exec.context`` — the context itself materialises empty stats
  objects for phase buckets; it *is* the accounting layer;
* ``repro.core.environment`` — the factory creates each environment's
  root counter when assembling it, before any execution starts (carries
  an inline suppression at the construction site).

``snapshot()`` / ``delta()`` / ``scoped()`` return derived ``IOStats``
values without triggering the rule: those are reads of the shared
counter, not parallel books.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, ModuleContext, Rule

#: constructor names that open a parallel set of I/O books
_COUNTER_TYPES = {"IOStats", "TracingIOStats"}

#: modules allowed to construct counters (the accounting layer itself)
_SANCTIONED_MODULES = ("repro.exec.context",)


class ContextDisciplineRule(Rule):
    """Flag private IOStats construction in the execution packages."""

    rule_id = "RA-CONTEXT"
    summary = (
        "executors must record I/O into the environment's context-guarded "
        "IOStats, never into a privately constructed counter"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        """Yield a finding per counter constructor call in scope."""
        if not (
            module.in_package("repro.core")
            or module.in_package("repro.exec")
            or module.in_package("repro.workspace")
            or module.in_package("repro.kernels")
        ):
            return
        if module.module_name in _SANCTIONED_MODULES:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = node.func
            if isinstance(callee, ast.Attribute):
                name = callee.attr
            elif isinstance(callee, ast.Name):
                name = callee.id
            else:
                continue
            if name in _COUNTER_TYPES:
                yield self.finding(
                    module,
                    node,
                    f"constructs a private {name}; pages recorded there bypass "
                    "the ExecutionContext's budget and phase accounting — use "
                    "the environment disk's stats under execution_scope()",
                )


__all__ = ["ContextDisciplineRule"]
