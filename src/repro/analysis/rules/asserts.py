"""RA-ASSERT — no ``assert`` for runtime validation in library code.

``python -O`` strips every ``assert``, so a precondition guarded by one
silently stops being checked in optimised deployments — the exact
scenario in which a cost model quietly accepts inconsistent parameters.
Library code under ``src/repro`` must raise
:class:`~repro.errors.InvalidParameterError` (or another
:mod:`repro.errors` class) instead; tests keep using ``assert`` freely.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, ModuleContext, Rule


class NoBareAssertRule(Rule):
    """Flag every ``assert`` statement in ``repro`` modules."""

    rule_id = "RA-ASSERT"
    summary = (
        "no assert statements in src/repro (asserts vanish under -O); "
        "raise a repro.errors class instead"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        """Yield a finding per ``assert`` statement."""
        if not module.in_package("repro"):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assert):
                yield self.finding(
                    module,
                    node,
                    "assert is stripped under python -O; raise "
                    "InvalidParameterError (repro.errors) for runtime validation",
                )


__all__ = ["NoBareAssertRule"]
