"""RA-CORE-IO — every simulated read in the executors must be charged.

The executors under ``repro/core/`` are only comparable to the Section 5
formulas if every page they touch lands in
:class:`~repro.storage.iostats.IOStats`.  Two ways to cheat are flagged:

* importing the physical layer (``repro.storage.disk`` /
  ``.extents`` / ``.pages``) — executors are supposed to receive a laid
  out :class:`~repro.core.join.JoinEnvironment` and read through the
  charging API of :class:`~repro.storage.disk.SimulatedDisk` (the
  environment module itself is the one sanctioned boundary and carries
  explicit suppressions);
* calling ``<extent>.payload(...)`` — an uncharged in-memory read — in a
  function that never charges I/O.  Chunked executors that account at
  block granularity do both in the same function and pass.

The streaming execution core (``repro/exec/``) sits on the same side of
the boundary: it observes :class:`~repro.storage.iostats.IOStats` but
must never touch the physical layer itself.  So does the workspace
package (``repro/workspace/``): builders and loaders move *serialized*
artifacts through :mod:`repro.text.serialization` and
:mod:`repro.index.btree_io`, and lay extents out only through the
factory — touching the physical layer directly there would let a loaded
dataset charge I/O differently than a built one.  And so does the
kernel layer (``repro/kernels/``): batch kernels reorganise arithmetic
over data the *operators* already paid for, so a kernel that imported
the physical layer or read payloads itself would smuggle uncharged
reads behind the byte-identity contract.  The rule's scope covers all
four packages.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, ModuleContext, Rule

_PHYSICAL_MODULES = (
    "repro.storage.disk",
    "repro.storage.extents",
    "repro.storage.pages",
)

#: attribute calls that charge (or delegate to a charging read path)
_CHARGING_CALLS = {
    "record",
    "scan_records",
    "scan_pages",
    "read_record",
    "read_run",
    "scan_with_block_seeks",
}


def _walk_shallow(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested ``def``s."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            stack.extend(ast.iter_child_nodes(node))


def _is_physical(dotted: str) -> bool:
    return any(
        dotted == name or dotted.startswith(name + ".") for name in _PHYSICAL_MODULES
    )


class CoreIODisciplineRule(Rule):
    """Flag physical-layer imports and uncharged reads in ``repro.core``
    and ``repro.exec``."""

    rule_id = "RA-CORE-IO"
    summary = (
        "repro/core/, repro/exec/, repro/workspace/ and repro/kernels/ must "
        "not import the physical storage layer nor read payloads in a "
        "function that never charges IOStats"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        """Yield layering and uncharged-read violations for execution modules."""
        if not (
            module.in_package("repro.core")
            or module.in_package("repro.exec")
            or module.in_package("repro.workspace")
            or module.in_package("repro.kernels")
        ):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if _is_physical(alias.name):
                        yield self._import_finding(module, node, alias.name)
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module and _is_physical(node.module):
                    yield self._import_finding(module, node, node.module)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._uncharged_reads(module, node)

    def _import_finding(
        self, module: ModuleContext, node: ast.AST, dotted: str
    ) -> Finding:
        return self.finding(
            module,
            node,
            f"core executor imports the physical layer ({dotted}); reads must "
            "go through the JoinEnvironment's charging disk API",
        )

    def _uncharged_reads(
        self, module: ModuleContext, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        payload_calls: list[ast.Call] = []
        charges = False
        for node in _walk_shallow(func):
            if not isinstance(node, ast.Call):
                continue
            callee = node.func
            name = None
            if isinstance(callee, ast.Attribute):
                name = callee.attr
            elif isinstance(callee, ast.Name):
                name = callee.id
            if name == "payload":
                payload_calls.append(node)
            elif name in _CHARGING_CALLS:
                charges = True
        if charges:
            return
        for call in payload_calls:
            yield self.finding(
                module,
                call,
                "reads a record payload without charging IOStats anywhere in "
                "this function; route the read through the disk's charging API",
            )


__all__ = ["CoreIODisciplineRule"]
