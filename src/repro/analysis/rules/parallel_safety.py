"""RA-PAR-SAFE — functions handed to process pools must be shard-safe.

The sweep engine (and the sharded execution planned on the roadmap)
fans work out through :class:`concurrent.futures.ProcessPoolExecutor`.
A worker function crossing that boundary is pickled, re-imported in a
child process, and runs against a *copy* of module state — so three
classes of code are silently wrong in parallel even though they pass
every sequential test:

* workers that are not module-level functions (lambdas, nested
  closures, bound methods) fail to pickle or drag hidden state along;
* workers that — directly or through any chain of calls — write or
  mutate module-level state: each child mutates its own copy and the
  parent never sees it;
* workers that read module-level mutable state which other code
  mutates, or that share a module-level I/O counter
  (:class:`~repro.storage.iostats.IOStats`), simulated-disk handle, or
  lock: the parallel run observes a different value than the
  sequential run, or fails to pickle outright.

Findings anchor at the ``submit``/``map`` call site, where the fix
(pass state as arguments, give each shard its own counters) is made.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, ModuleContext, ProgramRule
from repro.analysis.program.dataflow import (
    ACCESS_READ,
    escaping_global_uses,
)
from repro.analysis.program.model import ProgramModel
from repro.analysis.program.symbols import (
    KIND_INSTANCE,
    KIND_MUTABLE,
    FunctionInfo,
    ModuleSymbols,
    SymbolTable,
    walk_shallow,
)

_EXECUTOR_NAME = "ProcessPoolExecutor"
_SUBMIT_METHODS = {"submit", "map"}

#: module-level instances a pickled worker must never reference
_UNPICKLABLE_CONSTRUCTORS = {
    "SimulatedDisk",
    "open",
    "Lock",
    "RLock",
    "Condition",
    "Event",
    "Semaphore",
    "BoundedSemaphore",
    "Barrier",
    "Thread",
}

#: module-level I/O counters a worker must not share across shards
_SHARED_COUNTER_CONSTRUCTORS = {"IOStats", "TracingIOStats"}


def _is_executor_call(table: SymbolTable, symbols: ModuleSymbols, node: ast.expr) -> bool:
    """True when ``node`` is a ``ProcessPoolExecutor(...)`` construction."""
    if not isinstance(node, ast.Call):
        return False
    resolved = table.resolve_call(symbols, node.func)
    if resolved is None:
        return False
    return resolved.rsplit(".", 1)[-1] == _EXECUTOR_NAME


def _pool_receivers(
    table: SymbolTable,
    symbols: ModuleSymbols,
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> frozenset[str]:
    """Local names bound to a process-pool executor inside ``func``."""
    receivers: set[str] = set()
    for node in walk_shallow(func):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if (
                    _is_executor_call(table, symbols, item.context_expr)
                    and isinstance(item.optional_vars, ast.Name)
                ):
                    receivers.add(item.optional_vars.id)
        elif isinstance(node, ast.Assign) and _is_executor_call(
            table, symbols, node.value
        ):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    receivers.add(target.id)
    return frozenset(receivers)


def _local_assignments(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> dict[str, ast.expr]:
    """Last straight ``name = value`` binding per local name (shallow)."""
    assignments: dict[str, ast.expr] = {}
    for node in walk_shallow(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    assignments[target.id] = node.value
    return assignments


def _unwrap_partial(
    table: SymbolTable, symbols: ModuleSymbols, node: ast.expr
) -> ast.expr | None:
    """The wrapped callable of a ``functools.partial(...)`` call, if any."""
    if not isinstance(node, ast.Call):
        return None
    resolved = table.resolve_call(symbols, node.func)
    if resolved is None or resolved.rsplit(".", 1)[-1] != "partial":
        return None
    return node.args[0] if node.args else None


class ParallelSafetyRule(ProgramRule):
    """Flag process-pool workers that are unpicklable or share state."""

    rule_id = "RA-PAR-SAFE"
    summary = (
        "functions submitted to a ProcessPoolExecutor must be module-level, "
        "picklable, and must not touch shared module-level mutable state "
        "(transitively) or share I/O counters across shards"
    )

    def check_program(self, program: ProgramModel) -> Iterator[Finding]:
        """Yield one finding per unsafe worker per submit/map site."""
        for context in program.modules:
            symbols = program.table.modules.get(context.module_name)
            if symbols is None or _EXECUTOR_NAME not in {
                dotted.rsplit(".", 1)[-1] for dotted in symbols.imports.values()
            }:
                continue
            for info in symbols.functions.values():
                yield from self._check_function(program, context, symbols, info)

    def _check_function(
        self,
        program: ProgramModel,
        context: ModuleContext,
        symbols: ModuleSymbols,
        info: FunctionInfo,
    ) -> Iterator[Finding]:
        receivers = _pool_receivers(program.table, symbols, info.node)
        if not receivers:
            return
        assignments = _local_assignments(info.node)
        for node in walk_shallow(info.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in _SUBMIT_METHODS
                and isinstance(func.value, ast.Name)
                and func.value.id in receivers
            ):
                continue
            if not node.args:
                continue
            yield from self._check_worker(
                program, context, symbols, node, node.args[0], assignments
            )

    def _check_worker(
        self,
        program: ProgramModel,
        context: ModuleContext,
        symbols: ModuleSymbols,
        site: ast.Call,
        worker_expr: ast.expr,
        assignments: dict[str, ast.expr],
    ) -> Iterator[Finding]:
        table = program.table
        # Follow one chain of local aliases and partial() wrappers.
        for _hop in range(8):
            unwrapped = _unwrap_partial(table, symbols, worker_expr)
            if unwrapped is not None:
                worker_expr = unwrapped
                continue
            if (
                isinstance(worker_expr, ast.Name)
                and worker_expr.id in assignments
            ):
                worker_expr = assignments[worker_expr.id]
                continue
            break
        resolved = table.resolve_call(symbols, worker_expr)
        worker = table.function(resolved) if resolved is not None else None
        if worker is None:
            yield self.finding(
                context,
                site,
                "worker submitted to a process pool cannot be resolved to a "
                "module-level function (lambdas, nested closures and "
                "dynamically built callables do not pickle across processes)",
            )
            return
        if worker.is_method:
            yield self.finding(
                context,
                site,
                f"worker {worker.qualname} is a method; process-pool workers "
                "must be module-level functions (bound methods drag the "
                "whole instance through pickle)",
            )
            return
        yield from self._check_reachable_state(program, context, site, worker)

    def _check_reachable_state(
        self,
        program: ProgramModel,
        context: ModuleContext,
        site: ast.Call,
        worker: FunctionInfo,
    ) -> Iterator[Finding]:
        table = program.table
        mutated_by_module = self._mutated_globals_by_module(program)
        reported: set[tuple[str, str]] = set()
        for qualname in program.graph.reachable(worker.qualname):
            reached = table.functions.get(qualname)
            if reached is None:
                continue
            reached_symbols = table.modules.get(reached.module)
            if reached_symbols is None:
                continue
            for use in escaping_global_uses(reached.node, reached_symbols):
                key = (use.name, use.access)
                if key in reported:
                    continue
                info = reached_symbols.module_globals.get(use.name)
                via = (
                    "" if qualname == worker.qualname else f" via {qualname}"
                )
                if use.access != ACCESS_READ:
                    reported.add(key)
                    yield self.finding(
                        context,
                        site,
                        f"worker {worker.qualname} {use.access}s module-level "
                        f"state {use.name!r}{via}; each pool child mutates its "
                        "own copy, so the parent never observes the change — "
                        "return results instead of mutating shared state",
                    )
                elif info is not None and info.kind == KIND_MUTABLE:
                    if use.name in mutated_by_module.get(reached.module, frozenset()):
                        reported.add(key)
                        yield self.finding(
                            context,
                            site,
                            f"worker {worker.qualname} reads module-level "
                            f"mutable {use.name!r}{via}, which other code in "
                            f"{reached.module} mutates; pool children see a "
                            "stale copy — pass the value as an argument",
                        )
                elif info is not None and info.kind == KIND_INSTANCE:
                    tail = info.constructor.rsplit(".", 1)[-1]
                    if tail in _SHARED_COUNTER_CONSTRUCTORS:
                        reported.add(key)
                        yield self.finding(
                            context,
                            site,
                            f"worker {worker.qualname} shares the module-level "
                            f"{tail} {use.name!r}{via}; every shard must take "
                            "its own I/O counter and merge results in the "
                            "parent",
                        )
                    elif tail in _UNPICKLABLE_CONSTRUCTORS:
                        reported.add(key)
                        yield self.finding(
                            context,
                            site,
                            f"worker {worker.qualname} references module-level "
                            f"{tail} instance {use.name!r}{via}, which does "
                            "not survive pickling into a pool child",
                        )

    def _mutated_globals_by_module(
        self, program: ProgramModel
    ) -> dict[str, frozenset[str]]:
        mutated: dict[str, set[str]] = {}
        for qualname, info in program.table.functions.items():
            symbols = program.table.modules.get(info.module)
            if symbols is None:
                continue
            for use in escaping_global_uses(info.node, symbols):
                if use.access != ACCESS_READ:
                    mutated.setdefault(info.module, set()).add(use.name)
        return {
            module: frozenset(names) for module, names in mutated.items()
        }


__all__ = ["ParallelSafetyRule"]
