"""RA-STREAM — streaming operators must stay cancellable and scoped.

The PR 4 streaming core has a contract: an ``iter_*`` operator yields
incrementally, honours the context budget, and attributes every page it
charges.  Three violations break it silently:

* an outer streaming loop that never calls ``ctx.checkpoint()`` — a
  ``LIMIT`` or budget cancellation cannot interrupt it, so the operator
  runs to completion and the caller pays for pages it asked to skip;
* a ``yield`` inside a ``with ctx.phase(...)`` scope — the generator is
  suspended *while the phase is open*, so pages the consumer charges
  between blocks are mis-attributed to the operator's phase;
* a loop that charges pages outside any ``execution_scope``/``guard``
  wrapper — its I/O bypasses budget enforcement entirely.

The rule applies to generator functions named ``iter_*`` under
``repro.core`` and ``repro.exec``; helpers with other names are free to
use different conventions.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, ModuleContext, Rule
from repro.analysis.program.symbols import is_generator, walk_shallow

_LOOP_NODES = (ast.For, ast.AsyncFor, ast.While)
#: attribute calls that charge simulated-disk pages
_CHARGING_CALLS = {
    "record",
    "scan_records",
    "scan_pages",
    "read_record",
    "read_run",
    "scan_with_block_seeks",
}
_GUARD_CALLS = {"execution_scope", "guard"}


def _is_phase_with(node: ast.AST) -> bool:
    if not isinstance(node, (ast.With, ast.AsyncWith)):
        return False
    for item in node.items:
        expr = item.context_expr
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr == "phase"
        ):
            return True
    return False


def _is_guard_with(node: ast.AST) -> bool:
    if not isinstance(node, (ast.With, ast.AsyncWith)):
        return False
    for item in node.items:
        expr = item.context_expr
        if not isinstance(expr, ast.Call):
            continue
        func = expr.func
        name = (
            func.attr
            if isinstance(func, ast.Attribute)
            else func.id if isinstance(func, ast.Name) else ""
        )
        if name in _GUARD_CALLS:
            return True
    return False


def _call_name(node: ast.AST) -> str:
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute):
            return func.attr
        if isinstance(func, ast.Name):
            return func.id
    return ""


def _subtree_has(loop: ast.AST, *, charging: bool = False,
                 checkpoint: bool = False, streaming: bool = False) -> bool:
    """Whether a loop subtree charges pages / checkpoints / streams."""
    for node in walk_shallow(loop):
        name = _call_name(node)
        if charging and name in _CHARGING_CALLS:
            return True
        if checkpoint and name == "checkpoint":
            return True
        if streaming and (
            isinstance(node, (ast.Yield, ast.YieldFrom))
            or _is_phase_with(node)
            or name in _CHARGING_CALLS
        ):
            return True
    return False


def _outermost_loops(func: ast.FunctionDef | ast.AsyncFunctionDef) -> list[ast.stmt]:
    """Loops not nested inside another loop (descending through
    ``if``/``with``/``try``/``match`` bodies, never into nested defs)."""
    found: list[ast.stmt] = []

    def visit(body: list[ast.stmt]) -> None:
        for statement in body:
            if isinstance(statement, _LOOP_NODES):
                found.append(statement)
                continue
            if isinstance(
                statement,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                continue
            for child_body in _statement_bodies(statement):
                visit(child_body)

    visit(func.body)
    return found


def _statement_bodies(statement: ast.stmt) -> list[list[ast.stmt]]:
    bodies: list[list[ast.stmt]] = []
    for attr in ("body", "orelse", "finalbody"):
        value = getattr(statement, attr, None)
        if isinstance(value, list) and value and isinstance(value[0], ast.stmt):
            bodies.append(value)
    for handler in getattr(statement, "handlers", ()):
        bodies.append(handler.body)
    for case in getattr(statement, "cases", ()):
        bodies.append(case.body)
    return bodies


class StreamDisciplineRule(Rule):
    """Flag streaming operators that break the execution-context contract."""

    rule_id = "RA-STREAM"
    summary = (
        "iter_* operators must checkpoint every outer streaming loop, keep "
        "yields out of phase() scopes, and charge pages only under "
        "execution_scope()/guard()"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        """Yield checkpoint/phase/guard violations per ``iter_*`` operator."""
        if not (module.in_package("repro.core") or module.in_package("repro.exec")):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not node.name.startswith("iter_") or not is_generator(node):
                continue
            yield from self._check_operator(module, node)

    def _check_operator(
        self, module: ModuleContext, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        # (a) yields must not be suspended inside an open phase scope
        for node in walk_shallow(func):
            if not _is_phase_with(node):
                continue
            for inner in walk_shallow(node):
                if isinstance(inner, (ast.Yield, ast.YieldFrom)):
                    yield self.finding(
                        module,
                        inner,
                        f"{func.name} yields inside a ctx.phase(...) scope; "
                        "the generator suspends with the phase open and "
                        "consumer-side I/O is mis-attributed to it — emit "
                        "after the phase closes",
                    )
        # (b) every outer streaming loop must checkpoint each iteration
        for loop in _outermost_loops(func):
            if _subtree_has(loop, streaming=True) and not _subtree_has(
                loop, checkpoint=True
            ):
                yield self.finding(
                    module,
                    loop,
                    f"outer streaming loop in {func.name} never calls "
                    "ctx.checkpoint(); budget and LIMIT cancellation cannot "
                    "interrupt it",
                )
        # (c) loops that charge pages must sit under execution_scope/guard
        yield from self._unguarded_charges(module, func, func.body, False)

    def _unguarded_charges(
        self,
        module: ModuleContext,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        body: list[ast.stmt],
        guarded: bool,
    ) -> Iterator[Finding]:
        for statement in body:
            if isinstance(
                statement,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                continue
            if isinstance(statement, _LOOP_NODES):
                if not guarded and _subtree_has(statement, charging=True):
                    yield self.finding(
                        module,
                        statement,
                        f"loop in {func.name} charges pages outside any "
                        "execution_scope()/guard() wrapper; its I/O bypasses "
                        "budget enforcement",
                    )
                    continue
                for child_body in _statement_bodies(statement):
                    yield from self._unguarded_charges(
                        module, func, child_body, guarded
                    )
                continue
            now_guarded = guarded or _is_guard_with(statement)
            for child_body in _statement_bodies(statement):
                yield from self._unguarded_charges(
                    module, func, child_body, now_guarded
                )


__all__ = ["StreamDisciplineRule"]
