"""RA-COST-PURITY — the cost layer must stay a pure function library.

Section 5's formulas (``hhs/hhr``, ``hvs/hvr``, ``vvs/vvr``) are
*predictions*; the moment code under ``repro/cost/`` performs I/O,
touches the simulated storage stack, or mutates its inputs, the
measured-vs-model validation loop (``repro validate``) stops being an
independent check.  This rule pins the layering two ways:

* **locally** — cost modules may import only parameter/statistics
  types, and cost functions may not write to their arguments, print, or
  open files;
* **transitively** — a cost function must not *reach*, through any
  chain of statically-resolved calls, a function that performs I/O,
  charges the simulated disk, or constructs the I/O-accounting stack.
  An impure helper parked in an allowed-import module is exactly the
  laundering this closes; the finding carries the full call path.
"""

from __future__ import annotations

import ast
from typing import Iterator, Mapping

from repro.analysis.engine import Finding, ModuleContext, ProgramRule
from repro.analysis.program.model import ProgramModel
from repro.analysis.program.symbols import FunctionInfo, SymbolTable, walk_shallow

#: dotted prefixes of repro modules the cost layer may import
_ALLOWED_IMPORT_PREFIXES = (
    "repro.analysis",
    "repro.constants",
    "repro.cost",
    "repro.errors",
    "repro.index.stats",
)

_IO_BUILTINS = {"open", "print", "input", "exec", "eval"}
_WRITE_METHODS = {
    "write",
    "write_text",
    "write_bytes",
    "unlink",
    "mkdir",
    "rmdir",
    "touch",
}
#: attribute calls that charge the simulated I/O stack
_CHARGING_METHODS = {
    "record",
    "read_record",
    "read_run",
    "scan_records",
    "scan_pages",
    "scan_with_block_seeks",
}
#: constructors whose mere instantiation couples code to the I/O stack
_IO_CONSTRUCTORS = {"IOStats", "TracingIOStats", "SimulatedDisk"}
_MUTATING_METHODS = {
    "append",
    "extend",
    "insert",
    "remove",
    "pop",
    "popitem",
    "clear",
    "update",
    "setdefault",
    "add",
    "discard",
    "sort",
    "reverse",
}


def _is_allowed_import(dotted: str) -> bool:
    if not dotted.startswith("repro"):
        return True
    return any(
        dotted == prefix or dotted.startswith(prefix + ".")
        for prefix in _ALLOWED_IMPORT_PREFIXES
    )


def _in_cost_layer(module_name: str) -> bool:
    return module_name == "repro.cost" or module_name.startswith("repro.cost.")


def _direct_impurity(table: SymbolTable, info: FunctionInfo) -> str:
    """Why ``info`` is impure by itself, or '' when it looks pure."""
    symbols = table.modules.get(info.module)
    for node in walk_shallow(info.node):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name) and func.id in _IO_BUILTINS:
            return f"calls {func.id}()"
        if isinstance(func, ast.Attribute):
            if func.attr in _WRITE_METHODS:
                return f"calls .{func.attr}()"
            if func.attr in _CHARGING_METHODS:
                return f"charges I/O via .{func.attr}()"
        if symbols is not None:
            resolved = table.resolve_call(symbols, func, info.class_name)
            if resolved is not None:
                tail = resolved.rsplit(".", 1)[-1]
                if tail in _IO_CONSTRUCTORS:
                    return f"constructs {tail}"
    return ""


class CostPurityRule(ProgramRule):
    """Flag impurity inside ``repro.cost``: I/O, layering leaks, mutation,
    and call chains that reach impure code anywhere in the program."""

    rule_id = "RA-COST-PURITY"
    summary = (
        "repro/cost/ must not import storage/execution layers, perform I/O, "
        "use global state, mutate its arguments, or transitively call "
        "impure code"
    )

    def check_program(self, program: ProgramModel) -> Iterator[Finding]:
        """Yield per-module purity violations, then transitive ones."""
        for context in program.modules:
            if context.in_package("repro.cost"):
                yield from self._module_checks(context)
        yield from self._transitive(program)

    # --- per-module checks (intra-module purity) --------------------------

    def _module_checks(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if not _is_allowed_import(alias.name):
                        yield self._layer_finding(module, node, alias.name)
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module and not _is_allowed_import(node.module):
                    yield self._layer_finding(module, node, node.module)
            elif isinstance(node, ast.Call):
                yield from self._call(module, node)
            elif isinstance(node, (ast.Global, ast.Nonlocal)):
                yield self.finding(
                    module,
                    node,
                    "cost formulas must not rely on global/nonlocal state",
                )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._argument_mutations(module, node)

    def _layer_finding(
        self, module: ModuleContext, node: ast.AST, dotted: str
    ) -> Finding:
        return self.finding(
            module,
            node,
            f"cost layer imports {dotted}; only parameter/statistics modules "
            "(repro.cost, repro.constants, repro.errors, repro.index.stats) are pure",
        )

    def _call(self, module: ModuleContext, node: ast.Call) -> Iterator[Finding]:
        func = node.func
        if isinstance(func, ast.Name) and func.id in _IO_BUILTINS:
            yield self.finding(
                module,
                node,
                f"cost formulas must not call {func.id}(); return values instead",
            )
        elif isinstance(func, ast.Attribute) and func.attr in _WRITE_METHODS:
            yield self.finding(
                module,
                node,
                f".{func.attr}() writes outside the formula; cost code must be pure",
            )

    def _argument_mutations(
        self, module: ModuleContext, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        params = {
            arg.arg
            for arg in (
                *func.args.posonlyargs,
                *func.args.args,
                *func.args.kwonlyargs,
            )
            if arg.arg not in ("self", "cls")
        }
        if not params:
            return
        for node in ast.walk(func):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in params
                    ):
                        yield self.finding(
                            module,
                            node,
                            f"mutates parameter {target.value.id!r}; cost formulas "
                            "must treat their inputs as immutable",
                        )
            elif isinstance(node, ast.Call):
                func_expr = node.func
                if (
                    isinstance(func_expr, ast.Attribute)
                    and func_expr.attr in _MUTATING_METHODS
                    and isinstance(func_expr.value, ast.Name)
                    and func_expr.value.id in params
                ):
                    yield self.finding(
                        module,
                        node,
                        f"calls {func_expr.value.id}.{func_expr.attr}(); cost "
                        "formulas must treat their inputs as immutable",
                    )

    # --- transitive reach (the whole-program upgrade) ---------------------

    def _transitive(self, program: ProgramModel) -> Iterator[Finding]:
        impure: dict[str, str] = {}
        for qualname, info in program.table.functions.items():
            reason = _direct_impurity(program.table, info)
            if reason:
                impure[qualname] = reason
        if not impure:
            return
        contexts: Mapping[str, ModuleContext] = program.modules_by_name
        for qualname in sorted(program.table.functions):
            info = program.table.functions[qualname]
            if not _in_cost_layer(info.module):
                continue
            targets = set(impure) - {qualname}
            path = program.graph.call_path(qualname, targets)
            if len(path) < 2:
                continue
            context = contexts.get(info.module)
            if context is None:
                continue
            chain = " -> ".join(path)
            yield self.finding(
                context,
                info.node,
                f"cost function reaches impure code: {chain} "
                f"({impure[path[-1]]}); cost formulas must stay pure "
                "along every call path",
            )


__all__ = ["CostPurityRule"]
