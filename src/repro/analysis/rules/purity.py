"""RA-COST-PURITY — the cost layer must stay a pure function library.

Section 5's formulas (``hhs/hhr``, ``hvs/hvr``, ``vvs/vvr``) are
*predictions*; the moment code under ``repro/cost/`` performs I/O,
touches the simulated storage stack, or mutates its inputs, the
measured-vs-model validation loop (``repro validate``) stops being an
independent check.  This rule pins the layering: cost modules may import
only parameter/statistics types, and cost functions may not write to
their arguments, print, or open files.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, ModuleContext, Rule

#: dotted prefixes of repro modules the cost layer may import
_ALLOWED_IMPORT_PREFIXES = (
    "repro.analysis",
    "repro.constants",
    "repro.cost",
    "repro.errors",
    "repro.index.stats",
)

_IO_BUILTINS = {"open", "print", "input", "exec", "eval"}
_WRITE_METHODS = {
    "write",
    "write_text",
    "write_bytes",
    "unlink",
    "mkdir",
    "rmdir",
    "touch",
}
_MUTATING_METHODS = {
    "append",
    "extend",
    "insert",
    "remove",
    "pop",
    "popitem",
    "clear",
    "update",
    "setdefault",
    "add",
    "discard",
    "sort",
    "reverse",
}


def _is_allowed_import(dotted: str) -> bool:
    if not dotted.startswith("repro"):
        return True
    return any(
        dotted == prefix or dotted.startswith(prefix + ".")
        for prefix in _ALLOWED_IMPORT_PREFIXES
    )


class CostPurityRule(Rule):
    """Flag impurity inside ``repro.cost``: I/O, layering leaks, mutation."""

    rule_id = "RA-COST-PURITY"
    summary = (
        "repro/cost/ must not import storage/execution layers, perform I/O, "
        "use global state, or mutate its arguments"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        """Yield layering, I/O and argument-mutation violations."""
        if not module.in_package("repro.cost"):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if not _is_allowed_import(alias.name):
                        yield self._layer_finding(module, node, alias.name)
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module and not _is_allowed_import(node.module):
                    yield self._layer_finding(module, node, node.module)
            elif isinstance(node, ast.Call):
                yield from self._call(module, node)
            elif isinstance(node, (ast.Global, ast.Nonlocal)):
                yield self.finding(
                    module,
                    node,
                    "cost formulas must not rely on global/nonlocal state",
                )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._argument_mutations(module, node)

    def _layer_finding(
        self, module: ModuleContext, node: ast.AST, dotted: str
    ) -> Finding:
        return self.finding(
            module,
            node,
            f"cost layer imports {dotted}; only parameter/statistics modules "
            "(repro.cost, repro.constants, repro.errors, repro.index.stats) are pure",
        )

    def _call(self, module: ModuleContext, node: ast.Call) -> Iterator[Finding]:
        func = node.func
        if isinstance(func, ast.Name) and func.id in _IO_BUILTINS:
            yield self.finding(
                module,
                node,
                f"cost formulas must not call {func.id}(); return values instead",
            )
        elif isinstance(func, ast.Attribute) and func.attr in _WRITE_METHODS:
            yield self.finding(
                module,
                node,
                f".{func.attr}() writes outside the formula; cost code must be pure",
            )

    def _argument_mutations(
        self, module: ModuleContext, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        params = {
            arg.arg
            for arg in (
                *func.args.posonlyargs,
                *func.args.args,
                *func.args.kwonlyargs,
            )
            if arg.arg not in ("self", "cls")
        }
        if not params:
            return
        for node in ast.walk(func):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in params
                    ):
                        yield self.finding(
                            module,
                            node,
                            f"mutates parameter {target.value.id!r}; cost formulas "
                            "must treat their inputs as immutable",
                        )
            elif isinstance(node, ast.Call):
                func_expr = node.func
                if (
                    isinstance(func_expr, ast.Attribute)
                    and func_expr.attr in _MUTATING_METHODS
                    and isinstance(func_expr.value, ast.Name)
                    and func_expr.value.id in params
                ):
                    yield self.finding(
                        module,
                        node,
                        f"calls {func_expr.value.id}.{func_expr.attr}(); cost "
                        "formulas must treat their inputs as immutable",
                    )


__all__ = ["CostPurityRule"]
