"""RA-ERRORS — raise from the :mod:`repro.errors` hierarchy only.

Embedders catch :class:`~repro.errors.ReproError`; a stray built-in
``ValueError`` escapes that net and turns a cost-model precondition into
an unclassified crash.  Argument validation raises
:class:`~repro.errors.InvalidParameterError` (which also subclasses
``ValueError`` for backward compatibility); ``NotImplementedError`` on
abstract methods and bare ``raise`` re-raises stay legal.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, ModuleContext, Rule

_BUILTIN_EXCEPTIONS = {
    "ArithmeticError",
    "AssertionError",
    "AttributeError",
    "BaseException",
    "Exception",
    "IOError",
    "IndexError",
    "KeyError",
    "LookupError",
    "NameError",
    "OSError",
    "OverflowError",
    "RuntimeError",
    "StopIteration",
    "TypeError",
    "ValueError",
    "ZeroDivisionError",
}


class ErrorHierarchyRule(Rule):
    """Flag raises of built-in exception types inside ``repro``."""

    rule_id = "RA-ERRORS"
    summary = (
        "exceptions raised inside src/repro must come from repro.errors "
        "(built-in raises escape the ReproError net)"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        """Yield a finding per ``raise <builtin>(...)`` statement."""
        if not module.in_package("repro"):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            if isinstance(exc, ast.Name) and exc.id in _BUILTIN_EXCEPTIONS:
                yield self.finding(
                    module,
                    node,
                    f"raises built-in {exc.id}; use a repro.errors class "
                    "(InvalidParameterError subclasses ValueError) so callers "
                    "can catch ReproError",
                )


__all__ = ["ErrorHierarchyRule"]
