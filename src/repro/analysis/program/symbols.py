"""Cross-module symbol table: who defines what, who imports whom.

The per-module rules of :mod:`repro.analysis.rules` see one file at a
time; every whole-program rule (transitive cost purity, parallel worker
safety) first needs to know, for *every* analyzed module, which
functions and classes it defines, what its imports resolve to, and what
module-level state it carries.  :class:`SymbolTable` is that index.

Qualified names are dotted: ``repro.cost.hhnl.hhnl_cost`` for a
module-level function, ``repro.experiments.engine.SweepEngine.evaluate``
for a method.  Resolution is purely static — no module is imported — so
the table can be built over fixture trees and over the real package with
identical semantics.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

from repro.analysis.engine import ModuleContext

#: AST literal nodes whose value is a shared *mutable* container
MUTABLE_LITERAL_NODES = (
    ast.Dict,
    ast.List,
    ast.Set,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
)

#: constructor names that build a mutable container
MUTABLE_CONSTRUCTOR_NAMES = frozenset(
    {
        "dict",
        "list",
        "set",
        "bytearray",
        "defaultdict",
        "deque",
        "Counter",
        "OrderedDict",
    }
)

#: global "kind" tags (see :class:`GlobalInfo`)
KIND_MUTABLE = "mutable"
KIND_INSTANCE = "instance"
KIND_CONSTANT = "constant"


def walk_shallow(node: ast.AST) -> Iterator[ast.AST]:
    """Walk a subtree without descending into nested function/class defs."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if not isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            stack.extend(ast.iter_child_nodes(child))


def is_generator(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """True when the function body yields (ignoring nested defs)."""
    for node in walk_shallow(func):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
    return False


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method, addressable by its qualified name."""

    qualname: str
    module: str
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: str | None = None
    lineno: int = 0

    @property
    def is_method(self) -> bool:
        """True when the function is defined inside a class body."""
        return self.class_name is not None

    @property
    def generator(self) -> bool:
        """True when the function is a generator function."""
        return is_generator(self.node)


@dataclass(frozen=True)
class GlobalInfo:
    """One module-level binding and what kind of object it names.

    ``kind`` is :data:`KIND_MUTABLE` for container literals/constructors
    (shared mutable state candidates), :data:`KIND_INSTANCE` for a
    module-level ``SomeClass(...)`` instance (``constructor`` carries the
    resolved dotted constructor name), and :data:`KIND_CONSTANT` for
    everything else.
    """

    name: str
    module: str
    lineno: int
    kind: str
    constructor: str = ""


@dataclass
class ModuleSymbols:
    """Everything the program layer knows about one parsed module."""

    context: ModuleContext
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, tuple[str, ...]] = field(default_factory=dict)
    module_globals: dict[str, GlobalInfo] = field(default_factory=dict)

    @property
    def module_name(self) -> str:
        """The dotted module name (mirrors the context)."""
        return self.context.module_name


def _resolve_value_constructor(
    value: ast.expr, imports: Mapping[str, str], module_name: str
) -> str:
    """Dotted constructor behind ``Name(...)`` / ``mod.Name(...)``, or ''."""
    if not isinstance(value, ast.Call):
        return ""
    func = value.func
    if isinstance(func, ast.Name):
        return imports.get(func.id, func.id)
    if isinstance(func, ast.Attribute):
        parts: list[str] = []
        node: ast.expr = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            base = imports.get(node.id, node.id)
            return ".".join([base, *reversed(parts)])
    return ""


def _classify_global(
    name: str,
    value: ast.expr | None,
    lineno: int,
    imports: Mapping[str, str],
    module_name: str,
) -> GlobalInfo:
    if value is None:
        return GlobalInfo(name, module_name, lineno, KIND_CONSTANT)
    if isinstance(value, MUTABLE_LITERAL_NODES):
        return GlobalInfo(name, module_name, lineno, KIND_MUTABLE)
    constructor = _resolve_value_constructor(value, imports, module_name)
    if constructor:
        tail = constructor.rsplit(".", 1)[-1]
        if tail in MUTABLE_CONSTRUCTOR_NAMES:
            return GlobalInfo(name, module_name, lineno, KIND_MUTABLE, constructor)
        return GlobalInfo(name, module_name, lineno, KIND_INSTANCE, constructor)
    return GlobalInfo(name, module_name, lineno, KIND_CONSTANT)


def index_module(context: ModuleContext) -> ModuleSymbols:
    """Build the symbol index of one parsed module."""
    symbols = ModuleSymbols(context=context)
    module_name = context.module_name

    for node in context.tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    symbols.imports[alias.asname] = alias.name
                else:
                    # `import a.b` binds `a`; attribute chains re-append `.b`.
                    top = alias.name.split(".", 1)[0]
                    symbols.imports[top] = top
        elif isinstance(node, ast.ImportFrom):
            if node.level != 0 or node.module is None:
                continue
            for alias in node.names:
                local = alias.asname or alias.name
                symbols.imports[local] = f"{node.module}.{alias.name}"
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = f"{module_name}.{node.name}"
            symbols.functions[qualname] = FunctionInfo(
                qualname=qualname,
                module=module_name,
                name=node.name,
                node=node,
                lineno=node.lineno,
            )
        elif isinstance(node, ast.ClassDef):
            methods: list[str] = []
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = f"{module_name}.{node.name}.{item.name}"
                    symbols.functions[qualname] = FunctionInfo(
                        qualname=qualname,
                        module=module_name,
                        name=item.name,
                        node=item,
                        class_name=node.name,
                        lineno=item.lineno,
                    )
                    methods.append(item.name)
            symbols.classes[node.name] = tuple(methods)
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    symbols.module_globals[target.id] = _classify_global(
                        target.id,
                        node.value,
                        node.lineno,
                        symbols.imports,
                        module_name,
                    )
    return symbols


class SymbolTable:
    """The cross-module index: dotted names in, definitions out."""

    def __init__(self, modules: Sequence[ModuleSymbols]) -> None:
        self.modules: dict[str, ModuleSymbols] = {
            symbols.module_name: symbols for symbols in modules
        }
        self._functions: dict[str, FunctionInfo] = {}
        for symbols in self.modules.values():
            self._functions.update(symbols.functions)

    @classmethod
    def build(cls, contexts: Sequence[ModuleContext]) -> "SymbolTable":
        """Index every parsed module into one table."""
        return cls([index_module(context) for context in contexts])

    @property
    def functions(self) -> Mapping[str, FunctionInfo]:
        """Every indexed function/method by qualified name."""
        return self._functions

    def function(self, qualname: str) -> FunctionInfo | None:
        """The function behind a dotted name, if it is in the program."""
        direct = self._functions.get(qualname)
        if direct is not None:
            return direct
        # `repro.cost.model.CostModel(...)` — resolve a class call to its
        # constructor when the class defines one.
        init = self._functions.get(qualname + ".__init__")
        if init is not None:
            return init
        # A re-export: `from repro.core.join import resolve_outer_ids`
        # imported through an intermediate module.
        if "." in qualname:
            owner, name = qualname.rsplit(".", 1)
            module = self.modules.get(owner)
            if module is not None and name in module.imports:
                target = module.imports[name]
                if target != qualname:
                    return self.function(target)
        return None

    def resolve_name(self, symbols: ModuleSymbols, name: str) -> str:
        """A bare name in a module resolved to a dotted program name."""
        local_function = f"{symbols.module_name}.{name}"
        if local_function in symbols.functions:
            return local_function
        if name in symbols.classes:
            return local_function
        if name in symbols.imports:
            return symbols.imports[name]
        return name

    def resolve_call(
        self,
        symbols: ModuleSymbols,
        func: ast.expr,
        enclosing_class: str | None = None,
    ) -> str | None:
        """Dotted target of a call expression, or None when unresolvable.

        Handles bare names (local defs, imports), dotted module access
        (``module.attr`` through an ``import module``), and
        ``self.method()`` / ``cls.method()`` within a class body.
        """
        if isinstance(func, ast.Name):
            return self.resolve_name(symbols, func.id)
        if isinstance(func, ast.Attribute):
            parts: list[str] = []
            node: ast.expr = func
            while isinstance(node, ast.Attribute):
                parts.append(node.attr)
                node = node.value
            parts.reverse()
            if isinstance(node, ast.Name):
                base = node.id
                if base in ("self", "cls") and enclosing_class is not None:
                    return ".".join(
                        [symbols.module_name, enclosing_class, *parts]
                    )
                resolved_base = self.resolve_name(symbols, base)
                return ".".join([resolved_base, *parts])
        return None


__all__ = [
    "FunctionInfo",
    "GlobalInfo",
    "KIND_CONSTANT",
    "KIND_INSTANCE",
    "KIND_MUTABLE",
    "ModuleSymbols",
    "SymbolTable",
    "index_module",
    "is_generator",
    "walk_shallow",
]
