"""A small forward-dataflow framework plus the two analyses the rules use.

The framework is the classic worklist iteration over a
:class:`~repro.analysis.program.cfg.ControlFlowGraph` with union join —
enough for *may* analyses, which is all a linter should assert.

Two concrete analyses ship:

* :class:`ReachingDefinitions` — which ``(name, site)`` definitions may
  reach each block; powers alias questions ("does this local still hold
  the module global it was assigned from?");
* :func:`escaping_global_uses` — where a function reads, writes or
  mutates module-level state, following local aliases of globals through
  reaching definitions.  This is the substrate of RA-PAR-SAFE: a worker
  function submitted to a process pool must not touch shared mutable
  module state, and "touch" has to survive an ``alias = _TABLE`` hop.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.analysis.program.cfg import ControlFlowGraph, build_cfg
from repro.analysis.program.symbols import (
    KIND_MUTABLE,
    ModuleSymbols,
    walk_shallow,
)

#: method names that mutate their receiver in place
MUTATING_METHOD_NAMES = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "add",
        "discard",
        "sort",
        "reverse",
        "record",
        "merge",
        "reset",
        "subscribe",
        "unsubscribe",
    }
)

ACCESS_READ = "read"
ACCESS_WRITE = "write"
ACCESS_MUTATE = "mutate"


@dataclass(frozen=True)
class Definition:
    """One assignment site of one name."""

    name: str
    block_id: int
    index: int
    lineno: int


class ReachingDefinitions:
    """Which definitions of each name may reach each basic block."""

    def __init__(self, cfg: ControlFlowGraph) -> None:
        self.cfg = cfg
        self._gen: dict[int, dict[str, set[Definition]]] = {}
        self._in: dict[int, set[Definition]] = {}
        self._out: dict[int, set[Definition]] = {}
        self._solve()

    # --- framework --------------------------------------------------------

    def _block_definitions(self, block_id: int) -> dict[str, set[Definition]]:
        gen = self._gen.get(block_id)
        if gen is None:
            gen = {}
            block = self.cfg.block(block_id)
            for index, statement in enumerate(block.statements):
                for name in _assigned_names(statement):
                    gen[name] = {
                        Definition(name, block_id, index, statement.lineno)
                    }
            self._gen[block_id] = gen
        return gen

    def _transfer(self, block_id: int, incoming: set[Definition]) -> set[Definition]:
        gen = self._block_definitions(block_id)
        killed_names = set(gen)
        out = {d for d in incoming if d.name not in killed_names}
        for defs in gen.values():
            out |= defs
        return out

    def _solve(self) -> None:
        for block in self.cfg.blocks:
            self._in[block.block_id] = set()
            self._out[block.block_id] = set()
        worklist = [block.block_id for block in self.cfg.blocks]
        while worklist:
            block_id = worklist.pop(0)
            incoming: set[Definition] = set()
            for pred in self.cfg.predecessors(block_id):
                incoming |= self._out[pred]
            self._in[block_id] = incoming
            out = self._transfer(block_id, incoming)
            if out != self._out[block_id]:
                self._out[block_id] = out
                for successor in self.cfg.block(block_id).successors:
                    if successor not in worklist:
                        worklist.append(successor)

    # --- queries ----------------------------------------------------------

    def reaching_in(self, block_id: int) -> frozenset[Definition]:
        """Definitions that may reach the entry of ``block_id``."""
        return frozenset(self._in[block_id])

    def reaching_out(self, block_id: int) -> frozenset[Definition]:
        """Definitions that may reach the exit of ``block_id``."""
        return frozenset(self._out[block_id])

    def definitions_of(self, name: str) -> tuple[Definition, ...]:
        """Every definition site of ``name`` in the function, sorted."""
        found = [
            definition
            for block in self.cfg.blocks
            for definition in self._block_definitions(block.block_id).get(
                name, ()
            )
        ]
        return tuple(sorted(found, key=lambda d: (d.block_id, d.index)))


def _assigned_names(statement: ast.stmt) -> Iterator[str]:
    """Names (re)bound by one statement, shallowly."""
    if isinstance(statement, ast.Assign):
        for target in statement.targets:
            yield from _target_names(target)
    elif isinstance(statement, (ast.AnnAssign, ast.AugAssign)):
        yield from _target_names(statement.target)
    elif isinstance(statement, (ast.For, ast.AsyncFor)):
        yield from _target_names(statement.target)
    elif isinstance(statement, (ast.With, ast.AsyncWith)):
        for item in statement.items:
            if item.optional_vars is not None:
                yield from _target_names(item.optional_vars)


def _target_names(target: ast.expr) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)


def local_bindings(func: ast.FunctionDef | ast.AsyncFunctionDef) -> frozenset[str]:
    """Names bound locally in ``func`` (params, assignments, loops, defs).

    Names declared ``global``/``nonlocal`` are removed: assigning them
    targets the enclosing scope, which is exactly what the escape
    analysis needs to see.
    """
    names: set[str] = set()
    args = func.args
    for arg in (
        *args.posonlyargs,
        *args.args,
        *args.kwonlyargs,
        *((args.vararg,) if args.vararg else ()),
        *((args.kwarg,) if args.kwarg else ()),
    ):
        names.add(arg.arg)
    declared_global: set[str] = set()
    for node in walk_shallow(func):
        if isinstance(node, ast.stmt):
            names.update(_assigned_names(node))
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".", 1)[0])
        elif isinstance(node, (ast.Global, ast.Nonlocal)):
            declared_global.update(node.names)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            names.add(node.name)
    return frozenset(names - declared_global)


@dataclass(frozen=True)
class GlobalUse:
    """One touch of module-level state inside a function."""

    name: str
    access: str  # ACCESS_READ / ACCESS_WRITE / ACCESS_MUTATE
    node: ast.AST
    via_alias: bool = False


def _alias_names(
    func: ast.FunctionDef | ast.AsyncFunctionDef, global_names: frozenset[str]
) -> dict[str, str]:
    """Local names that may alias a module global (``x = _TABLE`` hops).

    Maps each alias to the underlying global so uses can be reported
    against the real module binding.  Flow-insensitive fixpoint over
    straight ``Name = Name`` assignments — conservative in the *may*
    direction, which is the right polarity for a safety rule.
    """
    aliases: dict[str, str] = {}
    changed = True
    while changed:
        changed = False
        for node in walk_shallow(func):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            if not isinstance(value, ast.Name):
                continue
            if value.id in global_names:
                origin = value.id
            elif value.id in aliases:
                origin = aliases[value.id]
            else:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id not in aliases:
                    aliases[target.id] = origin
                    changed = True
    return {
        alias: origin
        for alias, origin in aliases.items()
        if alias not in global_names
    }


def escaping_global_uses(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    symbols: ModuleSymbols,
) -> tuple[GlobalUse, ...]:
    """Every read/write/mutation of module-level state in ``func``.

    Reads are reported for every module global the function references;
    writes require a ``global`` declaration (plain assignment binds a
    local); mutations are in-place method calls, subscript stores or
    ``del`` on a module global or a local alias of one.
    """
    module_globals = frozenset(symbols.module_globals)
    if not module_globals:
        return ()
    locals_ = local_bindings(func)
    visible = module_globals - locals_
    declared_global: set[str] = set()
    for node in walk_shallow(func):
        if isinstance(node, ast.Global):
            declared_global.update(
                name for name in node.names if name in module_globals
            )
    aliases = _alias_names(func, visible | frozenset(declared_global))

    uses: list[GlobalUse] = []

    def classify(name: str) -> tuple[str, bool] | None:
        if name in visible or name in declared_global:
            return name, False
        if name in aliases:
            return aliases[name], True
        return None

    for node in walk_shallow(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                uses.extend(_store_uses(target, classify, declared_global))
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            uses.extend(_store_uses(node.target, classify, declared_global))
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                uses.extend(_store_uses(target, classify, declared_global))
        elif isinstance(node, ast.Call):
            callee = node.func
            if (
                isinstance(callee, ast.Attribute)
                and callee.attr in MUTATING_METHOD_NAMES
                and isinstance(callee.value, ast.Name)
            ):
                hit = classify(callee.value.id)
                if hit is not None:
                    name, via_alias = hit
                    uses.append(
                        GlobalUse(name, ACCESS_MUTATE, node, via_alias)
                    )
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            hit = classify(node.id)
            if hit is not None and not hit[1]:
                uses.append(GlobalUse(hit[0], ACCESS_READ, node))
    return tuple(uses)


def _store_uses(target, classify, declared_global) -> Iterator[GlobalUse]:
    """Write/mutate uses produced by one store target."""
    if isinstance(target, ast.Name):
        if target.id in declared_global:
            yield GlobalUse(target.id, ACCESS_WRITE, target)
    elif isinstance(target, (ast.Subscript, ast.Attribute)):
        base = target.value
        if isinstance(base, ast.Name):
            hit = classify(base.id)
            if hit is not None:
                yield GlobalUse(hit[0], ACCESS_MUTATE, target, hit[1])
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _store_uses(element, classify, declared_global)


def mutable_global_names(symbols: ModuleSymbols) -> frozenset[str]:
    """Module globals bound to mutable containers in ``symbols``."""
    return frozenset(
        name
        for name, info in symbols.module_globals.items()
        if info.kind == KIND_MUTABLE
    )


def reaching_definitions(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> ReachingDefinitions:
    """Convenience: build the CFG and solve reaching definitions."""
    return ReachingDefinitions(build_cfg(func))


__all__ = [
    "ACCESS_MUTATE",
    "ACCESS_READ",
    "ACCESS_WRITE",
    "Definition",
    "GlobalUse",
    "MUTATING_METHOD_NAMES",
    "ReachingDefinitions",
    "escaping_global_uses",
    "local_bindings",
    "mutable_global_names",
    "reaching_definitions",
]
