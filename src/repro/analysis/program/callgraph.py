"""Static call graph over the indexed program.

Edges connect qualified function names (see
:mod:`repro.analysis.program.symbols`).  Three classes of call are kept
apart because the whole-program rules consume them differently:

* **internal** edges — the callee is a function the program defines;
  these drive transitive analyses (reachability, taint propagation);
* **external** calls — resolved dotted names outside the analyzed tree
  (``math.ceil``, ``json.dumps``); kept for diagnostics, never traversed;
* **attribute** calls — ``obj.method(...)`` with an unresolvable
  receiver; recorded by attribute *name* so rules can match I/O verbs
  (``.record``, ``.read_record``) without type inference;
* **builtin** calls — bare names that resolve to nothing the program or
  its imports define (``print``, ``open``, ``len``).

Resolution is deliberately conservative: an edge exists only when the
target is statically certain, so transitive findings never rest on a
guessed dispatch.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.analysis.program.symbols import (
    FunctionInfo,
    SymbolTable,
    walk_shallow,
)


@dataclass(frozen=True)
class AttributeCall:
    """One ``receiver.attr(...)`` call with an unresolved receiver."""

    attr: str
    lineno: int


@dataclass
class FunctionCalls:
    """Every call made by one function body (shallow, no nested defs)."""

    internal: tuple[str, ...] = ()
    external: tuple[str, ...] = ()
    attributes: tuple[AttributeCall, ...] = ()
    builtins: tuple[str, ...] = ()


class CallGraph:
    """Call edges between qualified names, with reachability queries."""

    def __init__(self, calls: Mapping[str, FunctionCalls]) -> None:
        self._calls = dict(calls)

    @classmethod
    def build(cls, table: SymbolTable) -> "CallGraph":
        """Scan every indexed function and resolve its call sites."""
        calls: dict[str, FunctionCalls] = {}
        for qualname, info in table.functions.items():
            calls[qualname] = _collect_calls(table, info)
        return cls(calls)

    @property
    def functions(self) -> tuple[str, ...]:
        """Every function the graph knows about, sorted."""
        return tuple(sorted(self._calls))

    def calls(self, qualname: str) -> FunctionCalls:
        """The call record of one function (empty for unknown names)."""
        return self._calls.get(qualname, FunctionCalls())

    def callees(self, qualname: str) -> tuple[str, ...]:
        """Internal callees of one function."""
        return self.calls(qualname).internal

    def reachable(self, qualname: str) -> tuple[str, ...]:
        """Every program function transitively reachable from ``qualname``.

        The start itself is included — a function trivially reaches its
        own body — and the result is sorted for deterministic reports.
        """
        seen: set[str] = {qualname}
        frontier = deque([qualname])
        while frontier:
            current = frontier.popleft()
            for callee in self.callees(current):
                if callee not in seen:
                    seen.add(callee)
                    frontier.append(callee)
        return tuple(sorted(seen))

    def call_path(self, start: str, targets: Iterable[str]) -> tuple[str, ...]:
        """Shortest internal-edge path from ``start`` into ``targets``.

        Returns the qualified names along the path (start first, target
        last), or an empty tuple when no target is reachable.
        """
        wanted = set(targets)
        if start in wanted:
            return (start,)
        parents: dict[str, str] = {start: start}
        frontier = deque([start])
        while frontier:
            current = frontier.popleft()
            for callee in self.callees(current):
                if callee in parents:
                    continue
                parents[callee] = current
                if callee in wanted:
                    path = [callee]
                    while path[-1] != start:
                        path.append(parents[path[-1]])
                    return tuple(reversed(path))
                frontier.append(callee)
        return ()


def _collect_calls(table: SymbolTable, info: FunctionInfo) -> FunctionCalls:
    symbols = table.modules[info.module]
    internal: list[str] = []
    external: list[str] = []
    attributes: list[AttributeCall] = []
    builtins_seen: list[str] = []
    for node in walk_shallow(info.node):
        if not isinstance(node, ast.Call):
            continue
        resolved = table.resolve_call(symbols, node.func, info.class_name)
        if resolved is None:
            continue
        target = table.function(resolved)
        if target is not None:
            internal.append(target.qualname)
        elif isinstance(node.func, ast.Name) and "." not in resolved:
            builtins_seen.append(resolved)
        elif isinstance(node.func, ast.Attribute) and _is_opaque(
            resolved, table, symbols.imports
        ):
            attributes.append(AttributeCall(node.func.attr, node.lineno))
        else:
            external.append(resolved)
    return FunctionCalls(
        internal=tuple(internal),
        external=tuple(external),
        attributes=tuple(attributes),
        builtins=tuple(builtins_seen),
    )


def _is_opaque(
    resolved: str, table: SymbolTable, imports: Mapping[str, str]
) -> bool:
    """True when the dotted base is a value, not a module/import target.

    ``disk.read_record`` resolves to ``disk.read_record`` — the base is a
    local variable, so the call is an opaque attribute call.  ``math.ceil``
    has its base among the imports and is a real external reference.
    """
    base = resolved.split(".", 1)[0]
    if base in imports.values() or any(
        dotted == base or dotted.startswith(base + ".")
        for dotted in imports.values()
    ):
        return False
    return base not in table.modules


__all__ = ["AttributeCall", "CallGraph", "FunctionCalls"]
