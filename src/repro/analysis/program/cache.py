"""Incremental analysis-result cache keyed by SHA-256 fingerprints.

``repro lint`` in CI runs on every push; most pushes change a handful of
files.  The cache reuses the PR 5 workspace-manifest idiom — content
checksums as identity — at two granularities:

* **per-file** entries: the findings of the *local* (single-module)
  rules depend only on that file's bytes and the active rule set, so
  they are keyed by ``(file sha256, rule signature)``;
* **one program entry**: whole-program findings (call-graph transitive
  purity, parallel safety, stale suppressions) can change when *any*
  file changes, so they are keyed by a program fingerprint — the SHA-256
  over every analyzed file's ``(path, sha256)`` pair — plus the rule
  signature.

A cache is plain JSON under the cache directory; a missing, corrupt or
schema-mismatched file degrades to an empty cache, never to an error —
the cache may only ever change *speed*, not results.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Mapping, Sequence

from repro.analysis.engine import Finding

CACHE_SCHEMA = "repro-analysis-cache/1"
CACHE_FILE_NAME = "cache.json"


def file_sha256(path: Path) -> str:
    """Hex SHA-256 of one file's bytes."""
    return hashlib.sha256(path.read_bytes()).hexdigest()


def program_fingerprint(shas: Mapping[str, str]) -> str:
    """One hex digest over every analyzed file's ``(path, sha256)``."""
    digest = hashlib.sha256()
    for path in sorted(shas):
        digest.update(path.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(shas[path].encode("ascii"))
        digest.update(b"\x00")
    return digest.hexdigest()


def rules_signature(rule_descriptions: Sequence[str]) -> str:
    """Hex digest identifying the active rule set (ids + classes)."""
    digest = hashlib.sha256()
    for description in sorted(rule_descriptions):
        digest.update(description.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


def finding_from_dict(payload: Mapping[str, object]) -> Finding:
    """Rebuild a :class:`Finding` from its ``as_dict`` form."""
    return Finding(
        rule_id=str(payload["rule"]),
        severity=str(payload["severity"]),
        path=str(payload["path"]),
        line=int(payload["line"]),
        column=int(payload["column"]),
        message=str(payload["message"]),
        suppressed=bool(payload["suppressed"]),
    )


class AnalysisCache:
    """Load/store of per-file and whole-program findings."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.path = self.directory / CACHE_FILE_NAME
        self._files: dict[str, dict[str, object]] = {}
        self._program: dict[str, object] | None = None
        self._dirty = False
        self._load()

    def _load(self) -> None:
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(payload, dict) or payload.get("schema") != CACHE_SCHEMA:
            return
        files = payload.get("files")
        if isinstance(files, dict):
            self._files = {
                str(key): value
                for key, value in files.items()
                if isinstance(value, dict)
            }
        program = payload.get("program")
        if isinstance(program, dict):
            self._program = program

    # --- per-file entries -------------------------------------------------

    def lookup_file(
        self, path: str, sha: str, signature: str
    ) -> tuple[Finding, ...] | None:
        """Cached local findings for one unchanged file, or None."""
        entry = self._files.get(path)
        if (
            entry is None
            or entry.get("sha256") != sha
            or entry.get("signature") != signature
        ):
            return None
        findings = entry.get("findings")
        if not isinstance(findings, list):
            return None
        try:
            return tuple(finding_from_dict(item) for item in findings)
        except (KeyError, TypeError, ValueError):
            return None

    def store_file(
        self, path: str, sha: str, signature: str, findings: Sequence[Finding]
    ) -> None:
        """Record the local findings of one file."""
        self._files[path] = {
            "sha256": sha,
            "signature": signature,
            "findings": [finding.as_dict() for finding in findings],
        }
        self._dirty = True

    # --- the program entry ------------------------------------------------

    def lookup_program(
        self, fingerprint: str, signature: str
    ) -> tuple[Finding, ...] | None:
        """Cached whole-program findings for an unchanged tree, or None."""
        entry = self._program
        if (
            entry is None
            or entry.get("fingerprint") != fingerprint
            or entry.get("signature") != signature
        ):
            return None
        findings = entry.get("findings")
        if not isinstance(findings, list):
            return None
        try:
            return tuple(finding_from_dict(item) for item in findings)
        except (KeyError, TypeError, ValueError):
            return None

    def store_program(
        self, fingerprint: str, signature: str, findings: Sequence[Finding]
    ) -> None:
        """Record the whole-program findings of one tree state."""
        self._program = {
            "fingerprint": fingerprint,
            "signature": signature,
            "findings": [finding.as_dict() for finding in findings],
        }
        self._dirty = True

    # --- persistence ------------------------------------------------------

    def save(self) -> None:
        """Write the cache back when anything changed (best effort)."""
        if not self._dirty:
            return
        payload = {
            "schema": CACHE_SCHEMA,
            "files": self._files,
            "program": self._program,
        }
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            self.path.write_text(
                json.dumps(payload, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
        except OSError:
            # An unwritable cache directory must never fail the lint.
            return
        self._dirty = False


__all__ = [
    "AnalysisCache",
    "CACHE_FILE_NAME",
    "CACHE_SCHEMA",
    "file_sha256",
    "finding_from_dict",
    "program_fingerprint",
    "rules_signature",
]
