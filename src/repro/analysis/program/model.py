"""The whole-program model handed to :class:`~repro.analysis.engine.ProgramRule`.

A :class:`ProgramModel` bundles everything the cross-module rules need:
the parsed modules, the symbol table, the call graph, the active/known
rule-id sets, and — for the stale-suppression rule, which runs after
every other rule — the set of ``(path, line, rule_id)`` triples whose
suppression actually absorbed a finding this run.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.analysis.engine import Finding, ModuleContext
from repro.analysis.program.callgraph import CallGraph
from repro.analysis.program.symbols import SymbolTable


class ProgramModel:
    """Cross-module view of one analysis run."""

    def __init__(
        self,
        modules: Sequence[ModuleContext],
        table: SymbolTable,
        graph: CallGraph,
        known_rule_ids: frozenset[str] = frozenset(),
        active_rule_ids: frozenset[str] = frozenset(),
    ) -> None:
        self.modules = tuple(modules)
        self.table = table
        self.graph = graph
        self.known_rule_ids = known_rule_ids
        self.active_rule_ids = active_rule_ids
        self.suppression_hits: set[tuple[str, int, str]] = set()

    @classmethod
    def build(
        cls,
        modules: Sequence[ModuleContext],
        known_rule_ids: Iterable[str] = (),
        active_rule_ids: Iterable[str] = (),
    ) -> "ProgramModel":
        """Index the modules and resolve the call graph in one pass."""
        table = SymbolTable.build(modules)
        graph = CallGraph.build(table)
        return cls(
            modules,
            table,
            graph,
            known_rule_ids=frozenset(known_rule_ids),
            active_rule_ids=frozenset(active_rule_ids),
        )

    @property
    def modules_by_name(self) -> Mapping[str, ModuleContext]:
        """Every analyzed module keyed by dotted name."""
        return {context.module_name: context for context in self.modules}

    def mark_suppression_hits(self, findings: Iterable[Finding]) -> None:
        """Record which suppressions absorbed a finding this run.

        Called by the engine with every finding (suppressed and not)
        produced by the rules that ran *before* the stale-suppression
        rule; a suppression with no matching hit is stale.
        """
        for finding in findings:
            if finding.suppressed:
                self.suppression_hits.add(
                    (finding.path, finding.line, finding.rule_id)
                )


__all__ = ["ProgramModel"]
