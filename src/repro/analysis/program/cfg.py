"""Per-function control-flow graphs for the dataflow framework.

A :class:`ControlFlowGraph` is a set of :class:`BasicBlock`\\ s — maximal
straight-line statement runs — connected by successor edges.  The
builder covers the control constructs the repro codebase actually uses
(``if``/``while``/``for``/``with``/``try``/``break``/``continue``/
``return``/``raise``/``match``) and is conservative everywhere else:
when in doubt an edge is added, never removed, so a dataflow fact proved
on this graph holds on every real execution.

Blocks are numbered in construction order; block ``0`` is the entry and
the synthetic exit block carries no statements.  Statements keep their
AST identity, so analyses can anchor findings on real source locations.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class BasicBlock:
    """A straight-line run of statements with its successor edges."""

    block_id: int
    statements: list[ast.stmt] = field(default_factory=list)
    successors: list[int] = field(default_factory=list)

    def add_successor(self, block_id: int) -> None:
        """Append an edge, de-duplicated."""
        if block_id not in self.successors:
            self.successors.append(block_id)


class ControlFlowGraph:
    """All blocks of one function, entry first, synthetic exit last."""

    def __init__(self) -> None:
        self.blocks: list[BasicBlock] = []
        self.entry_id = self._new_block().block_id
        self.exit_id: int = -1  # assigned by the builder when sealing

    def _new_block(self) -> BasicBlock:
        block = BasicBlock(block_id=len(self.blocks))
        self.blocks.append(block)
        return block

    def block(self, block_id: int) -> BasicBlock:
        """The block with the given id."""
        return self.blocks[block_id]

    def predecessors(self, block_id: int) -> tuple[int, ...]:
        """Ids of every block with an edge into ``block_id``."""
        return tuple(
            block.block_id
            for block in self.blocks
            if block_id in block.successors
        )

    def iter_statements(self) -> Iterator[tuple[int, int, ast.stmt]]:
        """``(block_id, index, statement)`` over the whole graph."""
        for block in self.blocks:
            for index, statement in enumerate(block.statements):
                yield block.block_id, index, statement


_JUMP_STATEMENTS = (ast.Return, ast.Raise, ast.Break, ast.Continue)


class _CFGBuilder:
    """Recursive-descent CFG construction over a function body."""

    def __init__(self) -> None:
        self.cfg = ControlFlowGraph()
        self._loop_stack: list[tuple[int, int]] = []  # (header, after)

    def build(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> ControlFlowGraph:
        """Build the graph of one function definition."""
        current = self.cfg.block(self.cfg.entry_id)
        current = self._statements(func.body, current)
        exit_block = self.cfg._new_block()
        self.cfg.exit_id = exit_block.block_id
        if current is not None:
            current.add_successor(exit_block.block_id)
        # Every jump terminator targets the exit once it exists.
        for block in self.cfg.blocks:
            if block.block_id == exit_block.block_id:
                continue
            if block.statements and isinstance(
                block.statements[-1], (ast.Return, ast.Raise)
            ):
                block.add_successor(exit_block.block_id)
        return self.cfg

    # --- helpers ----------------------------------------------------------

    def _statements(
        self, body: list[ast.stmt], current: BasicBlock | None
    ) -> BasicBlock | None:
        """Thread ``body`` through the graph; None means unreachable."""
        for statement in body:
            if current is None:
                # Unreachable code still gets a block so its statements
                # are visible to analyses, just with no inbound edge.
                current = self.cfg._new_block()
            current = self._statement(statement, current)
        return current

    def _statement(
        self, statement: ast.stmt, current: BasicBlock
    ) -> BasicBlock | None:
        if isinstance(statement, ast.If):
            return self._branch(statement, current)
        if isinstance(statement, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(statement, current)
        if isinstance(statement, (ast.With, ast.AsyncWith)):
            current.statements.append(statement)
            return self._statements(statement.body, current)
        if isinstance(statement, (ast.Try, getattr(ast, "TryStar", ast.Try))):
            return self._try(statement, current)
        if isinstance(statement, ast.Match):
            return self._match(statement, current)
        current.statements.append(statement)
        if isinstance(statement, _JUMP_STATEMENTS):
            if isinstance(statement, ast.Break) and self._loop_stack:
                current.add_successor(self._loop_stack[-1][1])
            elif isinstance(statement, ast.Continue) and self._loop_stack:
                current.add_successor(self._loop_stack[-1][0])
            return None
        return current

    def _branch(self, statement: ast.If, current: BasicBlock) -> BasicBlock | None:
        current.statements.append(statement)
        after = self.cfg._new_block()
        then_block = self.cfg._new_block()
        current.add_successor(then_block.block_id)
        then_end = self._statements(statement.body, then_block)
        if then_end is not None:
            then_end.add_successor(after.block_id)
        if statement.orelse:
            else_block = self.cfg._new_block()
            current.add_successor(else_block.block_id)
            else_end = self._statements(statement.orelse, else_block)
            if else_end is not None:
                else_end.add_successor(after.block_id)
        else:
            current.add_successor(after.block_id)
        return after

    def _loop(
        self,
        statement: ast.While | ast.For | ast.AsyncFor,
        current: BasicBlock,
    ) -> BasicBlock:
        header = self.cfg._new_block()
        header.statements.append(statement)
        current.add_successor(header.block_id)
        after = self.cfg._new_block()
        body_block = self.cfg._new_block()
        header.add_successor(body_block.block_id)
        header.add_successor(after.block_id)
        self._loop_stack.append((header.block_id, after.block_id))
        body_end = self._statements(statement.body, body_block)
        self._loop_stack.pop()
        if body_end is not None:
            body_end.add_successor(header.block_id)
        if statement.orelse:
            else_end = self._statements(statement.orelse, after)
            if else_end is not None:
                return else_end
        return after

    def _try(self, statement: ast.Try, current: BasicBlock) -> BasicBlock | None:
        after = self.cfg._new_block()
        body_end = self._statements(statement.body, current)
        handler_ends: list[BasicBlock | None] = []
        for handler in statement.handlers:
            handler_block = self.cfg._new_block()
            # Conservatively, an exception may fire anywhere in the body.
            current.add_successor(handler_block.block_id)
            if body_end is not None:
                body_end.add_successor(handler_block.block_id)
            handler_ends.append(self._statements(handler.body, handler_block))
        if statement.orelse and body_end is not None:
            body_end = self._statements(statement.orelse, body_end)
        finals = [body_end, *handler_ends]
        tail: BasicBlock | None = after
        if statement.finalbody:
            final_block = self.cfg._new_block()
            for end in finals:
                if end is not None:
                    end.add_successor(final_block.block_id)
            tail = self._statements(statement.finalbody, final_block)
            if tail is not None:
                tail.add_successor(after.block_id)
            return after
        reachable = False
        for end in finals:
            if end is not None:
                end.add_successor(after.block_id)
                reachable = True
        return after if reachable else None

    def _match(self, statement: ast.Match, current: BasicBlock) -> BasicBlock:
        current.statements.append(statement)
        after = self.cfg._new_block()
        for case in statement.cases:
            case_block = self.cfg._new_block()
            current.add_successor(case_block.block_id)
            case_end = self._statements(case.body, case_block)
            if case_end is not None:
                case_end.add_successor(after.block_id)
        current.add_successor(after.block_id)
        return after


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> ControlFlowGraph:
    """The control-flow graph of one function definition."""
    return _CFGBuilder().build(func)


__all__ = ["BasicBlock", "ControlFlowGraph", "build_cfg"]
