"""Whole-program substrate for the domain-aware analysis engine.

Layered bottom-up:

* :mod:`~repro.analysis.program.symbols` — cross-module symbol table
  (functions, classes, imports, module-level globals);
* :mod:`~repro.analysis.program.callgraph` — statically-certain call
  edges with reachability and shortest-path queries;
* :mod:`~repro.analysis.program.cfg` /
  :mod:`~repro.analysis.program.dataflow` — per-function control-flow
  graphs and a worklist dataflow framework (reaching definitions,
  escaping-global analysis);
* :mod:`~repro.analysis.program.model` — the :class:`ProgramModel`
  bundle handed to whole-program rules;
* :mod:`~repro.analysis.program.cache` — the SHA-256-keyed incremental
  result cache.
"""

from repro.analysis.program.cache import AnalysisCache
from repro.analysis.program.callgraph import AttributeCall, CallGraph, FunctionCalls
from repro.analysis.program.cfg import BasicBlock, ControlFlowGraph, build_cfg
from repro.analysis.program.dataflow import (
    GlobalUse,
    ReachingDefinitions,
    escaping_global_uses,
    local_bindings,
    mutable_global_names,
    reaching_definitions,
)
from repro.analysis.program.model import ProgramModel
from repro.analysis.program.symbols import (
    FunctionInfo,
    GlobalInfo,
    ModuleSymbols,
    SymbolTable,
    index_module,
    is_generator,
    walk_shallow,
)

__all__ = [
    "AnalysisCache",
    "AttributeCall",
    "BasicBlock",
    "CallGraph",
    "ControlFlowGraph",
    "FunctionCalls",
    "FunctionInfo",
    "GlobalInfo",
    "GlobalUse",
    "ModuleSymbols",
    "ProgramModel",
    "ReachingDefinitions",
    "SymbolTable",
    "build_cfg",
    "escaping_global_uses",
    "index_module",
    "is_generator",
    "local_bindings",
    "mutable_global_names",
    "reaching_definitions",
    "walk_shallow",
]
