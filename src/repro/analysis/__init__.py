"""Domain-aware static analysis for the text-join reproduction.

The paper's credibility rests on invariants that ordinary tests cannot
watch everywhere at once: page counts must never mix with byte counts
(RA-UNITS), cost formulas must be pure predictions (RA-COST-PURITY),
every simulated read must be charged through ``IOStats`` (RA-CORE-IO),
and so on.  This package checks them mechanically on every run:

>>> python -m repro.analysis src/repro            # doctest: +SKIP
>>> python -m repro --help                        # doctest: +SKIP

See ``docs/ANALYSIS.md`` for the full rule catalogue and the
``# repro: ignore[RULE-ID]`` suppression syntax.
"""

from __future__ import annotations

from repro.analysis.engine import (
    AnalysisReport,
    Finding,
    ModuleContext,
    Rule,
    analyze_paths,
    load_module,
)
from repro.analysis.reporters import render_json, render_text
from repro.analysis.rules import default_rules

__all__ = [
    "AnalysisReport",
    "Finding",
    "ModuleContext",
    "Rule",
    "analyze_paths",
    "default_rules",
    "load_module",
    "render_json",
    "render_text",
]
