"""Command-line front-end: ``python -m repro.analysis`` / ``repro lint``.

Exit codes are CI-friendly: ``0`` when every file is clean (suppressed
findings do not count), ``1`` when unsuppressed findings exist, ``2``
for usage errors, unknown rule ids, or unparseable files.

``--jobs N`` fans the per-module rules out over a process pool; the
report is byte-identical to a sequential run.  ``--cache-dir DIR``
enables the SHA-256-keyed incremental cache (``--no-cache`` wins when
both are given); a warm cache changes only the report's ``cache``
counters, never its findings.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.engine import analyze_paths
from repro.analysis.reporters import render_json, render_sarif, render_text
from repro.analysis.rules import default_rules
from repro.errors import AnalysisError

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def _default_target() -> Path:
    import repro

    return Path(repro.__file__).resolve().parent


def build_parser() -> argparse.ArgumentParser:
    """The argument parser shared by ``__main__`` and ``repro lint``."""
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description="Domain-aware static analysis for the text-join "
        "reproduction: unit, purity, I/O-discipline, streaming and "
        "parallel-safety lints.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to analyse (default: the installed "
        "repro package)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE-ID",
        help="run only these rule ids (repeatable, comma-separable)",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print suppressed findings in the text report",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule id and summary, then exit",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="analyse files with N worker processes (0 = one per CPU; "
        "default: 1, sequential); reports are byte-identical across N",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        metavar="DIR",
        help="reuse results for files whose SHA-256 is unchanged, storing "
        "the cache under DIR (off unless given)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore --cache-dir and analyse everything from scratch",
    )
    return parser


def run(argv: Sequence[str] | None = None) -> int:
    """Entry point used by ``python -m repro.analysis`` and ``repro lint``."""
    args = build_parser().parse_args(argv)
    rules = default_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.rule_id:18} {rule.severity:8} {rule.summary}")
        return EXIT_CLEAN
    select = None
    if args.select:
        select = [
            part.strip()
            for chunk in args.select
            for part in chunk.split(",")
            if part.strip()
        ]
    paths = list(args.paths) or [_default_target()]
    jobs = args.jobs if args.jobs != 0 else (os.cpu_count() or 1)
    cache = None
    if args.cache_dir is not None and not args.no_cache:
        from repro.analysis.program.cache import AnalysisCache

        cache = AnalysisCache(args.cache_dir)
    try:
        report = analyze_paths(paths, rules, select=select, jobs=jobs, cache=cache)
    except AnalysisError as exc:
        print(f"repro.analysis: error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if args.format == "json":
        print(render_json(report))
    elif args.format == "sarif":
        print(render_sarif(report, {rule.rule_id: rule.summary for rule in rules}))
    else:
        print(render_text(report, show_suppressed=args.show_suppressed))
    return EXIT_CLEAN if report.clean else EXIT_FINDINGS


__all__ = ["EXIT_CLEAN", "EXIT_FINDINGS", "EXIT_USAGE", "build_parser", "run"]
