"""HVNL cost model (paper Section 5.2).

Memory layout while HVNL runs: one outer document (``ceil(S2)``), the
whole B+-tree of the inner collection (``Bt1``), the non-zero similarity
accumulators (``4 * N1 * delta / P``) and the term list of the resident
entries (``|t#|/P`` per entry), leaving room for ``X`` inverted-file
entries::

    X = floor( (B - ceil(S2) - Bt1 - 4*N1*delta/P) / (J1 + |t#|/P) )

Three regimes follow (the paper's three-case ``hvs``):

1. ``X >= T1`` — the whole inverted file fits: either scan it in
   sequentially (``I1``) or fetch just the ``T2 * q`` needed entries at
   random (``ceil(J1) * alpha`` each); take the cheaper.
2. ``T1 > X >= T2 * q`` — all *needed* entries fit: fetch each once.
3. ``X < T2 * q`` — thrashing: the buffer fills after the first
   ``s + X1 - 1`` outer documents; each later document forces ``Y`` fresh
   fetches.  ``s``, ``X1`` and ``Y`` come from the vocabulary-growth
   model ``f(m) = T2 - T2 * (1 - K2/T2)**m`` (expected distinct terms in
   ``m`` outer documents).

The worst-case ``hvr`` adds random reads for the outer scan: leftover
memory after the entries lets C2 be read in blocks (cases 1-2), and with
no leftover every document read can seek (case 3, ``min(D2, N2)``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.constants import SIMILARITY_VALUE_BYTES, TERM_NUMBER_BYTES
from repro.errors import InsufficientMemoryError, InvalidParameterError
from repro.cost.params import JoinSide, QueryParams, SystemParams


@dataclass(frozen=True)
class HVNLCost:
    """Both cost variants plus the regime diagnostics."""

    sequential: float
    random: float
    entry_capacity: int
    regime: str  # 'all-entries-fit' | 'needed-entries-fit' | 'thrashing'
    fill_document: float | None = None  # the paper's s (thrashing only)
    fill_fraction: float | None = None  # the paper's X1
    fetches_per_document: float | None = None  # the paper's Y

    @property
    def x(self) -> int:
        """The paper's ``X`` — inverted-file entries buffered at once."""
        return self.entry_capacity


def distinct_terms_in_documents(m: float, k: float, t: float) -> float:
    """The paper's ``f(m) = T - T * (1 - K/T)**m``.

    Expected number of distinct terms across ``m`` documents of ``K``
    average distinct terms drawn from a ``T``-term vocabulary.  Defined
    for real ``m >= 0`` (the paper evaluates it at ``s + X1``).
    """
    if m < 0:
        raise InvalidParameterError(f"m must be non-negative, got {m}")
    if t <= 0 or k <= 0:
        return 0.0
    ratio = max(0.0, 1.0 - k / t)
    return t * (1.0 - ratio**m)


def hvnl_memory_capacity(
    side1: JoinSide, side2: JoinSide, system: SystemParams, query: QueryParams
) -> int:
    """``X``: inner inverted-file entries the buffer can hold at once."""
    stats1, stats2 = side1.stats, side2.stats
    reserved = (
        (math.ceil(stats2.S) if stats2.S > 0 else 0)
        + stats1.Bt
        + SIMILARITY_VALUE_BYTES * side1.n_participating * query.delta / system.page_bytes
    )
    available = system.buffer_pages - reserved
    if available < 0:
        raise InsufficientMemoryError(
            f"HVNL needs {reserved:.1f} pages for the outer document, B+-tree "
            f"and similarity accumulators; buffer is {system.buffer_pages}"
        )
    per_entry = stats1.J + TERM_NUMBER_BYTES / system.page_bytes
    if per_entry <= 0:
        return stats1.T or 1
    return int(available / per_entry)


def _blocked_outer_random_reads(d2: float, leftover_pages: float, n2: int) -> float:
    """Random reads for the outer collection, given leftover buffer pages.

    ``ceil(D2 / leftover)`` block seeks, never more than one seek per
    document (or per page when documents are sub-page) — the paper's
    ``min(D2, N2)`` bound.
    """
    if d2 <= 0 or n2 <= 0:
        return 0.0
    per_read_bound = min(d2, float(n2))
    if leftover_pages <= 0:
        return per_read_bound
    return min(math.ceil(d2 / leftover_pages), per_read_bound)


def hvnl_cost(
    side1: JoinSide,
    side2: JoinSide,
    system: SystemParams,
    query: QueryParams,
    q: float,
) -> HVNLCost:
    """Evaluate ``hvs``/``hvr`` for inner C1 (inverted) and outer C2 (docs).

    ``q`` is the probability that an outer term also appears in C1
    (Section 6 model or measured).
    """
    if not 0.0 <= q <= 1.0:
        raise InvalidParameterError(f"q must be in [0, 1], got {q}")
    alpha = system.alpha
    stats1, stats2 = side1.stats, side2.stats
    n2 = side2.n_participating
    x = hvnl_memory_capacity(side1, side2, system, query)
    cj1 = math.ceil(stats1.J) if stats1.J > 0 else 0
    bt1 = stats1.Bt
    d2_read = side2.document_read_cost(alpha)
    d2 = stats2.D
    # Entries ever touched: q * (distinct terms among the participating
    # documents).  For a full collection f(N2) ~= T2, recovering the
    # paper's ``T2 * q``; for a Group 3 selection only the survivors'
    # terms matter.
    needed = q * distinct_terms_in_documents(n2, stats2.K, stats2.T)

    # A selected outer side already pays random document reads inside
    # d2_read, so the hvr surcharge on outer reads vanishes.
    outer_interference = not side2.is_selected

    if n2 == 0:
        return HVNLCost(sequential=0.0, random=0.0, entry_capacity=x, regime="empty")

    if x >= stats1.T:
        seq_scan_all = d2_read + stats1.I + bt1
        seq_fetch_needed = d2_read + needed * cj1 * alpha + bt1
        if outer_interference:
            extra_scan = _blocked_outer_random_reads(d2, (x - stats1.T) * stats1.J, n2)
            extra_fetch = _blocked_outer_random_reads(d2, (x - needed) * stats1.J, n2)
        else:
            extra_scan = extra_fetch = 0.0
        hvs = min(seq_scan_all, seq_fetch_needed)
        hvr = min(
            seq_scan_all + extra_scan * (alpha - 1),
            seq_fetch_needed + extra_fetch * (alpha - 1),
        )
        return HVNLCost(
            sequential=hvs, random=hvr, entry_capacity=x, regime="all-entries-fit"
        )

    if x >= needed:
        hvs = d2_read + needed * cj1 * alpha + bt1
        if outer_interference:
            extra = _blocked_outer_random_reads(d2, (x - needed) * stats1.J, n2)
        else:
            extra = 0.0
        return HVNLCost(
            sequential=hvs,
            random=hvs + extra * (alpha - 1),
            entry_capacity=x,
            regime="needed-entries-fit",
        )

    # Thrashing: the buffer fills partway through the outer scan.
    k2, t2 = stats2.K, stats2.T
    s, x1 = _fill_point(x, q, k2, t2)
    y = max(0.0, q * distinct_terms_in_documents(s + x1, k2, t2) - x)
    remaining_docs = max(0.0, n2 - s - x1 + 1)
    # The first phase reads at most X entries, and never more than the
    # distinct needed terms of the whole outer side.
    first_phase_entries = min(
        float(x), q * distinct_terms_in_documents(n2, k2, t2)
    )
    hvs = (
        d2_read
        + first_phase_entries * cj1 * alpha
        + bt1
        + remaining_docs * y * cj1 * alpha
    )
    # Thrashing can never beat having every needed entry resident: each
    # of the ``needed`` entries is fetched at least once, so the
    # needed-entries-fit formula is a floor.  Without it the two-phase
    # accounting charges X + (refetches) entries, which dips fractionally
    # below ``needed`` just under the regime boundary and makes a larger
    # buffer look *worse* (non-monotone in B).  The clamp makes the
    # thrashing -> needed-entries-fit transition continuous.
    hvs = max(hvs, d2_read + needed * cj1 * alpha + bt1)
    if outer_interference:
        extra = min(d2, float(n2))
    else:
        extra = 0.0
    return HVNLCost(
        sequential=hvs,
        random=hvs + extra * (alpha - 1),
        entry_capacity=x,
        regime="thrashing",
        fill_document=float(s),
        fill_fraction=x1,
        fetches_per_document=y,
    )


def _fill_point(x: int, q: float, k2: float, t2: float) -> tuple[int, float]:
    """The paper's ``s`` and ``X1``.

    ``s`` is the smallest document count with ``q * f(s) > X`` (the buffer
    fills while processing document ``s``); ``X1`` is the fraction of
    document ``s``'s fresh entries that still fit.
    """
    if q <= 0 or t2 <= 0 or k2 <= 0:
        return 1, 0.0
    limit = q * t2
    if x >= limit:  # defensive: the caller only reaches here when X < q*T2
        return 1, 0.0
    ratio = max(0.0, 1.0 - k2 / t2)
    if ratio <= 0.0:
        s = 1
    else:
        # q * T2 * (1 - ratio**m) > X  <=>  ratio**m < 1 - X/(q*T2)
        target = 1.0 - x / limit
        s = max(1, math.floor(math.log(target) / math.log(ratio)) + 1)
        # Float fix-up: enforce q*f(s) > X >= q*f(s-1).
        while q * distinct_terms_in_documents(s, k2, t2) <= x:
            s += 1
        while s > 1 and q * distinct_terms_in_documents(s - 1, k2, t2) > x:
            s -= 1
    f_prev = distinct_terms_in_documents(s - 1, k2, t2)
    f_here = distinct_terms_in_documents(s, k2, t2)
    growth = q * (f_here - f_prev)
    if growth <= 0:
        return s, 0.0
    x1 = (x - q * f_prev) / growth
    return s, min(max(x1, 0.0), 1.0)
