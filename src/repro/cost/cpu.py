"""CPU cost models (the paper's future-work item 2, first half).

Section 3 restricts the analysis to I/O "as if we have a centralized
environment where I/O cost dominates CPU cost".  This module supplies
the missing CPU term so the trade-off can be studied: each algorithm's
work is counted in *cell operations* — one d-cell/i-cell comparison or
one multiply-accumulate — which is the unit all three algorithms share.

Per algorithm (forward order, unselected; selections substitute the
participating counts):

* **HHNL** compares every document pair with a sorted-list merge:
  roughly ``K1 + K2`` cell comparisons per pair, ``N1 * N2`` pairs.
* **HVNL** walks, for each outer document, the posting lists of its
  ``K2 * q`` matched terms: the expected posting length is
  ``K1 * N1 / T1``, each posting costing one multiply-accumulate; plus
  a B+-tree probe per term (``log2 T1`` comparisons).
* **VVM** multiplies posting lists pairwise for each shared term:
  ``sum over shared terms of df1(t) * df2(t)``; with uniform postings
  that is ``p * T1 * (K1*N1/T1) * (K2*N2/T2)`` multiply-accumulates per
  pass, all passes repeating the scan *and* the merge.

The executors in :mod:`repro.core` report their measured operation
counts (``extras['cpu_ops']``) so these estimates are testable, exactly
like the I/O formulas.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cost.params import JoinSide, QueryParams, SystemParams
from repro.cost.vvm import vvm_passes
from repro.errors import InsufficientMemoryError, InvalidParameterError


@dataclass(frozen=True)
class CpuCost:
    """Estimated CPU work, split so the executors can validate it.

    ``cell_operations`` are the merge comparisons / multiply-accumulates
    the executors count in ``extras['cpu_ops']``; ``overhead_operations``
    are index-probe comparisons (B+-tree descents) the executors perform
    but do not itemise.
    """

    algorithm: str
    cell_operations: float
    overhead_operations: float = 0.0

    @property
    def total_operations(self) -> float:
        return self.cell_operations + self.overhead_operations

    def combined(self, io_cost: float, ops_per_io_unit: float) -> float:
        """Total cost with CPU folded in.

        ``ops_per_io_unit`` calibrates how many cell operations take as
        long as one sequential page read (hardware-dependent; 1e5-1e6 is
        a sensible 1996-era range).
        """
        if ops_per_io_unit <= 0:
            raise InvalidParameterError("ops_per_io_unit must be positive")
        return io_cost + self.total_operations / ops_per_io_unit


def hhnl_cpu_cost(side1: JoinSide, side2: JoinSide) -> CpuCost:
    """Merge comparisons over all document pairs."""
    s1, s2 = side1.stats, side2.stats
    pairs = side1.n_participating * side2.n_participating
    per_pair = s1.K + s2.K
    return CpuCost("HHNL", pairs * per_pair)


def hvnl_cpu_cost(side1: JoinSide, side2: JoinSide, q: float) -> CpuCost:
    """Posting-list accumulation plus B+-tree probes per outer term."""
    if not 0.0 <= q <= 1.0:
        raise InvalidParameterError(f"q must be in [0, 1], got {q}")
    s1, s2 = side1.stats, side2.stats
    n2 = side2.n_participating
    avg_posting = (s1.K * s1.N / s1.T) if s1.T else 0.0
    probes = n2 * s2.K * math.log2(s1.T) if s1.T > 1 else 0.0
    accumulates = n2 * s2.K * q * avg_posting
    return CpuCost("HVNL", accumulates, overhead_operations=probes)


def vvm_cpu_cost(
    side1: JoinSide,
    side2: JoinSide,
    system: SystemParams,
    query: QueryParams,
    p: float,
) -> CpuCost:
    """Pairwise posting products over shared terms, once per pass."""
    if not 0.0 <= p <= 1.0:
        raise InvalidParameterError(f"p must be in [0, 1], got {p}")
    s1, s2 = side1.stats, side2.stats
    if s1.T == 0 or s2.T == 0:
        return CpuCost("VVM", 0.0)
    shared_terms = p * s1.T
    posting1 = s1.K * s1.N / s1.T
    posting2 = s2.K * side2.n_participating / s2.T
    per_pass = shared_terms * posting1 * posting2
    try:
        passes, _, _ = vvm_passes(side1, side2, system, query)
    except InsufficientMemoryError:
        return CpuCost("VVM", float("inf"))
    return CpuCost("VVM", per_pass * passes)


def cpu_report(
    side1: JoinSide,
    side2: JoinSide,
    system: SystemParams,
    query: QueryParams,
    p: float,
    q: float,
) -> dict[str, CpuCost]:
    """All three CPU estimates keyed by algorithm name."""
    return {
        "HHNL": hhnl_cpu_cost(side1, side2),
        "HVNL": hvnl_cpu_cost(side1, side2, q),
        "VVM": vvm_cpu_cost(side1, side2, system, query, p),
    }
