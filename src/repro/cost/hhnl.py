"""HHNL cost model (paper Section 5.1).

With C2 as the outer collection and a buffer of ``B`` pages, the number
of outer documents held at once is::

    X = (B - ceil(S1)) / (S2 + 4*lambda/P)

(one inner document must stay resident, and each buffered outer document
carries its top-``lambda`` similarity list, 4 bytes per value).  The
inner collection is scanned once per outer chunk::

    hhs = D2 + ceil(N2 / X) * D1                                  (HHS1)

The worst case adds interference: each resumption of an interrupted scan
costs a seek, so per outer chunk there is one random read for the chunk
itself plus ``min(D1, N1)`` random reads inside the inner scan::

    hhr = hhs + ceil(N2/X) * (1 + min(D1, N1)) * (alpha - 1)       N2 >= X
    hhr = hhs + ceil(D1 / ((X - N2) * S2)) * (alpha - 1)           N2 <  X

(the second case: all of C2 fits, so the leftover buffer reads C1 in
blocks and only each block start can seek).

Selections (Group 3) replace the sequential ``D`` terms with random
fetches of the surviving documents — see
:meth:`repro.cost.params.JoinSide.document_read_cost`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.constants import SIMILARITY_VALUE_BYTES
from repro.errors import InsufficientMemoryError
from repro.cost.params import JoinSide, QueryParams, SystemParams


@dataclass(frozen=True)
class HHNLCost:
    """Both cost variants plus the intermediate quantities, for reporting."""

    sequential: float
    random: float
    outer_chunk_docs: int
    inner_scans: int
    order: str = "forward"

    @property
    def x(self) -> int:
        """The paper's ``X`` — outer documents buffered at once."""
        return self.outer_chunk_docs


def hhnl_memory_capacity(
    side1: JoinSide, side2: JoinSide, system: SystemParams, query: QueryParams
) -> int:
    """``X``: outer (C2) documents the buffer can hold at once.

    Raises :class:`InsufficientMemoryError` when not even one outer
    document fits next to one inner document.
    """
    s1, s2 = side1.stats.S, side2.stats.S
    reserved = math.ceil(s1) if s1 > 0 else 0
    per_doc = s2 + SIMILARITY_VALUE_BYTES * query.lam / system.page_bytes
    available = system.buffer_pages - reserved
    if per_doc <= 0:  # degenerate: empty outer documents cost nothing
        return side2.n_participating or 1
    x = int(available / per_doc)
    if x < 1:
        raise InsufficientMemoryError(
            f"HHNL needs at least ceil(S1)={reserved} + {per_doc:.4f} pages, "
            f"buffer is {system.buffer_pages}"
        )
    return x


def hhnl_cost(
    side1: JoinSide, side2: JoinSide, system: SystemParams, query: QueryParams
) -> HHNLCost:
    """Evaluate HHS1 and the matching worst-case formula.

    ``side1`` is the inner collection C1, ``side2`` the outer C2
    (the paper's *forward order*; swap the sides for backward order).
    """
    alpha = system.alpha
    stats1, stats2 = side1.stats, side2.stats
    n2 = side2.n_participating
    x = hhnl_memory_capacity(side1, side2, system, query)
    inner_scans = math.ceil(n2 / x) if n2 > 0 else 0

    outer_read = side2.document_read_cost(alpha)
    inner_scan_once = side1.document_read_cost(alpha)
    hhs = outer_read + inner_scans * inner_scan_once

    # Worst case: interference turns scan resumptions into seeks.  A
    # selected side already pays random reads in `document_read_cost`,
    # so the interference surcharge applies only to sequential portions.
    inner_random_starts = (
        min(stats1.D, stats1.N) if not side1.is_selected else 0.0
    )
    outer_random_starts = 0.0 if side2.is_selected else 1.0
    if inner_scans == 0:
        extra = 0.0
    elif n2 >= x:
        extra = inner_scans * (outer_random_starts + inner_random_starts) * (alpha - 1)
    else:
        # All outer documents fit; the leftover buffer reads C1 in blocks.
        block_pages = (x - n2) * stats2.S
        if block_pages > 0 and stats1.D > 0:
            blocks = math.ceil(stats1.D / block_pages)
            extra = min(blocks, min(stats1.D, stats1.N)) * (alpha - 1)
        elif stats1.D > 0:
            extra = inner_random_starts * (alpha - 1)
        else:
            extra = 0.0
    hhr = hhs + extra
    return HHNLCost(
        sequential=hhs, random=hhr, outer_chunk_docs=x, inner_scans=inner_scans
    )


def hhnl_backward_memory_capacity(
    side1: JoinSide, side2: JoinSide, system: SystemParams, query: QueryParams
) -> int:
    """``X`` for the *backward* order: C1 documents buffered at once.

    Backward order (Section 2) drives the loop by C1 while the join
    semantics stay per-C2-document, so *every* C2 document's running
    top-``lambda`` list must live in memory for the whole join —
    ``4 * lambda * N2 / P`` pages — next to one resident C2 document.
    """
    s1, s2 = side1.stats.S, side2.stats.S
    reserved = (
        (math.ceil(s2) if s2 > 0 else 0)
        + SIMILARITY_VALUE_BYTES * query.lam * side2.n_participating / system.page_bytes
    )
    available = system.buffer_pages - reserved
    if s1 <= 0:
        return side1.n_participating or 1
    x = int(available / s1)
    if x < 1:
        raise InsufficientMemoryError(
            f"backward HHNL needs {reserved:.1f} pages reserved (including "
            f"{query.lam}*N2 similarity slots) plus one C1 document; "
            f"buffer is {system.buffer_pages}"
        )
    return x


def hhnl_backward_cost(
    side1: JoinSide, side2: JoinSide, system: SystemParams, query: QueryParams
) -> HHNLCost:
    """HHNL in backward order: C1 is chunked, C2 is scanned per chunk.

    ``hhs_b = D1 + ceil(N1 / X) * D2``, the mirror of HHS1.  The paper
    defers this order to the technical report with the remark that it
    "can be more efficient if C1 is much smaller than C2"; the formula
    shows why — the repeated-scan factor moves onto the small side, at
    the price of the ``4*lambda*N2/P`` memory reservation.
    """
    alpha = system.alpha
    stats1, stats2 = side1.stats, side2.stats
    n1 = side1.n_participating
    x = hhnl_backward_memory_capacity(side1, side2, system, query)
    scans = math.ceil(n1 / x) if n1 > 0 else 0

    loop_read = side1.document_read_cost(alpha)
    scanned_once = side2.document_read_cost(alpha)
    hhs = loop_read + scans * scanned_once

    scanned_random_starts = (
        min(stats2.D, stats2.N) if not side2.is_selected else 0.0
    )
    loop_random_starts = 0.0 if side1.is_selected else 1.0
    if scans == 0:
        extra = 0.0
    elif n1 >= x:
        extra = scans * (loop_random_starts + scanned_random_starts) * (alpha - 1)
    else:
        block_pages = (x - n1) * stats1.S
        if block_pages > 0 and stats2.D > 0:
            blocks = math.ceil(stats2.D / block_pages)
            extra = min(blocks, min(stats2.D, stats2.N)) * (alpha - 1)
        elif stats2.D > 0:
            extra = scanned_random_starts * (alpha - 1)
        else:
            extra = 0.0
    return HHNLCost(
        sequential=hhs,
        random=hhs + extra,
        outer_chunk_docs=x,
        inner_scans=scans,
        order="backward",
    )
