"""The cost-model facade: all six formulas over one join, plus the winner.

:class:`CostModel` bundles the two collections' statistics, the system
and query parameters and the overlap probabilities, evaluates
``hhs/hhr``, ``hvs/hvr`` and ``vvs/vvr``, and reports which algorithm is
cheapest — the estimation half of the paper's integrated algorithm
(Section 6).  The dispatch half lives in
:class:`repro.core.integrated.IntegratedJoin`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.cost.hhnl import hhnl_backward_cost, hhnl_cost
from repro.cost.hvnl import hvnl_cost
from repro.cost.overlap import overlap_probabilities
from repro.cost.params import JoinSide, QueryParams, SystemParams
from repro.cost.vvm import vvm_cost
from repro.errors import CostModelError, InsufficientMemoryError
from repro.index.stats import CollectionStats

ALGORITHMS = ("HHNL", "HVNL", "VVM")

SCENARIOS = ("sequential", "random")


@dataclass(frozen=True)
class AlgorithmCost:
    """One algorithm's estimate under both I/O scenarios."""

    algorithm: str
    sequential: float
    random: float
    feasible: bool = True
    detail: Any = None
    error: str | None = None

    def cost(self, scenario: str) -> float:
        """The estimate under ``'sequential'`` or ``'random'``."""
        if scenario == "sequential":
            return self.sequential
        if scenario == "random":
            return self.random
        raise CostModelError(f"unknown scenario {scenario!r}; use one of {SCENARIOS}")


@dataclass(frozen=True)
class CostReport:
    """All three algorithms' estimates for one join configuration."""

    costs: dict[str, AlgorithmCost]
    p: float
    q: float
    label: str = ""

    def __getitem__(self, algorithm: str) -> AlgorithmCost:
        try:
            return self.costs[algorithm]
        except KeyError:
            raise CostModelError(
                f"unknown algorithm {algorithm!r}; use one of {ALGORITHMS}"
            ) from None

    def feasible(self) -> list[AlgorithmCost]:
        """The algorithms the configured buffer can actually run."""
        return [c for c in self.costs.values() if c.feasible]

    def winner(self, scenario: str = "sequential") -> str:
        """Cheapest feasible algorithm under the given scenario."""
        candidates = self.feasible()
        if not candidates:
            raise InsufficientMemoryError(
                "no algorithm is feasible under the configured buffer"
            )
        return min(candidates, key=lambda c: c.cost(scenario)).algorithm

    def ranking(self, scenario: str = "sequential") -> list[str]:
        """Feasible algorithms from cheapest to dearest."""
        return [
            c.algorithm
            for c in sorted(self.feasible(), key=lambda c: c.cost(scenario))
        ]

    def spread(self, scenario: str = "sequential") -> float:
        """Max/min cost ratio across feasible algorithms (summary point 1)."""
        costs = [c.cost(scenario) for c in self.feasible()]
        if not costs or min(costs) <= 0:
            return float("inf")
        return max(costs) / min(costs)

    def row(self) -> dict[str, float | str]:
        """Flat dict for table printing: label + six costs + winners."""
        out: dict[str, float | str] = {"label": self.label}
        for name, key_seq, key_rnd in (
            ("HHNL", "hhs", "hhr"),
            ("HVNL", "hvs", "hvr"),
            ("VVM", "vvs", "vvr"),
        ):
            cost = self.costs[name]
            out[key_seq] = cost.sequential if cost.feasible else float("inf")
            out[key_rnd] = cost.random if cost.feasible else float("inf")
        out["winner_seq"] = self.winner("sequential")
        out["winner_rnd"] = self.winner("random")
        return out


@dataclass
class CostModel:
    """Evaluate the paper's cost formulas for one join.

    ``side1`` is the inner collection C1, ``side2`` the outer C2 (the
    *forward order*: find the ``lambda`` most similar C1 documents for
    each C2 document).  ``p``/``q`` default to the Section 6 overlap
    model computed from the two vocabulary sizes.
    """

    side1: JoinSide
    side2: JoinSide
    system: SystemParams = field(default_factory=SystemParams)
    query: QueryParams = field(default_factory=QueryParams)
    p: float | None = None
    q: float | None = None

    def __post_init__(self) -> None:
        if isinstance(self.side1, CollectionStats):
            self.side1 = JoinSide(self.side1)
        if isinstance(self.side2, CollectionStats):
            self.side2 = JoinSide(self.side2)
        default_p, default_q = overlap_probabilities(
            self.side1.stats.T, self.side2.stats.T
        )
        if self.p is None:
            self.p = default_p
        if self.q is None:
            self.q = default_q

    # --- individual algorithms -------------------------------------------

    def hhnl(self) -> AlgorithmCost:
        """HHNL's estimate (Section 5.1)."""
        return self._evaluate(
            "HHNL", lambda: hhnl_cost(self.side1, self.side2, self.system, self.query)
        )

    def hhnl_backward(self) -> AlgorithmCost:
        """HHNL in backward order (the [11] extension, off by default)."""
        return self._evaluate(
            "HHNL-BWD",
            lambda: hhnl_backward_cost(self.side1, self.side2, self.system, self.query),
        )

    def hvnl(self) -> AlgorithmCost:
        """HVNL's estimate (Section 5.2)."""
        return self._evaluate(
            "HVNL",
            lambda: hvnl_cost(self.side1, self.side2, self.system, self.query, self.q),
        )

    def vvm(self) -> AlgorithmCost:
        """VVM's estimate (Section 5.3)."""
        return self._evaluate(
            "VVM", lambda: vvm_cost(self.side1, self.side2, self.system, self.query)
        )

    def _evaluate(self, name: str, thunk: Any) -> AlgorithmCost:
        try:
            detail = thunk()
        except InsufficientMemoryError as exc:
            return AlgorithmCost(
                algorithm=name,
                sequential=float("inf"),
                random=float("inf"),
                feasible=False,
                error=str(exc),
            )
        return AlgorithmCost(
            algorithm=name,
            sequential=detail.sequential,
            random=detail.random,
            detail=detail,
        )

    # --- the full report ------------------------------------------------

    def report(self, label: str = "", *, include_backward: bool = False) -> CostReport:
        """All estimates; ``include_backward`` adds the HHNL-BWD candidate.

        The paper's simulations consider only the forward order, so
        backward is opt-in and never changes the default report.
        """
        costs = {
            "HHNL": self.hhnl(),
            "HVNL": self.hvnl(),
            "VVM": self.vvm(),
        }
        if include_backward:
            costs["HHNL-BWD"] = self.hhnl_backward()
        return CostReport(costs=costs, p=self.p, q=self.q, label=label)

    def choose(self, scenario: str = "sequential") -> str:
        """The integrated algorithm's pick: cheapest feasible algorithm."""
        return self.report().winner(scenario)
