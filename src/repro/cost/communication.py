"""Communication cost models (future-work item 2, second half).

The paper's setting is a multidatabase: C1 and C2 live in *different
local systems*, so evaluating the join means shipping data between
sites.  Section 3 already contains the key observation — with the
standard term numbering "no actual terms need to be transferred", so
what moves over the network is exactly the packed pages this library
accounts everywhere else.

The model: three sites (site 1 holds C1 + its index, site 2 holds C2 +
its index, and the join executes at one of them or at a third
*mediator*).  Network transfer costs ``beta`` per page — expressed in
the same units as a sequential page read so it composes with the I/O
formulas.

What each algorithm must ship depends on the execution site:

* executing at site 1: HHNL/HVNL ship C2's participating documents
  (``D2`` or the selected pages); VVM ships C2's inverted file ``I2``
  once per pass (re-scans re-read locally only if the receiver spools —
  we assume it spools, so one shipment).
* executing at site 2: mirror image (HHNL ships ``D1`` per *scan* if
  not spooled; we assume spooling, one shipment of ``D1``/``I1``).
* executing at a mediator: both sides ship once.

Result shipping (the ``lambda * N2`` matched ids) is negligible and
charged as ``8 bytes * lambda * N2 / P`` pages for completeness.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.constants import SIMILARITY_VALUE_BYTES
from repro.errors import InvalidParameterError
from repro.cost.params import JoinSide, QueryParams, SystemParams


class ExecutionSite(enum.Enum):
    """Where the join runs in the multidatabase."""

    SITE1 = "site1"  # where C1 (the inner collection) lives
    SITE2 = "site2"  # where C2 (the outer collection) lives
    MEDIATOR = "mediator"  # a third site; both collections ship


@dataclass(frozen=True)
class CommunicationCost:
    """Pages shipped and the resulting cost at ``beta`` per page."""

    algorithm: str
    site: ExecutionSite
    shipped_pages: float

    def cost(self, beta: float) -> float:
        """Shipped pages priced at ``beta`` sequential-read units each."""
        if beta < 0:
            raise InvalidParameterError(f"beta must be non-negative, got {beta}")
        return self.shipped_pages * beta


def _result_pages(side2: JoinSide, query: QueryParams, page_bytes: int) -> float:
    """Shipping the join result back: two ids + similarity per match."""
    matches = query.lam * side2.n_participating
    return 2 * SIMILARITY_VALUE_BYTES * matches / page_bytes


def _participating_document_pages(side: JoinSide) -> float:
    """Pages of the participating documents (selected docs ship whole
    pages, like the random-read accounting)."""
    import math

    stats = side.stats
    if not side.is_selected:
        return stats.D
    per_doc = math.ceil(stats.S) if stats.S > 0 else 0
    return min(stats.D, side.n_participating * per_doc)


def inner_structure_pages(algorithm: str, side1: JoinSide) -> float:
    """Pages of the C1 structures one remote site needs for ``algorithm``.

    This is the single source of truth for what fragment-and-replicate
    execution ships per extra site, shared with :func:`communication_cost`
    so the replication bill is priced consistently across algorithms —
    in particular, a *selected* C1 ships only its participating
    documents' pages, exactly as the per-site communication model does.
    """
    if algorithm == "HHNL":
        return _participating_document_pages(side1)
    if algorithm == "HVNL":
        return side1.stats.I + side1.stats.Bt
    if algorithm == "VVM":
        return side1.stats.I
    raise InvalidParameterError(f"unknown algorithm {algorithm!r}")


def communication_cost(
    algorithm: str,
    side1: JoinSide,
    side2: JoinSide,
    query: QueryParams,
    system: SystemParams,
    site: ExecutionSite = ExecutionSite.SITE1,
) -> CommunicationCost:
    """Pages crossing the network for one algorithm at one site.

    Each remote input ships exactly once (the executing site spools it
    to local disk, whose re-reads the I/O formulas already price).
    """
    d1 = _participating_document_pages(side1)
    d2 = _participating_document_pages(side2)
    i1, i2 = side1.stats.I, side2.stats.I
    bt1 = side1.stats.Bt
    result = _result_pages(side2, query, system.page_bytes)

    if algorithm == "HHNL":
        needs = {"C1-docs": d1, "C2-docs": d2}
    elif algorithm == "HVNL":
        needs = {"C1-inv": i1 + bt1, "C2-docs": d2}
    elif algorithm == "VVM":
        needs = {"C1-inv": i1, "C2-inv": i2}
    else:
        raise InvalidParameterError(f"unknown algorithm {algorithm!r}")

    local_at = {
        ExecutionSite.SITE1: {"C1-docs", "C1-inv"},
        ExecutionSite.SITE2: {"C2-docs", "C2-inv"},
        ExecutionSite.MEDIATOR: set(),
    }[site]
    shipped = sum(pages for label, pages in needs.items() if label not in local_at)
    # the result returns to the global user through the mediator either way
    shipped += result
    return CommunicationCost(algorithm=algorithm, site=site, shipped_pages=shipped)


def best_site(
    algorithm: str,
    side1: JoinSide,
    side2: JoinSide,
    query: QueryParams,
    system: SystemParams,
) -> CommunicationCost:
    """The execution site minimising shipped pages for one algorithm."""
    candidates = [
        communication_cost(algorithm, side1, side2, query, system, site)
        for site in ExecutionSite
    ]
    return min(candidates, key=lambda c: c.shipped_pages)


def communication_report(
    side1: JoinSide,
    side2: JoinSide,
    query: QueryParams,
    system: SystemParams,
) -> dict[str, CommunicationCost]:
    """Cheapest-site communication cost per algorithm."""
    return {
        name: best_site(name, side1, side2, query, system)
        for name in ("HHNL", "HVNL", "VVM")
    }
