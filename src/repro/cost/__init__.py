"""Analytical I/O cost models (paper Section 5).

For each algorithm the paper derives two costs: an all-sequential
estimate (``hhs``, ``hvs``, ``vvs``) and a worst-case estimate where the
I/O device is shared with other jobs and reads become random (``hhr``,
``hvr``, ``vvr``).  This subpackage implements the six formulas exactly,
plus the Section 6 term-overlap probability model for ``p``/``q`` and the
parameter dataclasses everything shares.

Entry point: :class:`repro.cost.model.CostModel`.
"""

from repro.cost.codec import (
    PRICED_CODECS,
    estimated_codec_ratio,
    estimated_vbyte_cell_bytes,
    measured_codec_ratio,
    stats_with_codec,
    vbyte_length,
    vbyte_postings_bytes,
)
from repro.cost.communication import (
    CommunicationCost,
    ExecutionSite,
    best_site,
    communication_cost,
    communication_report,
)
from repro.cost.cpu import (
    CpuCost,
    cpu_report,
    hhnl_cpu_cost,
    hvnl_cpu_cost,
    vvm_cpu_cost,
)
from repro.cost.hhnl import (
    hhnl_backward_cost,
    hhnl_backward_memory_capacity,
    hhnl_cost,
    hhnl_memory_capacity,
)
from repro.cost.hvnl import (
    distinct_terms_in_documents,
    hvnl_cost,
    hvnl_memory_capacity,
)
from repro.cost.incremental import (
    compaction_read_pages,
    delta_rewrite_pages,
    segment_file_pages,
    space_amplification,
)
from repro.cost.model import AlgorithmCost, CostModel, CostReport
from repro.cost.overlap import overlap_probability, overlap_probabilities
from repro.cost.parallel import ParallelCost, parallel_cost, parallel_report
from repro.cost.params import JoinSide, QueryParams, SystemParams
from repro.cost.vvm import vvm_cost, vvm_passes

__all__ = [
    "AlgorithmCost",
    "CommunicationCost",
    "CostModel",
    "CostReport",
    "CpuCost",
    "PRICED_CODECS",
    "ExecutionSite",
    "JoinSide",
    "ParallelCost",
    "QueryParams",
    "SystemParams",
    "best_site",
    "communication_cost",
    "communication_report",
    "compaction_read_pages",
    "cpu_report",
    "delta_rewrite_pages",
    "distinct_terms_in_documents",
    "estimated_codec_ratio",
    "estimated_vbyte_cell_bytes",
    "hhnl_backward_cost",
    "hhnl_backward_memory_capacity",
    "hhnl_cost",
    "hhnl_cpu_cost",
    "hhnl_memory_capacity",
    "hvnl_cost",
    "hvnl_cpu_cost",
    "hvnl_memory_capacity",
    "measured_codec_ratio",
    "overlap_probabilities",
    "overlap_probability",
    "parallel_cost",
    "parallel_report",
    "segment_file_pages",
    "space_amplification",
    "stats_with_codec",
    "vbyte_length",
    "vbyte_postings_bytes",
    "vvm_cost",
    "vvm_cpu_cost",
    "vvm_passes",
]
