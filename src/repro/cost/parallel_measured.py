"""Measured parallel cost: page counters from an actual sharded run.

:mod:`repro.cost.parallel` predicts parallel behaviour analytically from
collection statistics.  This module derives the same figures of merit —
makespan, speedup, efficiency — from the **per-shard I/O counters of an
executed sharded join** (:class:`~repro.parallel.runner.ShardedJoinResult`
hands them over as plain integers, keeping this module pure: no I/O, no
simulator state).

The two models do not share a partitioning scheme — the analytic model
fragments the *outer* collection across sites while the executable HHNL
and HVNL shard the *inner* candidate pool — so :func:`cross_check`
validates the structural invariants both must satisfy (speedup bounds,
exactness at one site, efficiency ceiling) and reports the speedup
ratio rather than demanding agreement.  Tight numeric agreement is only
expected for VVM, whose executable shards are exactly the analytic
model's outer fragments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import CostModelError


@dataclass(frozen=True)
class MeasuredParallelCost:
    """Figures of merit computed from real per-shard page counters."""

    algorithm: str
    shards: int
    #: pages a sequential (single-shard) run of the same query read
    sequential_pages: int
    #: pages each shard of the partitioned run read
    shard_pages: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise CostModelError(
                f"shard count must be >= 1, got {self.shards}"
            )
        if len(self.shard_pages) != self.shards:
            raise CostModelError(
                f"{self.shards} shards but {len(self.shard_pages)} "
                "page counters"
            )
        if self.sequential_pages < 0 or any(p < 0 for p in self.shard_pages):
            raise CostModelError("page counters must be non-negative")

    @property
    def makespan_pages(self) -> int:
        """The slowest shard's pages — wall-clock under even sites."""
        return max(self.shard_pages)

    @property
    def total_pages(self) -> int:
        """Aggregate work across all shards (>= sequential: overhead)."""
        return sum(self.shard_pages)

    @property
    def overhead_pages(self) -> int:
        """Extra pages the partitioned run read beyond sequential."""
        return self.total_pages - self.sequential_pages

    @property
    def speedup(self) -> float:
        # identity before division, mirroring the analytic model: one
        # shard reads exactly the sequential pages, so this is 1.0 by
        # construction, not by a float quotient that happens to round.
        if self.makespan_pages == self.sequential_pages:
            return 1.0
        if self.makespan_pages <= 0:
            return float("inf") if self.sequential_pages > 0 else 1.0
        return self.sequential_pages / self.makespan_pages

    @property
    def efficiency(self) -> float:
        return self.speedup / self.shards


def measured_parallel_cost(
    algorithm: str,
    sequential_pages: int,
    shard_pages: Sequence[int],
) -> MeasuredParallelCost:
    """Build the measured profile from raw page counters."""
    return MeasuredParallelCost(
        algorithm=algorithm,
        shards=len(shard_pages),
        sequential_pages=sequential_pages,
        shard_pages=tuple(shard_pages),
    )


def cross_check(
    measured: MeasuredParallelCost,
    analytic_speedup: float,
    analytic_sites: int,
) -> dict[str, float | bool]:
    """Shared-invariant check between the measured and analytic models.

    Both models must put speedup in ``(0, k]`` relative to their own
    site count, cap efficiency at 1.0 plus rounding, and report exactly
    1.0 at one site/shard.  Returns the verdicts plus the speedup ratio
    (measured / analytic) for reporting; a ratio far from 1.0 is
    expected whenever the partitioning axes differ (HHNL, HVNL).
    """
    if analytic_sites < 1:
        raise CostModelError(
            f"site count must be >= 1, got {analytic_sites}"
        )
    measured_ok = 0.0 < measured.speedup <= measured.shards
    analytic_ok = 0.0 < analytic_speedup <= analytic_sites
    # Exactness *is* the invariant under test: both models promise
    # speedup 1.0 by identity (not by a quotient) at one site.
    exact_at_one = (
        measured.speedup == 1.0 if measured.shards == 1 else True  # repro: ignore[RA-FLOAT-EQ] -- exactness at one shard is the pinned contract
    ) and (analytic_speedup == 1.0 if analytic_sites == 1 else True)  # repro: ignore[RA-FLOAT-EQ] -- exactness at one site is the pinned contract
    ratio = (
        measured.speedup / analytic_speedup
        if analytic_speedup > 0
        else float("inf")
    )
    return {
        "measured_in_bounds": measured_ok,
        "analytic_in_bounds": analytic_ok,
        "exact_at_one_site": exact_at_one,
        "speedup_ratio": ratio,
        "consistent": measured_ok and analytic_ok and exact_at_one,
    }


__all__ = ["MeasuredParallelCost", "cross_check", "measured_parallel_cost"]
