"""The Section 6 term-overlap probability model.

``q`` is the probability that a term of the outer collection C2 also
appears in the inner collection C1.  The paper models it from the two
vocabulary sizes alone::

    q = 0.8 * T1 / T2    if T1 <= T2
    q = 0.8              if T2 < T1 < 5 * T2
    q = 1 - T2 / T1      if T1 >= 5 * T2

i.e. a small inner vocabulary can only cover a proportional share of the
outer one, comparable vocabularies overlap at the 0.8 plateau, and a
dominating inner vocabulary asymptotically covers everything.  ``p``
(C1's terms appearing in C2) uses the same shape with the roles swapped.
"""

from __future__ import annotations

from repro.constants import OVERLAP_BASE_PROBABILITY, OVERLAP_DOMINANCE_FACTOR
from repro.errors import CostModelError


def overlap_probability(t_inner: int, t_outer: int) -> float:
    """Probability that a term drawn from the outer vocabulary (size
    ``t_outer``) also appears in the inner vocabulary (size ``t_inner``).

    This is the paper's ``q`` when called as
    ``overlap_probability(T1, T2)`` and its ``p`` when called as
    ``overlap_probability(T2, T1)``.
    """
    if t_inner < 0 or t_outer < 0:
        raise CostModelError("vocabulary sizes must be non-negative")
    if t_outer == 0:
        return 0.0  # no terms to overlap
    if t_inner == 0:
        return 0.0
    if t_inner <= t_outer:
        return OVERLAP_BASE_PROBABILITY * t_inner / t_outer
    if t_inner < OVERLAP_DOMINANCE_FACTOR * t_outer:
        return OVERLAP_BASE_PROBABILITY
    return 1.0 - t_outer / t_inner


def overlap_probabilities(t1: int, t2: int) -> tuple[float, float]:
    """Both directions at once: ``(p, q)`` for vocabularies ``T1``, ``T2``.

    ``p`` — a C1 term appears in C2; ``q`` — a C2 term appears in C1.
    """
    return overlap_probability(t2, t1), overlap_probability(t1, t2)
