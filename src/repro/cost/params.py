"""Parameter dataclasses shared by every cost formula.

Three groups, mirroring the paper's integrated-algorithm inputs
(Section 6): collection statistics (carried by
:class:`~repro.index.stats.CollectionStats` inside a :class:`JoinSide`),
system parameters ``B``, ``P``, ``alpha`` (:class:`SystemParams`) and
query parameters ``lambda``, ``delta`` plus selection effects
(:class:`QueryParams` / :class:`JoinSide.participating`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.constants import (
    DEFAULT_ALPHA,
    DEFAULT_BUFFER_PAGES,
    DEFAULT_DELTA,
    DEFAULT_LAMBDA,
    DEFAULT_PAGE_BYTES,
)
from repro.errors import CostModelError
from repro.index.stats import CollectionStats


@dataclass(frozen=True)
class SystemParams:
    """``B`` (buffer pages), ``P`` (page bytes) and ``alpha``."""

    buffer_pages: int = DEFAULT_BUFFER_PAGES
    page_bytes: int = DEFAULT_PAGE_BYTES
    alpha: float = DEFAULT_ALPHA

    def __post_init__(self) -> None:
        if self.buffer_pages <= 0:
            raise CostModelError(f"B must be positive, got {self.buffer_pages}")
        if self.page_bytes <= 0:
            raise CostModelError(f"P must be positive, got {self.page_bytes}")
        if self.alpha < 1:
            raise CostModelError(f"alpha must be >= 1, got {self.alpha}")

    def with_buffer(self, buffer_pages: int) -> "SystemParams":
        """A copy with a different buffer size (for B sweeps)."""
        return replace(self, buffer_pages=buffer_pages)

    def with_alpha(self, alpha: float) -> "SystemParams":
        """A copy with a different cost ratio (for alpha sweeps)."""
        return replace(self, alpha=alpha)


@dataclass(frozen=True)
class QueryParams:
    """``lambda`` of SIMILAR_TO(lambda) and ``delta``, the non-zero fraction."""

    lam: int = DEFAULT_LAMBDA
    delta: float = DEFAULT_DELTA

    def __post_init__(self) -> None:
        if self.lam <= 0:
            raise CostModelError(f"lambda must be positive, got {self.lam}")
        if not 0.0 <= self.delta <= 1.0:
            raise CostModelError(f"delta must be in [0, 1], got {self.delta}")


@dataclass(frozen=True)
class JoinSide:
    """One collection's role in the join, including selection effects.

    ``participating`` is the number of documents that survive selections
    on the non-textual attributes of the same relation (Section 2's
    ``P.Title LIKE '%Engineer%'`` example); ``None`` means every
    document participates.

    A *selected* side keeps the statistics of the original collection —
    the inverted file and B+-tree do not shrink (Section 5.4), and the
    surviving documents are scattered so they must be fetched with random
    I/O (Group 3).  Contrast with an *originally small* collection
    (Group 4), which is simply a ``JoinSide`` over small stats with
    ``participating=None``.
    """

    stats: CollectionStats
    participating: int | None = None

    def __post_init__(self) -> None:
        if self.participating is not None:
            if self.participating < 0:
                raise CostModelError(
                    f"participating must be non-negative, got {self.participating}"
                )
            if self.participating > self.stats.n_documents:
                raise CostModelError(
                    f"participating ({self.participating}) exceeds collection size "
                    f"({self.stats.n_documents})"
                )

    @property
    def is_selected(self) -> bool:
        """True when a selection reduced the participating documents."""
        return (
            self.participating is not None
            and self.participating < self.stats.n_documents
        )

    @property
    def n_participating(self) -> int:
        """Documents actually joined (``N`` when unselected)."""
        if self.participating is None:
            return self.stats.n_documents
        return self.participating

    def document_read_cost(self, alpha: float) -> float:
        """Weighted cost of bringing every participating document in once.

        Unselected: one sequential scan, ``D`` units.  Selected: the
        survivors sit scattered inside the original extent, so each costs
        ``ceil(S) * alpha`` (the paper's random-read approximation) — but
        never more than scanning the whole collection, since the executor
        can always fall back to a full scan and filter.
        """
        full_scan = self.stats.D
        if not self.is_selected:
            return full_scan
        import math

        per_doc = math.ceil(self.stats.S) if self.stats.S > 0 else 0
        return min(full_scan, self.n_participating * per_doc * alpha)

    def selected(self, participating: int) -> "JoinSide":
        """A copy with a selection leaving ``participating`` documents."""
        return replace(self, participating=participating)
