"""Parallel text-join cost models (the paper's future-work item 3).

A first-order model of running each algorithm on ``k`` servers with the
outer collection C2 *document-partitioned* evenly across sites and the
inner collection's data structures replicated (the usual fragment-and-
replicate scheme for asymmetric joins).  Each site then runs the
sequential algorithm on its fragment, so per-site cost comes from the
Section 5 formulas with the outer side scaled to ``N2 / k`` — including
the vocabulary-growth correction for the fragment's distinct terms.

The model's makespan is the per-site cost (fragments are even and sites
are identical); reported speedup is sequential cost / makespan.  The
one-time cost of replicating C1 is reported separately, priced with the
:mod:`repro.cost.communication` machinery — whether to amortise it is a
workload question, not an algorithm one.

Deliberate simplifications (documented, testable): no skew, no
coordination cost, results merged for free (each outer document's
top-lambda list is complete at one site, so the merge is a
concatenation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.cost.communication import inner_structure_pages
from repro.cost.hhnl import hhnl_cost
from repro.cost.hvnl import hvnl_cost
from repro.cost.params import JoinSide, QueryParams, SystemParams
from repro.cost.vvm import vvm_cost
from repro.errors import CostModelError, InsufficientMemoryError


@dataclass(frozen=True)
class ParallelCost:
    """One algorithm's parallel execution profile."""

    algorithm: str
    sites: int
    per_site_cost: float  # = makespan under even fragments
    sequential_cost: float
    replication_pages: float  # one-time shipping of the inner structures

    @property
    def speedup(self) -> float:
        # Equal costs mean no speedup at all — exactly 1.0, by identity
        # rather than division.  This covers k=1 (the fragment *is* the
        # whole outer side, so the costs are the same float) and the
        # infeasible-on-both-sides case, where inf/inf would otherwise
        # poison the report with NaN.
        if self.per_site_cost == self.sequential_cost:
            return 1.0
        if self.per_site_cost <= 0:
            return float("inf") if self.sequential_cost > 0 else 1.0
        return self.sequential_cost / self.per_site_cost

    @property
    def efficiency(self) -> float:
        """Speedup per site (1.0 = perfectly parallel)."""
        return self.speedup / self.sites


def _fragment(side2: JoinSide, k: int) -> JoinSide:
    """The outer side as seen by one of ``k`` sites."""
    n_fragment = math.ceil(side2.n_participating / k)
    if side2.is_selected:
        # a selection's survivors are split across sites; each site keeps
        # the original (large) collection statistics with a smaller
        # participating count
        return replace(side2, participating=n_fragment)
    return JoinSide(side2.stats.with_documents(n_fragment))


def parallel_cost(
    algorithm: str,
    side1: JoinSide,
    side2: JoinSide,
    system: SystemParams,
    query: QueryParams,
    q: float,
    k: int,
    scenario: str = "sequential",
) -> ParallelCost:
    """Per-site cost of one algorithm across ``k`` sites."""
    if k < 1:
        raise CostModelError(f"site count must be >= 1, got {k}")
    fragment = _fragment(side2, k) if k > 1 else side2

    def evaluate(s2: JoinSide) -> float:
        if algorithm == "HHNL":
            detail = hhnl_cost(side1, s2, system, query)
        elif algorithm == "HVNL":
            detail = hvnl_cost(side1, s2, system, query, q)
        elif algorithm == "VVM":
            detail = vvm_cost(side1, s2, system, query)
        else:
            raise CostModelError(f"unknown algorithm {algorithm!r}")
        return detail.sequential if scenario == "sequential" else detail.random

    try:
        sequential = evaluate(side2)
    except InsufficientMemoryError:
        sequential = float("inf")
    try:
        per_site = evaluate(fragment)
    except InsufficientMemoryError:
        per_site = float("inf")

    # The one-time replication bill: what each *extra* site must receive,
    # priced by the same helper the communication model uses so all three
    # algorithms (and selected inner sides) are billed consistently —
    # HHNL ships the participating documents, HVNL the inverted file plus
    # its B+-tree, VVM the inverted file alone.  Exactly 0.0 at k=1.
    replication = inner_structure_pages(algorithm, side1) * (k - 1)

    return ParallelCost(
        algorithm=algorithm,
        sites=k,
        per_site_cost=per_site,
        sequential_cost=sequential,
        replication_pages=replication,
    )


def parallel_report(
    side1: JoinSide,
    side2: JoinSide,
    system: SystemParams,
    query: QueryParams,
    q: float,
    k: int,
) -> dict[str, ParallelCost]:
    """All three algorithms' parallel profiles at ``k`` sites."""
    return {
        name: parallel_cost(name, side1, side2, system, query, q, k)
        for name in ("HHNL", "HVNL", "VVM")
    }
