"""Pricing the workspace write path: delta rewrites and compaction.

The Section 5 formulas price *queries*; a segmented workspace
(:mod:`repro.workspace.mutate`) also pays **maintenance** I/O — every
mutation batch rewrites the small delta segment, and a compaction
streams every live segment through memory once and writes the merged
artifacts back.  This module prices that maintenance from manifest
metadata alone (the recorded per-file byte counts), in the same
whole-page currency the measured :class:`~repro.storage.iostats.IOStats`
uses, so a measured run can be cross-checked number-for-number:

* :func:`delta_rewrite_pages` — pages the next ``apply_mutations`` must
  re-read (the current delta's files, whole); equals its measured
  ``pages_read`` exactly.
* :func:`compaction_read_pages` — pages a compaction streams in (every
  segment's files, whole); equals the measured ``pages_read`` exactly.
* :func:`space_amplification` — stored bytes over live bytes, the
  figure ``repro workspace inspect`` reports: 1.0 for a freshly
  compacted workspace, growing as tombstones accumulate dead documents
  that still occupy their base segments.

Like the rest of the cost package this layer is pure arithmetic over
plain mappings — it never opens a workspace, so it prices manifests the
same whether or not the files behind them exist.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.errors import CostModelError


def _page_bytes(manifest: Mapping[str, Any]) -> int:
    page_bytes = manifest.get("page_bytes")
    if not isinstance(page_bytes, int) or page_bytes <= 0:
        raise CostModelError(
            f"manifest page_bytes must be a positive integer, got {page_bytes!r}"
        )
    return page_bytes


def _whole_pages(n_bytes: int, page_bytes: int) -> int:
    """Whole pages for page-aligned placement; the storage layer's
    ``PageGeometry.whole_pages`` in pure arithmetic (the cost package
    never imports the simulator)."""
    if n_bytes == 0:
        return 0
    return -(-n_bytes // page_bytes)


def _segments(manifest: Mapping[str, Any]) -> list[Mapping[str, Any]]:
    """The manifest's segment records; a pre-v3 manifest is one segment.

    Mirrors :func:`repro.workspace.manifest.manifest_segments` without
    importing the workspace layer: the synthetic record carries just the
    fields this module prices (files, kind, collections, tombstones).
    """
    if "segments" in manifest:
        return list(manifest["segments"])
    vocabulary = manifest.get("vocabulary")
    files = {
        name: entry
        for name, entry in manifest.get("files", {}).items()
        if name != vocabulary
    }
    return [
        {
            "id": "seg-000000",
            "kind": "base",
            "collections": manifest.get("collections", {}),
            "tombstones": {},
            "files": files,
        }
    ]


def segment_file_pages(segment: Mapping[str, Any], page_bytes: int) -> int:
    """Whole pages occupied by one segment's checksummed files."""
    return sum(
        _whole_pages(entry["bytes"], page_bytes)
        for entry in segment.get("files", {}).values()
    )


def delta_rewrite_pages(manifest: Mapping[str, Any]) -> int:
    """Pages the next mutation batch re-reads: the current delta, whole.

    ``apply_mutations`` never touches base segments — it folds the old
    delta's documents with the batch and writes a fresh delta — so its
    read cost is exactly the old delta's file pages, and zero when the
    workspace has no delta (a build-once workspace, or one just frozen
    or compacted).  Cross-checks the measured
    :attr:`~repro.workspace.mutate.MutationStats.pages_read`.
    """
    segments = _segments(manifest)
    last = segments[-1]
    if last.get("kind") != "delta":
        return 0
    return segment_file_pages(last, _page_bytes(manifest))


def compaction_read_pages(manifest: Mapping[str, Any]) -> int:
    """Pages a compaction streams in: every segment's files, whole.

    The merge visits every stored document (live ones to re-emit, dead
    ones to skip past — they still occupy their pages) and every
    posting run, so the read side is the sum of all segment file pages.
    Cross-checks the measured ``pages_read`` of
    :func:`~repro.workspace.mutate.compact`.
    """
    page_bytes = _page_bytes(manifest)
    return sum(
        segment_file_pages(segment, page_bytes)
        for segment in _segments(manifest)
    )


def _dead_by_segment(
    segments: list[Mapping[str, Any]],
) -> dict[tuple[str, str], int]:
    """``{(role, segment_id): tombstoned document count}``."""
    dead: dict[tuple[str, str], int] = {}
    for segment in segments:
        for role, marks in segment.get("tombstones", {}).items():
            for target, _local in marks:
                key = (role, target)
                dead[key] = dead.get(key, 0) + 1
    return dead


def space_amplification(manifest: Mapping[str, Any]) -> float:
    """Stored bytes over live bytes across the workspace's segments.

    Each segment's bytes are attributed to its documents uniformly per
    role, so a segment with half its documents tombstoned contributes
    half its bytes to the live estimate; the ratio is 1.0 when nothing
    is dead and grows as tombstones pile up — the signal that a
    compaction would pay for itself.  Segments whose documents are all
    dead still occupy their full stored bytes, which is the point.
    """
    segments = _segments(manifest)
    dead = _dead_by_segment(segments)
    stored = 0
    live = 0.0
    for segment in segments:
        seg_bytes = sum(entry["bytes"] for entry in segment.get("files", {}).values())
        stored += seg_bytes
        collections = segment.get("collections", {})
        total_docs = sum(entry["n_documents"] for entry in collections.values())
        if total_docs == 0:
            continue
        dead_docs = sum(
            dead.get((role, segment["id"]), 0) for role in collections
        )
        live += seg_bytes * (total_docs - dead_docs) / total_docs
    if stored == 0:
        return 1.0
    if live <= 0:
        raise CostModelError(
            "workspace stores bytes but no live documents; the manifest is "
            "inconsistent (a valid workspace keeps at least one live document)"
        )
    return stored / live


__all__ = [
    "compaction_read_pages",
    "delta_rewrite_pages",
    "segment_file_pages",
    "space_amplification",
]
