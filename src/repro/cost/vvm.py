"""VVM cost model (paper Sections 4.3 and 5.3).

One merge scan of both inverted files computes every similarity, provided
the accumulators fit.  Storing only non-zero intermediate similarities
needs::

    SM = 4 * delta * N1 * N2 / P      pages

while the memory left for them, after one resident entry per file, is::

    M = B - ceil(J1) - ceil(J2)

With ``SM > M`` the outer collection is split into ``ceil(SM / M)``
sub-collections, each requiring one full re-scan::

    vvs = (I1 + I2) * ceil(SM / M)                                  (VVS)
    vvr = (min(I1, T1) + min(I2, T2)) * alpha * ceil(SM / M)

The paper notes selections do *not* shrink inverted files, so ``I1``,
``I2`` stay those of the original collections; only the accumulator count
``N1 * N2`` uses the participating documents.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.constants import SIMILARITY_VALUE_BYTES
from repro.errors import InsufficientMemoryError
from repro.cost.params import JoinSide, QueryParams, SystemParams


@dataclass(frozen=True)
class VVMCost:
    """Both cost variants plus the pass count."""

    sequential: float
    random: float
    passes: int
    accumulator_pages: float  # the paper's SM
    memory_pages: float  # the paper's M


def vvm_passes(
    side1: JoinSide, side2: JoinSide, system: SystemParams, query: QueryParams
) -> tuple[int, float, float]:
    """``(ceil(SM/M), SM, M)`` — the partitioning factor and its inputs.

    Raises :class:`InsufficientMemoryError` when the buffer cannot even
    hold one inverted entry of each file plus a single accumulator page.
    """
    stats1, stats2 = side1.stats, side2.stats
    sm = (
        SIMILARITY_VALUE_BYTES
        * query.delta
        * side1.n_participating
        * side2.n_participating
        / system.page_bytes
    )
    resident_entry_pages = (
        (math.ceil(stats1.J) if stats1.J > 0 else 0)
        + (math.ceil(stats2.J) if stats2.J > 0 else 0)
    )
    m = system.buffer_pages - resident_entry_pages
    if m <= 0:
        raise InsufficientMemoryError(
            f"VVM needs ceil(J1)+ceil(J2)={resident_entry_pages} pages for resident "
            f"entries; buffer is {system.buffer_pages}"
        )
    passes = max(1, math.ceil(sm / m))
    return passes, sm, m


def vvm_cost(
    side1: JoinSide, side2: JoinSide, system: SystemParams, query: QueryParams
) -> VVMCost:
    """Evaluate VVS and its worst-case companion."""
    stats1, stats2 = side1.stats, side2.stats
    passes, sm, m = vvm_passes(side1, side2, system, query)
    scan_both = stats1.I + stats2.I
    vvs = scan_both * passes
    random_reads = min(stats1.I, float(stats1.T)) + min(stats2.I, float(stats2.T))
    # The paper's vvr as printed can dip below vvs when J > 1 and alpha
    # is small (min(I, T) = T counts seeks, not transferred pages); a
    # worst case cannot beat the best case, so clamp.  Every TREC
    # profile has J < 1, where the formulas agree untouched.
    vvr = max(random_reads * system.alpha * passes, vvs)
    return VVMCost(
        sequential=vvs,
        random=vvr,
        passes=passes,
        accumulator_pages=sm,
        memory_pages=m,
    )
