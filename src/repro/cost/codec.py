"""Codec-aware cost inputs: pricing joins over compressed inverted extents.

Every Section 5 formula reads the inverted file through the ``J`` and
``I`` figures of :class:`~repro.index.stats.CollectionStats`.  A
postings codec (:mod:`repro.index.codecs`) changes the physical bytes
behind those figures without touching the logical postings, so the
analytic model prices a compressed index by shrinking ``J`` and ``I``
by the codec's ratio (``CollectionStats.with_compressed_inverted``)
and leaving ``N``/``K``/``T``/``D``/``Bt`` alone.

This module supplies the ratio two ways:

* :func:`measured_codec_ratio` — exact, from a concrete inverted file:
  :func:`vbyte_length` reproduces the encoder's byte counts
  arithmetically (d-gaps, 7 payload bits per byte), so the ratio
  equals what :func:`repro.index.compression.compress_postings` would
  store — without this pure layer importing the codec machinery.
* :func:`estimated_codec_ratio` — analytic, from ``N``/``K``/``T``
  alone: the expected vbyte cell size for the collection's average
  d-gap.  Used when no data exists yet — capacity planning, the
  conformance cost bands — and expected to bracket the measured ratio
  rather than match it exactly.

:func:`stats_with_codec` is the convenience entry point: statistics
adjusted for a named codec, measured when an inverted file is at hand,
estimated otherwise.
"""

from __future__ import annotations

from repro.constants import I_CELL_BYTES
from repro.errors import CostModelError
from repro.index.stats import CollectionStats

#: codec names this layer knows how to price
PRICED_CODECS = ("raw", "vbyte")


def _codec_name(codec) -> str:
    """Normalise a codec name or codec-like object to a priced name."""
    name = codec if isinstance(codec, str) else getattr(codec, "name", None)
    if name not in PRICED_CODECS:
        raise CostModelError(
            f"cannot price unknown postings codec {codec!r}; "
            f"priced codecs are {PRICED_CODECS}"
        )
    return name


def vbyte_length(value: int) -> int:
    """Exact byte count of vbyte-encoding ``value``: 7 payload bits/byte."""
    if value < 0:
        raise CostModelError(f"cannot vbyte-encode negative value {value}")
    length = 1
    while value >= 128:
        value >>= 7
        length += 1
    return length


def vbyte_postings_bytes(postings) -> int:
    """Exact stored size of one posting list under the vbyte codec.

    Mirrors :func:`repro.index.compression.compress_postings` — each
    i-cell stores the d-gap ``doc_id - previous - 1`` and the weight as
    two vbyte values — purely arithmetically, so the cost layer prices
    real posting lists without touching the encoder.
    """
    total = 0
    previous = -1
    for doc_id, weight in postings:
        total += vbyte_length(doc_id - previous - 1) + vbyte_length(weight)
        previous = doc_id
    return total


def estimated_vbyte_cell_bytes(
    n_documents: int, document_frequency: float, avg_weight: float = 1.0
) -> float:
    """Expected compressed bytes per posting of one term.

    A posting list of ``df`` entries over ``N`` document numbers has an
    average d-gap of ``N / df - 1`` (the gaps partition the id space),
    so one cell costs ``vbyte(avg_gap) + vbyte(avg_weight)`` bytes.
    This is the mean-gap approximation, not the expectation over the
    gap distribution — good to a fraction of a byte on real term
    frequency mixes, which is all the cost bands need.
    """
    if document_frequency <= 0:
        return 0.0
    avg_gap = max(0.0, n_documents / document_frequency - 1.0)
    return float(vbyte_length(int(avg_gap)) + vbyte_length(int(avg_weight)))


def estimated_codec_ratio(stats: CollectionStats, codec) -> float:
    """Analytic compression ratio (uncompressed / compressed, >= 1).

    For ``raw`` the ratio is exactly 1.  For ``vbyte`` the collection's
    average term has ``df = K * N / T`` postings, and the ratio is the
    5-byte i-cell against :func:`estimated_vbyte_cell_bytes` at that
    frequency, floored at 1 — adversarial shapes (tiny collections with
    huge gaps) can estimate above 5 bytes per cell, where the codec
    simply stops being a win.
    """
    if _codec_name(codec) == "raw":
        return 1.0
    if not (stats.n_documents and stats.n_distinct_terms and stats.avg_terms_per_doc):
        return 1.0
    document_frequency = (
        stats.avg_terms_per_doc * stats.n_documents / stats.n_distinct_terms
    )
    cell_bytes = estimated_vbyte_cell_bytes(stats.n_documents, document_frequency)
    if cell_bytes <= 0:
        return 1.0
    return max(1.0, I_CELL_BYTES / cell_bytes)


def measured_codec_ratio(inverted, codec) -> float:
    """Exact compression ratio of encoding ``inverted`` with ``codec``.

    ``inverted`` is a logical :class:`~repro.index.inverted.InvertedFile`
    (or anything with ``entries`` of ``postings``); every entry's exact
    stored size is computed via :func:`vbyte_postings_bytes` and the
    byte totals compared.  Returns at least 1: a codec that inflates
    the data is priced as raw, matching the environment factory's own
    guard.
    """
    if _codec_name(codec) == "raw":
        return 1.0
    uncompressed = 0
    compressed = 0
    for entry in inverted.entries:
        postings = entry.postings
        uncompressed += I_CELL_BYTES * len(postings)
        compressed += vbyte_postings_bytes(postings)
    if compressed == 0 or uncompressed <= compressed:
        return 1.0
    return uncompressed / compressed


def stats_with_codec(
    stats: CollectionStats,
    codec,
    inverted=None,
    name: str | None = None,
) -> CollectionStats:
    """Statistics adjusted for a postings codec.

    With an ``inverted`` file the ratio is measured exactly; without
    one it is the analytic estimate.  A ratio of 1 (raw codec, or a
    codec that does not win on this data) returns ``stats`` unchanged,
    so the raw pipeline's figures are untouched byte for byte.
    """
    if inverted is not None:
        ratio = measured_codec_ratio(inverted, codec)
    else:
        ratio = estimated_codec_ratio(stats, codec)
    if ratio <= 1.0:
        return stats
    return stats.with_compressed_inverted(ratio, name=name)


__all__ = [
    "PRICED_CODECS",
    "estimated_codec_ratio",
    "estimated_vbyte_cell_bytes",
    "measured_codec_ratio",
    "stats_with_codec",
    "vbyte_length",
    "vbyte_postings_bytes",
]
