"""Similarity accumulators.

HVNL accumulates similarities between the current outer document and
every inner document (``U_i + w * w_i``, Section 4.2); VVM accumulates
them for *all pairs at once* (``U_pq + u_p * v_q``, Section 4.3).  Both
keep only non-zero values — that is what makes the paper's ``delta``
(fraction of non-zero similarities) the memory-sizing parameter.

The accumulators track their peak cell count so executable runs can
report the *measured* delta next to the modelled one.
"""

from __future__ import annotations

from typing import Iterator

from repro.constants import SIMILARITY_VALUE_BYTES


class SparseAccumulator:
    """Per-outer-document accumulator: ``{inner doc id: similarity}``."""

    __slots__ = ("_cells", "peak_cells")

    def __init__(self) -> None:
        self._cells: dict[int, float] = {}
        self.peak_cells = 0

    def add(self, doc_id: int, contribution: float) -> None:
        """``U_i += contribution`` (creates the cell on first touch)."""
        cells = self._cells
        cells[doc_id] = cells.get(doc_id, 0.0) + contribution
        if len(cells) > self.peak_cells:
            self.peak_cells = len(cells)

    def items(self) -> Iterator[tuple[int, float]]:
        return iter(self._cells.items())

    def clear(self) -> None:
        """Reset for the next outer document (peak is preserved)."""
        self._cells.clear()

    @property
    def n_cells(self) -> int:
        return len(self._cells)

    @property
    def peak_bytes(self) -> int:
        return self.peak_cells * SIMILARITY_VALUE_BYTES

    def __len__(self) -> int:
        return len(self._cells)


class PairAccumulator:
    """VVM's all-pairs accumulator: ``{outer doc: {inner doc: similarity}}``.

    Grouped by outer document so the end-of-pass top-``lambda``
    extraction walks each outer document's row once.
    """

    __slots__ = ("_rows", "_n_cells", "peak_cells")

    def __init__(self) -> None:
        self._rows: dict[int, dict[int, float]] = {}
        self._n_cells = 0
        self.peak_cells = 0

    def add(self, outer_doc: int, inner_doc: int, contribution: float) -> None:
        """``U_pq += contribution``."""
        row = self._rows.get(outer_doc)
        if row is None:
            row = {}
            self._rows[outer_doc] = row
        if inner_doc not in row:
            self._n_cells += 1
            if self._n_cells > self.peak_cells:
                self.peak_cells = self._n_cells
            row[inner_doc] = contribution
        else:
            row[inner_doc] += contribution

    def row(self, outer_doc: int) -> dict[int, float]:
        """All accumulated similarities for one outer document."""
        return self._rows.get(outer_doc, {})

    def rows(self) -> Iterator[tuple[int, dict[int, float]]]:
        return iter(self._rows.items())

    def clear(self) -> None:
        """Reset between VVM passes (peak is preserved)."""
        self._rows.clear()
        self._n_cells = 0

    @property
    def n_cells(self) -> int:
        return self._n_cells

    @property
    def peak_bytes(self) -> int:
        return self.peak_cells * SIMILARITY_VALUE_BYTES

    def measured_delta(self, n_inner: int, n_outer: int) -> float:
        """Observed fraction of non-zero similarities (the paper's delta)."""
        total = n_inner * n_outer
        if total == 0:
            return 0.0
        return self.peak_cells / total
