"""The paper's contribution: three text-join algorithms plus the optimizer.

* :func:`repro.core.hhnl.run_hhnl` — Horizontal-Horizontal Nested Loop,
* :func:`repro.core.hvnl.run_hvnl` — Horizontal-Vertical Nested Loop,
* :func:`repro.core.vvm.run_vvm` — Vertical-Vertical Merge,
* :class:`repro.core.integrated.IntegratedJoin` — pick the cheapest.

All executors share :class:`repro.core.join.JoinEnvironment` (collections
laid out on a simulated disk) and return a
:class:`repro.core.join.TextJoinResult` whose matches are identical
across algorithms — only the measured I/O differs.

Each executor also exists in streaming form (``iter_hhnl`` /
``iter_hvnl`` / ``iter_vvm``): a generator of
:class:`~repro.exec.stream.MatchBlock`\\ s driven through an
:class:`~repro.exec.context.ExecutionContext`; the ``run_*`` functions
are their :func:`~repro.exec.stream.collect` wrappers.
"""

from repro.core.accumulator import PairAccumulator, SparseAccumulator
from repro.core.environment import EnvironmentFactory, EnvironmentSpec
from repro.core.hhnl import iter_hhnl, iter_hhnl_backward, run_hhnl, run_hhnl_backward
from repro.core.hvnl import iter_hvnl, run_hvnl
from repro.core.integrated import IntegratedDecision, IntegratedJoin
from repro.core.join import (
    JoinEnvironment,
    TextJoinResult,
    TextJoinSpec,
    resolve_outer_ids,
)
from repro.core.optimizer import (
    OptimizedPlan,
    OptimizerConfig,
    PlanCost,
    execute_plan,
    optimize,
)
from repro.core.topk import TopK
from repro.core.vvm import iter_vvm, run_vvm

__all__ = [
    "EnvironmentFactory",
    "EnvironmentSpec",
    "IntegratedDecision",
    "IntegratedJoin",
    "JoinEnvironment",
    "OptimizedPlan",
    "OptimizerConfig",
    "PairAccumulator",
    "PlanCost",
    "SparseAccumulator",
    "TextJoinResult",
    "TextJoinSpec",
    "TopK",
    "execute_plan",
    "iter_hhnl",
    "iter_hhnl_backward",
    "iter_hvnl",
    "iter_vvm",
    "optimize",
    "resolve_outer_ids",
    "run_hhnl",
    "run_hhnl_backward",
    "run_hvnl",
    "run_vvm",
]
