"""Shard-aware entry points over the streaming join operators.

Partitioned execution (:mod:`repro.parallel`) splits one side of the
join into contiguous document shards and runs the unmodified ``iter_*``
operators once per shard.  The partitioning axis follows each
algorithm's structure:

* **HHNL / HHNL-BWD / HVNL** shard the *inner* collection C1: every
  shard sees the full outer side and a disjoint slice of the candidate
  pool (via the operators' existing ``inner_ids`` selection), so each
  shard produces a partial top-``lambda`` tracker per outer document
  and the global result is an exact :meth:`~repro.core.topk.TopK.merge`.
* **VVM** shards the *outer* accumulator: the paper's ``ceil(SM/M)``
  merge passes each cover a disjoint chunk of outer documents and are
  embarrassingly parallel, so a shard is simply a chunk of ``outer_ids``
  and every outer document's complete top-``lambda`` list is produced by
  exactly one shard.

Exactness rests on a float-determinism argument: restricting one side's
document ids never changes the *sequence* of additions behind any
retained ``(outer, inner)`` pair's similarity (HHNL computes one dot
product per pair; HVNL and VVM accumulate in term order, which filtering
other documents does not disturb), so per-pair similarities are
bit-identical across shard counts and the merged results are too.

A single-shard request is a **pass-through**: the original selections
(including ``None`` for "all documents") reach the operator untouched,
so ``shards=1`` is byte-identical to a direct sequential run — matches,
I/O counters and extras alike.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.core.hhnl import iter_hhnl, iter_hhnl_backward
from repro.core.hvnl import iter_hvnl
from repro.core.join import JoinEnvironment, TextJoinResult, TextJoinSpec
from repro.core.vvm import iter_vvm
from repro.cost.params import SystemParams
from repro.errors import ParallelExecutionError
from repro.exec.context import ExecutionContext
from repro.exec.stream import MatchBlock, collect

#: every algorithm the sharded entry points dispatch to, with its axis
SHARD_AXES = {
    "HHNL": "inner",
    "HHNL-BWD": "inner",
    "HVNL": "inner",
    "VVM": "outer",
}


@dataclass(frozen=True)
class ShardSpec:
    """One shard of a partitioned join.

    ``doc_ids is None`` marks the single-shard pass-through: the
    operator receives the caller's original selections unchanged.
    """

    index: int
    count: int
    axis: str
    doc_ids: tuple[int, ...] | None

    def __post_init__(self) -> None:
        if self.axis not in ("inner", "outer"):
            raise ParallelExecutionError(
                f"shard axis must be 'inner' or 'outer', got {self.axis!r}"
            )
        if not 0 <= self.index < self.count:
            raise ParallelExecutionError(
                f"shard index {self.index} outside 0..{self.count - 1}"
            )
        if self.doc_ids is not None and len(self.doc_ids) == 0:
            raise ParallelExecutionError(
                f"shard {self.index} has an empty document slice"
            )


def partition_ids(ids: Sequence[int], count: int) -> list[tuple[int, ...]]:
    """Split sorted ids into at most ``count`` contiguous near-even runs.

    The first ``len(ids) % count`` runs get one extra document; empty
    runs are dropped, so fewer shards than requested come back when
    there are fewer documents than shards.  Deterministic: the same ids
    and count always produce the same partition.
    """
    if count <= 0:
        raise ParallelExecutionError(
            f"shard count must be positive, got {count}"
        )
    ordered = sorted(ids)
    if not ordered:
        return []
    base, extra = divmod(len(ordered), count)
    runs: list[tuple[int, ...]] = []
    start = 0
    for index in range(count):
        size = base + (1 if index < extra else 0)
        if size == 0:
            break
        runs.append(tuple(ordered[start : start + size]))
        start += size
    return runs


def shard_specs(
    algorithm: str,
    dataset: object,
    count: int,
    *,
    outer_ids: Sequence[int] | None = None,
    inner_ids: Sequence[int] | None = None,
) -> list[ShardSpec]:
    """The shard plan for one algorithm over one dataset.

    ``dataset`` is anything carrying ``collection1``/``collection2`` —
    a :class:`~repro.core.join.JoinEnvironment` or an
    :class:`~repro.core.environment.EnvironmentFactory` (the parallel
    runner plans off the factory without assembling an environment).
    The sharded axis's candidate pool is the explicit selection when one
    was given, the whole collection otherwise.  ``count=1`` yields the
    pass-through shard.
    """
    axis = SHARD_AXES.get(algorithm)
    if axis is None:
        raise ParallelExecutionError(
            f"unknown algorithm {algorithm!r}; "
            f"sharded execution supports {sorted(SHARD_AXES)}"
        )
    if count == 1:
        return [ShardSpec(index=0, count=1, axis=axis, doc_ids=None)]
    if axis == "inner":
        pool = (
            inner_ids
            if inner_ids is not None
            else range(dataset.collection1.n_documents)
        )
    else:
        pool = (
            outer_ids
            if outer_ids is not None
            else range(dataset.collection2.n_documents)
        )
    runs = partition_ids(pool, count)
    return [
        ShardSpec(index=index, count=len(runs), axis=axis, doc_ids=run)
        for index, run in enumerate(runs)
    ]


def iter_shard(
    algorithm: str,
    environment: JoinEnvironment,
    spec: TextJoinSpec,
    system: SystemParams,
    shard: ShardSpec,
    *,
    outer_ids: Sequence[int] | None = None,
    inner_ids: Sequence[int] | None = None,
    interference: bool = False,
    delta: float = 0.1,
    context: ExecutionContext | None = None,
) -> Iterator[MatchBlock]:
    """Stream one shard of a partitioned join.

    The shard's document slice replaces the selection on its axis; the
    other axis keeps the caller's selection.  ``HHNL-BWD`` with an inner
    slice falls back to the forward executor, mirroring
    :meth:`repro.core.integrated.IntegratedJoin.stream` — matches are
    identical by construction, only the I/O pattern differs.
    """
    if shard.axis != SHARD_AXES.get(algorithm):
        raise ParallelExecutionError(
            f"shard axis {shard.axis!r} does not match algorithm "
            f"{algorithm!r}"
        )
    shard_outer = outer_ids
    shard_inner = inner_ids
    if shard.doc_ids is not None:
        if shard.axis == "inner":
            shard_inner = shard.doc_ids
        else:
            shard_outer = shard.doc_ids
    if algorithm == "HHNL" or (
        algorithm == "HHNL-BWD" and shard_inner is not None
    ):
        return iter_hhnl(
            environment, spec, system,
            outer_ids=shard_outer, inner_ids=shard_inner,
            interference=interference, context=context,
        )
    if algorithm == "HHNL-BWD":
        return iter_hhnl_backward(
            environment, spec, system,
            outer_ids=shard_outer, interference=interference,
            context=context,
        )
    if algorithm == "HVNL":
        return iter_hvnl(
            environment, spec, system,
            outer_ids=shard_outer, inner_ids=shard_inner,
            interference=interference, delta=delta, context=context,
        )
    return iter_vvm(
        environment, spec, system,
        outer_ids=shard_outer, inner_ids=shard_inner,
        interference=interference, delta=delta, context=context,
    )


def run_shard(
    algorithm: str,
    environment: JoinEnvironment,
    spec: TextJoinSpec,
    system: SystemParams,
    shard: ShardSpec,
    *,
    outer_ids: Sequence[int] | None = None,
    inner_ids: Sequence[int] | None = None,
    interference: bool = False,
    delta: float = 0.1,
    context: ExecutionContext | None = None,
) -> TextJoinResult:
    """Execute one shard to completion (wrapper over :func:`iter_shard`)."""
    return collect(
        iter_shard(
            algorithm, environment, spec, system, shard,
            outer_ids=outer_ids, inner_ids=inner_ids,
            interference=interference, delta=delta, context=context,
        )
    )


__all__ = [
    "SHARD_AXES",
    "ShardSpec",
    "iter_shard",
    "partition_ids",
    "run_shard",
    "shard_specs",
]
