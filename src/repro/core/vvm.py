"""VVM executor (paper Sections 4.3 and 5.3).

One synchronized scan of both inverted files, merged on term number (the
files are stored in increasing term order, so this is the merge phase of
sort-merge).  Whenever both files carry an entry for the same term, every
posting pair contributes ``u_p * v_q`` to the similarity accumulator of
documents ``(r_p, s_q)``.

When the accumulator would not fit (``SM > M``), the outer collection is
split into ``ceil(SM / M)`` sub-collections and the whole merge scan is
repeated per sub-collection — the Section 4.3 extension, and the source
of VVM's multiplicative cost blow-up on document-rich collections.

Streaming: :func:`iter_vvm` yields the
:class:`~repro.exec.stream.MatchBlock`\\ s of one accumulator partition as
soon as that partition's merge pass completes — nothing inside a
partition is final before its pass ends, but nothing needs to wait for
the *other* partitions either.  A single-pass run therefore materializes
everything before the first block; a multi-pass run streams per pass.
:func:`run_vvm` is the materializing :func:`~repro.exec.stream.collect`
wrapper.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.core.join import (
    JoinEnvironment,
    TextJoinResult,
    TextJoinSpec,
    resolve_inner_ids,
    resolve_outer_ids,
)
from repro.core.topk import TopK
from repro.cost.params import QueryParams, SystemParams
from repro.cost.vvm import vvm_passes
from repro.errors import JoinError
from repro.exec.context import ExecutionContext, ensure_context
from repro.exec.stream import MatchBlock, StreamSummary, collect


def iter_vvm(
    environment: JoinEnvironment,
    spec: TextJoinSpec,
    system: SystemParams,
    *,
    outer_ids: Sequence[int] | None = None,
    inner_ids: Sequence[int] | None = None,
    interference: bool = False,
    delta: float = 0.1,
    context: ExecutionContext | None = None,
) -> Iterator[MatchBlock]:
    """Execute VVM, streaming one batch of match blocks per merge pass.

    ``delta`` feeds the pass-count calculation exactly as in the cost
    model; the measured non-zero fraction is reported in
    ``extras['measured_delta']`` so the estimate can be checked.
    ``inner_ids`` filters C1 postings during accumulation; the inverted
    files are still scanned whole (Section 5.4: selections do not shrink
    them).
    """
    if environment.inverted1 is None or environment.inverted2 is None:
        raise JoinError("VVM needs inverted files on both collections")
    ctx = ensure_context(context)
    outer_ids = resolve_outer_ids(environment, outer_ids)
    inner_ids = resolve_inner_ids(environment, inner_ids)
    side1, side2 = environment.cost_sides(outer_ids, inner_ids)
    query = QueryParams(lam=spec.lam, delta=delta)
    passes, sm_pages, m_pages = vvm_passes(side1, side2, system, query)

    disk = environment.disk
    io_start = disk.stats.snapshot()
    inv1_extent, inv2_extent = environment.inv1_extent, environment.inv2_extent

    participating = (
        outer_ids
        if outer_ids is not None
        else list(range(environment.collection2.n_documents))
    )
    norms1 = environment.norms1() if spec.normalized else None
    norms2 = environment.norms2() if spec.normalized else None

    # Split the outer documents into `passes` near-equal sub-collections.
    # Rounding can leave fewer (never more) chunks than the modelled pass
    # count; each chunk costs one merge scan, so the chunk count is the
    # number that matters.
    chunk_size = -(-len(participating) // passes) if participating else 1
    chunks = [
        participating[start : start + chunk_size]
        for start in range(0, len(participating), chunk_size)
    ] or [[]]
    actual_passes = len(chunks)

    kernels = environment.kernels
    n_inner_docs = environment.collection1.n_documents
    n_outer_docs = environment.collection2.n_documents
    prepared_norms1 = kernels.prepare_norms(norms1, n_inner_docs)
    prepared_filter = kernels.prepare_filter(inner_ids, n_inner_docs)
    accumulator = kernels.pair_scores(n_inner_docs)
    peak_cells_overall = 0
    cpu_ops = 0  # posting-pair products, the unit of repro.cost.cpu

    with environment.execution_scope(ctx):
        for chunk in chunks:
            ctx.checkpoint()
            accumulator.clear()
            accumulator.begin_chunk(chunk)
            chunk_filter = kernels.prepare_filter(chunk, n_outer_docs)

            with ctx.phase("vvm.merge"):
                scan1 = disk.scan_records(inv1_extent, interference=interference)
                scan2 = disk.scan_records(inv2_extent, interference=interference)
                entry1 = next(scan1, None)
                entry2 = next(scan2, None)
                while entry1 is not None and entry2 is not None:
                    term1 = entry1[1].term
                    term2 = entry2[1].term
                    if term1 == term2:
                        batch1 = kernels.entry_batch(entry1[1], prepared_filter)
                        batch2 = kernels.entry_batch(entry2[1], chunk_filter)
                        # One product per surviving posting pair, exactly as
                        # the original (post-filter) loop charged them.
                        cpu_ops += len(batch2) * len(batch1)
                        accumulator.add_block(batch2, batch1)
                        entry1 = next(scan1, None)
                        entry2 = next(scan2, None)
                    elif term1 < term2:
                        entry1 = next(scan1, None)
                    else:
                        entry2 = next(scan2, None)
                # Drain the remainder of both scans: the merge reads each
                # file to its end (the cost model charges the full I1 + I2
                # per pass).
                for _ in scan1:
                    pass
                for _ in scan2:
                    pass

            # This partition's merge pass is done: its accumulator rows are
            # final, so the whole chunk can be ranked and flushed now.
            for outer_doc in chunk:
                tracker = TopK(spec.lam)
                outer_norm = norms2[outer_doc] if norms2 is not None else 0.0
                for inner_doc, similarity in accumulator.row_ranked(
                    outer_doc, spec.lam, prepared_norms1, outer_norm
                ):
                    tracker.offer(inner_doc, similarity)
                yield ctx.emit(
                    MatchBlock(outer_doc=outer_doc, matches=tuple(tracker.results()))
                )
            peak_cells_overall = max(peak_cells_overall, accumulator.peak_cells)

    n1 = environment.collection1.n_documents
    measured_delta = (
        peak_cells_overall * actual_passes / (n1 * len(participating))
        if n1 and participating
        else 0.0
    )
    return StreamSummary(
        algorithm="VVM",
        spec=spec,
        io=disk.stats.delta(io_start),
        extras={
            "passes": actual_passes,
            "modelled_passes": passes,
            "modelled_accumulator_pages": sm_pages,
            "memory_pages": m_pages,
            "peak_accumulator_cells": peak_cells_overall,
            "measured_delta": min(measured_delta, 1.0),
            "interference": interference,
            "cpu_ops": cpu_ops,
        },
    )


def run_vvm(
    environment: JoinEnvironment,
    spec: TextJoinSpec,
    system: SystemParams,
    *,
    outer_ids: Sequence[int] | None = None,
    inner_ids: Sequence[int] | None = None,
    interference: bool = False,
    delta: float = 0.1,
    context: ExecutionContext | None = None,
) -> TextJoinResult:
    """Execute VVM to completion (the materialized wrapper over
    :func:`iter_vvm`)."""
    return collect(
        iter_vvm(
            environment,
            spec,
            system,
            outer_ids=outer_ids,
            inner_ids=inner_ids,
            interference=interference,
            delta=delta,
            context=context,
        )
    )
