"""The full multidatabase plan optimizer.

The paper's integrated algorithm picks among three algorithms by I/O
cost.  A global query optimizer in the paper's multidatabase setting
(Sections 1-2) faces a larger plan space, and this module enumerates all
of it using the extension models:

* **algorithm** — HHNL, HVNL, VVM, plus HHNL in backward order;
* **execution site** — C1's system, C2's system, or the mediator
  (communication cost per :mod:`repro.cost.communication`);
* **cost components** — I/O (Section 5), network pages at ``beta`` per
  page, and optionally CPU cell operations at a calibrated rate.

:func:`optimize` scores every feasible combination and returns the plans
ranked by total cost; :class:`PlannedJoin` can then execute the winner
against a :class:`~repro.core.join.JoinEnvironment` (local execution —
the site choice only affects the cost report there, since the simulated
environment has no real network).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.hhnl import run_hhnl, run_hhnl_backward
from repro.core.hvnl import run_hvnl
from repro.core.join import JoinEnvironment, TextJoinResult, TextJoinSpec
from repro.core.vvm import run_vvm
from repro.cost.communication import ExecutionSite, communication_cost
from repro.cost.cpu import cpu_report, hhnl_cpu_cost
from repro.cost.hhnl import hhnl_backward_cost, hhnl_cost
from repro.cost.hvnl import hvnl_cost
from repro.cost.overlap import overlap_probabilities
from repro.cost.params import JoinSide, QueryParams, SystemParams
from repro.cost.vvm import vvm_cost
from repro.errors import InsufficientMemoryError, JoinError


@dataclass(frozen=True)
class PlanCost:
    """One candidate plan with its cost breakdown."""

    algorithm: str  # HHNL | HHNL-BWD | HVNL | VVM
    site: ExecutionSite
    io_cost: float
    communication_pages: float
    cpu_operations: float

    def total(self, beta: float, ops_per_io_unit: float | None) -> float:
        """This plan's combined cost under the given calibrations."""
        total = self.io_cost + self.communication_pages * beta
        if ops_per_io_unit is not None:
            total += self.cpu_operations / ops_per_io_unit
        return total


@dataclass(frozen=True)
class OptimizerConfig:
    """Knobs of the plan search.

    ``beta`` prices one shipped page in sequential-read units (0 models
    a centralised system, recovering the paper's integrated algorithm);
    ``ops_per_io_unit`` calibrates CPU speed (``None`` ignores CPU, the
    paper's Section 3 assumption); ``scenario`` selects the sequential
    or worst-case I/O variant; ``consider_backward`` admits the
    backward-order HHNL plan.
    """

    beta: float = 0.0
    ops_per_io_unit: float | None = None
    scenario: str = "sequential"
    consider_backward: bool = True

    def __post_init__(self) -> None:
        if self.beta < 0:
            raise JoinError(f"beta must be non-negative, got {self.beta}")
        if self.ops_per_io_unit is not None and self.ops_per_io_unit <= 0:
            raise JoinError("ops_per_io_unit must be positive when given")
        if self.scenario not in ("sequential", "random"):
            raise JoinError(f"unknown scenario {self.scenario!r}")


@dataclass
class OptimizedPlan:
    """The optimizer's output: ranked candidates plus the choice."""

    config: OptimizerConfig
    candidates: list[PlanCost] = field(default_factory=list)

    @property
    def best(self) -> PlanCost:
        if not self.candidates:
            raise InsufficientMemoryError("no feasible plan")
        return self.candidates[0]

    def totals(self) -> list[tuple[PlanCost, float]]:
        """Every candidate with its total cost, cheapest first."""
        return [
            (plan, plan.total(self.config.beta, self.config.ops_per_io_unit))
            for plan in self.candidates
        ]


def optimize(
    side1: JoinSide,
    side2: JoinSide,
    system: SystemParams,
    query: QueryParams,
    config: OptimizerConfig | None = None,
    *,
    p: float | None = None,
    q: float | None = None,
) -> OptimizedPlan:
    """Enumerate and rank every (algorithm, site) plan."""
    config = config or OptimizerConfig()
    if p is None or q is None:
        default_p, default_q = overlap_probabilities(side1.stats.T, side2.stats.T)
        p = default_p if p is None else p
        q = default_q if q is None else q

    io_costs: dict[str, float] = {}
    for name, thunk in (
        ("HHNL", lambda: hhnl_cost(side1, side2, system, query)),
        ("HVNL", lambda: hvnl_cost(side1, side2, system, query, q)),
        ("VVM", lambda: vvm_cost(side1, side2, system, query)),
    ):
        try:
            detail = thunk()
        except InsufficientMemoryError:
            continue
        io_costs[name] = (
            detail.sequential if config.scenario == "sequential" else detail.random
        )
    if config.consider_backward:
        try:
            detail = hhnl_backward_cost(side1, side2, system, query)
            io_costs["HHNL-BWD"] = (
                detail.sequential if config.scenario == "sequential" else detail.random
            )
        except InsufficientMemoryError:
            pass

    cpu = cpu_report(side1, side2, system, query, p, q)
    candidates: list[PlanCost] = []
    for name, io_cost in io_costs.items():
        comm_name = "HHNL" if name == "HHNL-BWD" else name
        cpu_name = "HHNL" if name == "HHNL-BWD" else name
        cpu_ops = cpu[cpu_name].total_operations
        for site in ExecutionSite:
            comm = communication_cost(comm_name, side1, side2, query, system, site)
            candidates.append(
                PlanCost(
                    algorithm=name,
                    site=site,
                    io_cost=io_cost,
                    communication_pages=comm.shipped_pages,
                    cpu_operations=cpu_ops,
                )
            )
    candidates.sort(key=lambda c: c.total(config.beta, config.ops_per_io_unit))
    return OptimizedPlan(config=config, candidates=candidates)


_RUNNERS = {
    "HHNL": run_hhnl,
    "HHNL-BWD": run_hhnl_backward,
    "HVNL": run_hvnl,
    "VVM": run_vvm,
}


def execute_plan(
    plan: PlanCost,
    environment: JoinEnvironment,
    spec: TextJoinSpec,
    system: SystemParams,
    *,
    outer_ids: Sequence[int] | None = None,
    interference: bool = False,
) -> TextJoinResult:
    """Run a plan's algorithm against a local environment.

    The site choice has no executable counterpart in the single-machine
    simulation; the plan rides along in ``extras['plan']`` so callers
    can report it.
    """
    runner = _RUNNERS.get(plan.algorithm)
    if runner is None:
        raise JoinError(f"unknown plan algorithm {plan.algorithm!r}")
    result = runner(
        environment, spec, system, outer_ids=outer_ids, interference=interference
    )
    result.extras["plan"] = plan
    return result
