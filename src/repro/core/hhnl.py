"""HHNL executor (paper Section 4.1).

The blocked nested loop: read the next ``X`` outer (C2) documents into
the buffer, scan the whole inner collection C1, and for every buffered
outer document maintain the ``lambda`` largest similarities seen so far.
``X`` comes from the same memory equation as the cost model
(:func:`repro.cost.hhnl.hhnl_memory_capacity`), so measured I/O is
directly comparable to ``hhs``/``hhr``.

Selections: with ``outer_ids`` the surviving outer documents are fetched
with random reads from their original storage locations (Group 3);
everything else is unchanged.  ``interference=True`` reproduces the
worst-case scenario behind ``hhr`` — each scan resumption and each chunk
read pays a seek.

Streaming: :func:`iter_hhnl` is the operator itself — a generator that
yields one :class:`~repro.exec.stream.MatchBlock` per outer document as
soon as its buffered block finishes the inner scan (the earliest point a
top-``lambda`` set is final under HHNL), and returns a
:class:`~repro.exec.stream.StreamSummary`.  :func:`run_hhnl` is the thin
:func:`~repro.exec.stream.collect` wrapper producing the byte-identical
materialized :class:`~repro.core.join.TextJoinResult`.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.core.join import (
    JoinEnvironment,
    TextJoinResult,
    TextJoinSpec,
    resolve_inner_ids,
    resolve_outer_ids,
    scan_with_block_seeks,
)
from repro.core.topk import TopK
from repro.cost.hhnl import hhnl_backward_memory_capacity, hhnl_memory_capacity
from repro.cost.params import QueryParams, SystemParams
from repro.exec.context import ExecutionContext, ensure_context
from repro.exec.stream import MatchBlock, StreamSummary, collect
from repro.text.document import Document


def iter_hhnl(
    environment: JoinEnvironment,
    spec: TextJoinSpec,
    system: SystemParams,
    *,
    outer_ids: Sequence[int] | None = None,
    inner_ids: Sequence[int] | None = None,
    interference: bool = False,
    context: ExecutionContext | None = None,
) -> Iterator[MatchBlock]:
    """Execute HHNL in forward order, streaming per-chunk match blocks.

    ``inner_ids`` restricts the candidate pool to selected C1 documents
    (Section 2 allows selections on either relation); like the outer
    side, survivors are random-fetched only while that beats scanning
    and filtering.
    """
    ctx = ensure_context(context)
    outer_ids = resolve_outer_ids(environment, outer_ids)
    inner_ids = resolve_inner_ids(environment, inner_ids)
    side1, side2 = environment.cost_sides(outer_ids, inner_ids)
    query = QueryParams(lam=spec.lam)
    x = hhnl_memory_capacity(side1, side2, system, query)

    disk = environment.disk
    io_start = disk.stats.snapshot()
    docs1, docs2 = environment.docs1, environment.docs2
    norms1 = environment.norms1() if spec.normalized else None
    norms2 = environment.norms2() if spec.normalized else None
    kernels = environment.kernels
    prepared_norms1 = kernels.prepare_norms(
        norms1, environment.collection1.n_documents
    )

    all_outer = list(range(environment.collection2.n_documents))
    participating = outer_ids if outer_ids is not None else all_outer
    selected = outer_ids is not None and len(outer_ids) < len(all_outer)
    if selected:
        # Fetch survivors at random only while that beats scanning the
        # whole collection and filtering (the model's min in
        # JoinSide.document_read_cost).
        import math

        per_doc_pages = (
            math.ceil(environment.stats2.S) if environment.stats2.S > 0 else 0
        )
        random_cost = len(participating) * per_doc_pages * system.alpha
        if random_cost >= environment.stats2.D:
            selected = False  # scan-and-filter: charge like a plain scan

    inner_selected = (
        inner_ids is not None
        and len(inner_ids) < environment.collection1.n_documents
    )
    if inner_selected:
        import math

        per_doc_pages = (
            math.ceil(environment.stats1.S) if environment.stats1.S > 0 else 0
        )
        if len(inner_ids) * per_doc_pages * system.alpha >= environment.stats1.D:
            inner_selected = False  # scan-and-filter the inner side too
    inner_filter = set(inner_ids) if inner_ids is not None else None

    inner_scans = 0
    cpu_ops = 0  # merge comparisons, the unit of repro.cost.cpu
    pages_read_through = -1  # sequential progress within the outer extent

    with environment.execution_scope(ctx):
        for chunk_start in range(0, len(participating), x):
            chunk_ids = participating[chunk_start : chunk_start + x]
            if not chunk_ids:
                continue
            ctx.checkpoint()
            # --- bring the outer chunk in -----------------------------------
            with ctx.phase("hhnl.outer"):
                if selected:
                    chunk_docs = [
                        disk.read_record(docs2, doc_id) for doc_id in chunk_ids
                    ]
                else:
                    chunk_docs = [docs2.payload(doc_id) for doc_id in chunk_ids]
                    first_page = docs2.span(chunk_ids[0]).first_page
                    last_page = docs2.span(chunk_ids[-1]).last_page
                    first_new = max(first_page, pages_read_through + 1)
                    new_pages = last_page - first_new + 1
                    if new_pages > 0:
                        if interference:
                            disk.stats.record(
                                docs2.name, random=1, sequential=new_pages - 1
                            )
                        else:
                            disk.stats.record(docs2.name, sequential=new_pages)
                        pages_read_through = last_page
            trackers = {doc_id: TopK(spec.lam) for doc_id in chunk_ids}
            scorer = kernels.chunk_scorer(chunk_docs)
            n_chunk = len(chunk_ids)

            # --- bring the inner candidates in once for this chunk -----------
            inner_scans += 1
            with ctx.phase("hhnl.inner"):
                if inner_selected:
                    # few surviving inner documents: fetch them at random
                    inner_stream = (
                        (None, disk.read_record(docs1, doc_id))
                        for doc_id in inner_ids
                    )
                elif interference and len(participating) < x:
                    # All outer documents fit (the paper's N2 < X case): the
                    # leftover buffer reads C1 in blocks, one seek per block.
                    leftover = (x - len(participating)) * environment.stats2.S
                    inner_stream = scan_with_block_seeks(disk, docs1, leftover)
                else:
                    inner_stream = disk.scan_records(
                        docs1, interference=interference
                    )
                for _, inner_doc in inner_stream:
                    inner_doc: Document
                    if (
                        inner_filter is not None
                        and inner_doc.doc_id not in inner_filter
                    ):
                        continue
                    # One merge comparison per (outer, inner) cell, exactly
                    # as the original per-pair loop charged them.
                    cpu_ops += scorer.total_terms + n_chunk * inner_doc.n_terms
                    scorer.collect(inner_doc)
                for position, outer_id in enumerate(chunk_ids):
                    tracker = trackers[outer_id]
                    chunk_norm = norms2[outer_id] if norms2 is not None else 0.0
                    for inner_id, similarity in scorer.ranked_candidates(
                        position, spec.lam, prepared_norms1, chunk_norm
                    ):
                        tracker.offer(inner_id, similarity)

            # The chunk's inner scan is complete: every buffered outer
            # document's top-lambda set is final — emit the blocks.
            for doc_id, tracker in trackers.items():
                yield ctx.emit(
                    MatchBlock(outer_doc=doc_id, matches=tuple(tracker.results()))
                )

    return StreamSummary(
        algorithm="HHNL",
        spec=spec,
        io=disk.stats.delta(io_start),
        extras={
            "x": x,
            "inner_scans": inner_scans,
            "outer_documents": len(participating),
            "interference": interference,
            "cpu_ops": cpu_ops,
        },
    )


def run_hhnl(
    environment: JoinEnvironment,
    spec: TextJoinSpec,
    system: SystemParams,
    *,
    outer_ids: Sequence[int] | None = None,
    inner_ids: Sequence[int] | None = None,
    interference: bool = False,
    context: ExecutionContext | None = None,
) -> TextJoinResult:
    """Execute HHNL to completion (the materialized wrapper over
    :func:`iter_hhnl`)."""
    return collect(
        iter_hhnl(
            environment,
            spec,
            system,
            outer_ids=outer_ids,
            inner_ids=inner_ids,
            interference=interference,
            context=context,
        )
    )


def iter_hhnl_backward(
    environment: JoinEnvironment,
    spec: TextJoinSpec,
    system: SystemParams,
    *,
    outer_ids: Sequence[int] | None = None,
    interference: bool = False,
    context: ExecutionContext | None = None,
) -> Iterator[MatchBlock]:
    """Execute HHNL in *backward* order (C1 drives the loop), streaming.

    The join semantics are unchanged (top-``lambda`` C1 documents per C2
    document), so a running :class:`TopK` per C2 document is kept alive
    for the whole join — the memory reservation priced by
    :func:`repro.cost.hhnl.hhnl_backward_cost`.  The paper defers this
    order to [11], noting it "can be more efficient if C1 is much
    smaller than C2": the repeated-scan factor moves onto the small
    collection.

    No top-``lambda`` set is final until the *last* C1 chunk has been
    merged, so the backward operator streams all its blocks at the end;
    budgets and cancellation still apply per chunk.

    ``outer_ids`` still selects C2 documents (the per-group side); C2 is
    re-read once per C1 chunk, scanning and filtering or random-fetching
    whichever the statistics say is cheaper.
    """
    ctx = ensure_context(context)
    outer_ids = resolve_outer_ids(environment, outer_ids)
    side1, side2 = environment.cost_sides(outer_ids)
    query = QueryParams(lam=spec.lam)
    x = hhnl_backward_memory_capacity(side1, side2, system, query)

    disk = environment.disk
    io_start = disk.stats.snapshot()
    docs1, docs2 = environment.docs1, environment.docs2
    norms1 = environment.norms1() if spec.normalized else None
    norms2 = environment.norms2() if spec.normalized else None

    all_c2 = list(range(environment.collection2.n_documents))
    participating = outer_ids if outer_ids is not None else all_c2
    c2_selected = outer_ids is not None and len(outer_ids) < len(all_c2)
    if c2_selected:
        import math

        per_doc_pages = (
            math.ceil(environment.stats2.S) if environment.stats2.S > 0 else 0
        )
        if len(participating) * per_doc_pages * system.alpha >= environment.stats2.D:
            c2_selected = False  # scan-and-filter is cheaper
    participating_set = set(participating)

    trackers = {doc_id: TopK(spec.lam) for doc_id in participating}
    loop_ids = list(range(environment.collection1.n_documents))
    kernels = environment.kernels
    scans = 0
    pages_read_through = -1

    with environment.execution_scope(ctx):
        for chunk_start in range(0, len(loop_ids), x):
            chunk_ids = loop_ids[chunk_start : chunk_start + x]
            if not chunk_ids:
                continue
            ctx.checkpoint()
            # --- bring the C1 chunk in (sequential progress over the extent) --
            with ctx.phase("hhnl.inner"):
                chunk_docs = [docs1.payload(doc_id) for doc_id in chunk_ids]
                first_page = docs1.span(chunk_ids[0]).first_page
                last_page = docs1.span(chunk_ids[-1]).last_page
                first_new = max(first_page, pages_read_through + 1)
                new_pages = last_page - first_new + 1
                if new_pages > 0:
                    if interference:
                        disk.stats.record(
                            docs1.name, random=1, sequential=new_pages - 1
                        )
                    else:
                        disk.stats.record(docs1.name, sequential=new_pages)
                    pages_read_through = last_page
            scorer = kernels.chunk_scorer(chunk_docs)
            scorer.set_chunk_norms(
                [norms1[c1_id] for c1_id in chunk_ids]
                if norms1 is not None
                else None
            )

            # --- one pass over the participating C2 documents -----------------
            scans += 1
            with ctx.phase("hhnl.outer"):
                if c2_selected:
                    c2_stream = (
                        (d, disk.read_record(docs2, d)) for d in participating
                    )
                elif interference and len(loop_ids) < x:
                    leftover = (x - len(loop_ids)) * environment.stats1.S
                    c2_stream = (
                        (span.record_id, doc)
                        for span, doc in scan_with_block_seeks(
                            disk, docs2, leftover
                        )
                        if span.record_id in participating_set
                    )
                else:
                    c2_stream = (
                        (span.record_id, doc)
                        for span, doc in disk.scan_records(
                            docs2, interference=interference
                        )
                        if span.record_id in participating_set
                    )
                for c2_id, c2_doc in c2_stream:
                    tracker = trackers[c2_id]
                    doc_norm = norms2[c2_id] if norms2 is not None else 0.0
                    for position, similarity in scorer.floor_candidates(
                        c2_doc, tracker.threshold(), doc_norm
                    ):
                        tracker.offer(chunk_ids[position], similarity)

        for doc_id, tracker in trackers.items():
            ctx.checkpoint()
            yield ctx.emit(
                MatchBlock(outer_doc=doc_id, matches=tuple(tracker.results()))
            )

    return StreamSummary(
        algorithm="HHNL-BWD",
        spec=spec,
        io=disk.stats.delta(io_start),
        extras={
            "x": x,
            "c2_scans": scans,
            "outer_documents": len(participating),
            "interference": interference,
        },
    )


def run_hhnl_backward(
    environment: JoinEnvironment,
    spec: TextJoinSpec,
    system: SystemParams,
    *,
    outer_ids: Sequence[int] | None = None,
    interference: bool = False,
    context: ExecutionContext | None = None,
) -> TextJoinResult:
    """Execute HHNL backward to completion (wrapper over
    :func:`iter_hhnl_backward`)."""
    return collect(
        iter_hhnl_backward(
            environment,
            spec,
            system,
            outer_ids=outer_ids,
            interference=interference,
            context=context,
        )
    )
