"""Batch query processing — the paper's Section 1 contrast case.

The paper distinguishes the text join from "processing a set of queries
against a document collection in batch": a batch arrives once, so

1. statistics about the queries (term frequencies — the document
   frequencies HVNL's replacement policy needs) "are not available
   unless they are collected explicitly, which is unlikely", and
2. "special data structures ... such as an inverted file" are not built
   for the batch, ruling VVM out.

:func:`run_batch_queries` processes a query stream against C1's
inverted file under exactly those handicaps: queries are plain
documents (not a catalogued collection), eviction is LRU (no
frequencies to rank by), and there is no statistics-driven bulk-load
decision.  Comparing it with :func:`repro.core.hvnl.run_hvnl` over the
same inputs quantifies what the join setting's extra knowledge buys —
the argument behind the paper treating joins as their own problem.

Queries are charged no input I/O (they arrive from the user/network,
not from the simulated disk).
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.constants import TERM_NUMBER_BYTES
from repro.core.accumulator import SparseAccumulator
from repro.core.join import JoinEnvironment, TextJoinResult, TextJoinSpec
from repro.core.topk import TopK
from repro.cost.params import SystemParams
from repro.errors import InsufficientMemoryError, JoinError
from repro.storage.buffer import ObjectBuffer
from repro.storage.policies import LRUPolicy, ReplacementPolicy
from repro.text.document import Document

BTREE_IO_LABEL = "c1.btree"


def run_batch_queries(
    environment: JoinEnvironment,
    queries: Sequence[Document] | Iterable[Document],
    spec: TextJoinSpec,
    system: SystemParams,
    *,
    delta: float = 0.1,
    policy: ReplacementPolicy | None = None,
) -> TextJoinResult:
    """Process a query batch against C1's inverted file.

    The result maps *query position in the batch* to its top-``lambda``
    C1 documents — same shape as a join result, so the two are directly
    comparable.
    """
    if environment.inverted1 is None or environment.btree1 is None:
        raise JoinError("batch processing needs the inverted file and B+-tree on C1")
    queries = list(queries)
    for position, query_doc in enumerate(queries):
        if not isinstance(query_doc, Document):
            raise JoinError(f"batch item {position} is not a Document")

    disk = environment.disk
    io_start = disk.stats.snapshot()
    inv1_extent = environment.inv1_extent
    btree1 = environment.btree1
    page_bytes = environment.geometry.page_bytes

    # Memory: one query at a time, the B+-tree, the accumulators; no
    # batch statistics exist, so the reservation mirrors HVNL's.
    btree_pages = math.ceil(btree1.size_in_pages(environment.geometry)) or 1
    reserved_pages = (
        1  # the current query
        + btree_pages
        + 4 * environment.collection1.n_documents * delta / page_bytes
    )
    budget_pages = system.buffer_pages - reserved_pages
    if budget_pages < 0:
        raise InsufficientMemoryError(
            f"batch processing needs {reserved_pages:.1f} pages reserved; "
            f"buffer is {system.buffer_pages}"
        )
    budget_bytes = int(budget_pages * page_bytes)
    # No document frequencies for the batch -> LRU, not the paper's
    # lowest-df policy (Section 1's point 1).
    buffer = ObjectBuffer(budget_bytes, policy if policy is not None else LRUPolicy())

    disk.stats.record(BTREE_IO_LABEL, sequential=btree_pages)

    norms1 = environment.norms1() if spec.normalized else None

    matches: dict[int, list[tuple[int, float]]] = {}
    accumulator = SparseAccumulator()
    entries_fetched = 0
    cpu_ops = 0

    for position, query_doc in enumerate(queries):
        accumulator.clear()
        for term, weight in query_doc.cells:
            entry = buffer.get(term)
            if entry is None:
                location = btree1.search(term)
                if location is None:
                    continue
                record_id, _df = location
                entry = disk.read_record(inv1_extent, record_id)
                entries_fetched += 1
                # priority is meaningless under LRU; pass 0
                buffer.insert(term, entry, entry.n_bytes + TERM_NUMBER_BYTES, priority=0)
            cpu_ops += len(entry.postings)
            for inner_id, inner_weight in entry.postings:
                accumulator.add(inner_id, weight * inner_weight)

        tracker = TopK(spec.lam)
        if norms1 is None:
            for inner_id, similarity in accumulator.items():
                tracker.offer(inner_id, similarity)
        else:
            query_norm = query_doc.norm()
            for inner_id, similarity in accumulator.items():
                denominator = norms1[inner_id] * query_norm
                tracker.offer(inner_id, similarity / denominator if denominator else 0.0)
        matches[position] = tracker.results()

    return TextJoinResult(
        algorithm="BATCH",
        spec=spec,
        matches=matches,
        io=disk.stats.delta(io_start),
        extras={
            "entry_budget_bytes": budget_bytes,
            "btree_pages": btree_pages,
            "entries_fetched": entries_fetched,
            "buffer_hits": buffer.hits,
            "buffer_misses": buffer.misses,
            "buffer_evictions": buffer.evictions,
            "buffer_hit_rate": buffer.hit_rate,
            "cpu_ops": cpu_ops,
            "n_queries": len(queries),
        },
    )
