"""The integrated algorithm (paper Sections 6 and 7).

"Since no one algorithm is definitely better than all other algorithms,
we proposed the idea of constructing an integrated algorithm consisting
of the basic algorithms such that a particular basic algorithm is invoked
if it has the lowest estimated cost."

:class:`IntegratedJoin` does exactly that over a
:class:`~repro.core.join.JoinEnvironment`: build the statistics, evaluate
all six cost formulas, pick the cheapest feasible algorithm under the
chosen I/O scenario, and dispatch to its executor — either streamed
(:meth:`IntegratedJoin.stream`, the path the SQL layer uses so ``LIMIT``
can abandon the join mid-I/O) or materialized
(:meth:`IntegratedJoin.run`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.core.hhnl import iter_hhnl, iter_hhnl_backward
from repro.core.hvnl import iter_hvnl
from repro.core.join import JoinEnvironment, TextJoinResult, TextJoinSpec
from repro.core.vvm import iter_vvm
from repro.cost.model import CostModel, CostReport
from repro.cost.params import QueryParams, SystemParams
from repro.errors import JoinError
from repro.exec.context import ExecutionContext
from repro.exec.stream import MatchBlock, collect


@dataclass(frozen=True)
class IntegratedDecision:
    """The optimizer's verdict for one join configuration."""

    chosen: str
    scenario: str
    report: CostReport

    @property
    def estimated_cost(self) -> float:
        return self.report[self.chosen].cost(self.scenario)


@dataclass
class IntegratedJoin:
    """Estimate, choose, execute.

    ``scenario`` selects which cost variant drives the choice:
    ``"sequential"`` assumes dedicated devices, ``"random"`` the
    worst-case shared device.  ``use_measured_q=True`` derives ``q`` from
    the actual vocabularies instead of the Section 6 analytic model —
    the executable environment knows the truth, so the optimizer may use
    it; set it False to reproduce the paper's setting.

    Only the forward order is considered (C2 outer), matching the paper's
    scope; the backward order changes nothing semantically but was left
    to the technical report.
    """

    environment: JoinEnvironment
    system: SystemParams = field(default_factory=SystemParams)
    scenario: str = "sequential"
    use_measured_q: bool = True
    delta: float = 0.1
    #: also consider HHNL in backward order (the [11] extension; the
    #: paper's own simulations use forward order only)
    consider_backward: bool = False

    def decide(
        self,
        spec: TextJoinSpec,
        outer_ids: Sequence[int] | None = None,
        inner_ids: Sequence[int] | None = None,
    ) -> IntegratedDecision:
        """Evaluate all six formulas and pick the cheapest algorithm."""
        side1, side2 = self.environment.cost_sides(outer_ids, inner_ids)
        query = QueryParams(lam=spec.lam, delta=self.delta)
        q = self.environment.measured_q() if self.use_measured_q else None
        p = self.environment.measured_p() if self.use_measured_q else None
        model = CostModel(side1, side2, self.system, query, p=p, q=q)
        report = model.report(
            label="integrated", include_backward=self.consider_backward
        )
        return IntegratedDecision(
            chosen=report.winner(self.scenario), scenario=self.scenario, report=report
        )

    def stream(
        self,
        spec: TextJoinSpec,
        outer_ids: Sequence[int] | None = None,
        *,
        inner_ids: Sequence[int] | None = None,
        interference: bool = False,
        context: ExecutionContext | None = None,
        decision: IntegratedDecision | None = None,
    ) -> Iterator[MatchBlock]:
        """Choose and stream the chosen operator's match blocks.

        Pass a precomputed ``decision`` to skip re-evaluating the cost
        model (the SQL executor calls :meth:`decide` up front so it can
        report the algorithm even when ``LIMIT`` abandons the stream
        early).  The decision and its estimated cost ride along in the
        summary's ``extras`` exactly as :meth:`run` reports them.
        """
        if decision is None:
            decision = self.decide(spec, outer_ids, inner_ids)
        if decision.chosen == "HHNL":
            stream = iter_hhnl(
                self.environment, spec, self.system,
                outer_ids=outer_ids, inner_ids=inner_ids,
                interference=interference, context=context,
            )
        elif decision.chosen == "HHNL-BWD":
            # the backward executor predates inner selections; fall back
            # to filtering via the forward runner when one is requested
            if inner_ids is not None:
                stream = iter_hhnl(
                    self.environment, spec, self.system,
                    outer_ids=outer_ids, inner_ids=inner_ids,
                    interference=interference, context=context,
                )
            else:
                stream = iter_hhnl_backward(
                    self.environment, spec, self.system,
                    outer_ids=outer_ids, interference=interference,
                    context=context,
                )
        elif decision.chosen == "HVNL":
            stream = iter_hvnl(
                self.environment, spec, self.system,
                outer_ids=outer_ids, inner_ids=inner_ids,
                interference=interference, delta=self.delta, context=context,
            )
        elif decision.chosen == "VVM":
            stream = iter_vvm(
                self.environment, spec, self.system,
                outer_ids=outer_ids, inner_ids=inner_ids,
                interference=interference, delta=self.delta, context=context,
            )
        else:  # pragma: no cover — the report only emits the four names
            raise JoinError(f"unknown algorithm {decision.chosen!r}")
        summary = yield from stream
        summary.extras["decision"] = decision
        summary.extras["estimated_cost"] = decision.estimated_cost
        return summary

    def run(
        self,
        spec: TextJoinSpec,
        outer_ids: Sequence[int] | None = None,
        *,
        inner_ids: Sequence[int] | None = None,
        interference: bool = False,
        context: ExecutionContext | None = None,
    ) -> TextJoinResult:
        """Choose and execute to completion; the decision rides along in
        ``extras``."""
        return collect(
            self.stream(
                spec,
                outer_ids,
                inner_ids=inner_ids,
                interference=interference,
                context=context,
            )
        )
