"""The integrated algorithm (paper Sections 6 and 7).

"Since no one algorithm is definitely better than all other algorithms,
we proposed the idea of constructing an integrated algorithm consisting
of the basic algorithms such that a particular basic algorithm is invoked
if it has the lowest estimated cost."

:class:`IntegratedJoin` does exactly that over a
:class:`~repro.core.join.JoinEnvironment`: build the statistics, evaluate
all six cost formulas, pick the cheapest feasible algorithm under the
chosen I/O scenario, and dispatch to its executor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.hhnl import run_hhnl, run_hhnl_backward
from repro.core.hvnl import run_hvnl
from repro.core.join import JoinEnvironment, TextJoinResult, TextJoinSpec
from repro.core.vvm import run_vvm
from repro.cost.model import CostModel, CostReport
from repro.cost.params import QueryParams, SystemParams
from repro.errors import JoinError


@dataclass(frozen=True)
class IntegratedDecision:
    """The optimizer's verdict for one join configuration."""

    chosen: str
    scenario: str
    report: CostReport

    @property
    def estimated_cost(self) -> float:
        return self.report[self.chosen].cost(self.scenario)


@dataclass
class IntegratedJoin:
    """Estimate, choose, execute.

    ``scenario`` selects which cost variant drives the choice:
    ``"sequential"`` assumes dedicated devices, ``"random"`` the
    worst-case shared device.  ``use_measured_q=True`` derives ``q`` from
    the actual vocabularies instead of the Section 6 analytic model —
    the executable environment knows the truth, so the optimizer may use
    it; set it False to reproduce the paper's setting.

    Only the forward order is considered (C2 outer), matching the paper's
    scope; the backward order changes nothing semantically but was left
    to the technical report.
    """

    environment: JoinEnvironment
    system: SystemParams = field(default_factory=SystemParams)
    scenario: str = "sequential"
    use_measured_q: bool = True
    delta: float = 0.1
    #: also consider HHNL in backward order (the [11] extension; the
    #: paper's own simulations use forward order only)
    consider_backward: bool = False

    def decide(
        self,
        spec: TextJoinSpec,
        outer_ids: Sequence[int] | None = None,
        inner_ids: Sequence[int] | None = None,
    ) -> IntegratedDecision:
        """Evaluate all six formulas and pick the cheapest algorithm."""
        side1, side2 = self.environment.cost_sides(outer_ids, inner_ids)
        query = QueryParams(lam=spec.lam, delta=self.delta)
        q = self.environment.measured_q() if self.use_measured_q else None
        p = self.environment.measured_p() if self.use_measured_q else None
        model = CostModel(side1, side2, self.system, query, p=p, q=q)
        report = model.report(
            label="integrated", include_backward=self.consider_backward
        )
        return IntegratedDecision(
            chosen=report.winner(self.scenario), scenario=self.scenario, report=report
        )

    def run(
        self,
        spec: TextJoinSpec,
        outer_ids: Sequence[int] | None = None,
        *,
        inner_ids: Sequence[int] | None = None,
        interference: bool = False,
    ) -> TextJoinResult:
        """Choose and execute; the decision rides along in ``extras``."""
        decision = self.decide(spec, outer_ids, inner_ids)
        if decision.chosen == "HHNL":
            result = run_hhnl(
                self.environment, spec, self.system,
                outer_ids=outer_ids, inner_ids=inner_ids,
                interference=interference,
            )
        elif decision.chosen == "HHNL-BWD":
            # the backward executor predates inner selections; fall back
            # to filtering via the forward runner when one is requested
            if inner_ids is not None:
                result = run_hhnl(
                    self.environment, spec, self.system,
                    outer_ids=outer_ids, inner_ids=inner_ids,
                    interference=interference,
                )
            else:
                result = run_hhnl_backward(
                    self.environment, spec, self.system,
                    outer_ids=outer_ids, interference=interference,
                )
        elif decision.chosen == "HVNL":
            result = run_hvnl(
                self.environment, spec, self.system,
                outer_ids=outer_ids, inner_ids=inner_ids,
                interference=interference, delta=self.delta,
            )
        elif decision.chosen == "VVM":
            result = run_vvm(
                self.environment, spec, self.system,
                outer_ids=outer_ids, inner_ids=inner_ids,
                interference=interference, delta=self.delta,
            )
        else:  # pragma: no cover — the report only emits the three names
            raise JoinError(f"unknown algorithm {decision.chosen!r}")
        result.extras["decision"] = decision
        result.extras["estimated_cost"] = decision.estimated_cost
        return result
