"""Build-once environment construction: spec, factory, shared artifacts.

Historically every ``JoinEnvironment(...)`` call re-derived the whole
physical dataset — laid the collections out, inverted them and
bulk-loaded the term trees — even though the paper's Section 5 cost
models price only the *join*.  This module splits those phases:

* an :class:`EnvironmentSpec` is the frozen recipe (page size, whether
  to invert, tree order, compression);
* an :class:`EnvironmentFactory` derives the immutable artifacts —
  document extents, inverted files, inverted extents, B+-trees,
  collection statistics — lazily, caches them, and assembles any number
  of :class:`~repro.core.join.JoinEnvironment` instances over them.

Each :meth:`EnvironmentFactory.create` call gets a **fresh**
:class:`~repro.storage.disk.SimulatedDisk` with a fresh root
:class:`~repro.storage.iostats.IOStats`, so executions over a shared
factory never see each other's page counts; the extents themselves are
append-only and read-only once built, which is what makes sharing them
safe.  A factory can be warmed from memory (byte-identical to direct
construction) or pre-populated from a :mod:`repro.workspace` directory
via :meth:`EnvironmentFactory.preload_side`, in which case the expensive
derivations never run at all.

Every derivation is appended to :attr:`EnvironmentFactory.build_log` as
a ``"kind:target"`` event (kinds: ``layout``, ``invert``, ``compress``,
``bulk-load``, ``stats``, ``load``, ``merge``), which is how callers
*prove* that a warm or workspace-backed factory did zero
tokenization/inversion work.  ``merge`` records that a side's artifacts
are the merged view of a segmented workspace (base segments + delta,
tombstones applied); it is deliberately *not* a derivation kind — the
merge works over already-derived per-segment artifacts, never
re-tokenising or re-inverting documents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import JoinError
from repro.index.bptree import BPlusTree
from repro.index.inverted import InvertedFile
from repro.index.stats import CollectionStats
from repro.storage.disk import SimulatedDisk  # repro: ignore[RA-CORE-IO] -- environment layout boundary
from repro.storage.extents import Extent  # repro: ignore[RA-CORE-IO] -- environment layout boundary
from repro.storage.iostats import IOStats
from repro.storage.pages import PageGeometry  # repro: ignore[RA-CORE-IO] -- environment layout boundary
from repro.text.collection import DocumentCollection
from repro.text.vocabulary import Vocabulary

if TYPE_CHECKING:  # pragma: no cover — import cycle broken at runtime
    from repro.core.join import JoinEnvironment

#: build-log event kinds that represent expensive dataset derivation
#: (as opposed to cheap extent layout, statistics or artifact loads)
DERIVATION_KINDS = ("invert", "compress", "bulk-load")


@dataclass(frozen=True)
class EnvironmentSpec:
    """The frozen recipe for one physical dataset layout.

    ``codec`` names the :mod:`repro.index.codecs` postings codec the
    inverted extents are stored in.  ``compress_inverted`` predates the
    codec layer and is kept as an alias: setting it selects ``vbyte``,
    and selecting any compressed codec sets it — the two fields are
    normalised to agree at construction time, so old call sites and new
    ones describe the same physical layout.
    """

    page_bytes: int = PageGeometry().page_bytes
    build_inverted: bool = True
    btree_order: int = 64
    compress_inverted: bool = False
    codec: str = "raw"

    def __post_init__(self) -> None:
        if self.page_bytes <= 0:
            raise JoinError(f"page_bytes must be positive, got {self.page_bytes}")
        if self.btree_order < 3:
            raise JoinError(f"btree_order must be at least 3, got {self.btree_order}")
        from repro.index.codecs import resolve_codec

        codec = self.codec
        if self.compress_inverted and codec == "raw":
            codec = "vbyte"
        if resolve_codec(codec).compressed != self.compress_inverted:
            object.__setattr__(self, "compress_inverted", not self.compress_inverted)
        if codec != self.codec:
            object.__setattr__(self, "codec", codec)

    def geometry(self) -> PageGeometry:
        """The page geometry every artifact of this spec is laid out in."""
        return PageGeometry(self.page_bytes)


class EnvironmentFactory:
    """Derives and caches the immutable artifacts behind environments.

    ``collection2=None`` declares a self-join: C2 *is* C1 and every
    side-2 artifact aliases side 1, exactly as Group 1 of the paper's
    simulations assumes.  All artifact accessors take the side number
    (1 or 2) and build on first use; :meth:`create` assembles a full
    :class:`~repro.core.join.JoinEnvironment` from whatever the cache
    holds, deriving the rest on demand.
    """

    def __init__(
        self,
        collection1: DocumentCollection,
        collection2: DocumentCollection | None = None,
        spec: EnvironmentSpec | None = None,
        *,
        kernel: str = "auto",
    ) -> None:
        self.spec = spec or EnvironmentSpec()
        #: kernel backend name resolved per assembled environment; mutable
        #: (it selects arithmetic, not physical layout) and pickled with
        #: the factory, so shard workers inherit the parent's choice
        self.kernel = kernel
        self.collection1 = collection1
        self.collection2 = collection1 if collection2 is None else collection2
        #: the shared term↔number mapping, when known (workspaces carry it)
        self.vocabulary: Vocabulary | None = None
        #: ordered ``"kind:target"`` derivation events — the instrumentation
        #: that proves a warm factory rebuilds nothing
        self.build_log: list[str] = []
        self._geometry = self.spec.geometry()
        self._docs_extents: dict[int, Extent] = {}
        self._inverted: dict[int, InvertedFile] = {}
        self._inv_extents: dict[int, Extent] = {}
        self._btrees: dict[int, BPlusTree] = {}
        self._stats: dict[int, CollectionStats] = {}

    # --- identity -----------------------------------------------------------

    @property
    def self_join(self) -> bool:
        """True when both sides are the same collection object."""
        return self.collection2 is self.collection1

    def collection(self, side: int) -> DocumentCollection:
        """The collection of one side (1 or 2)."""
        if side == 1:
            return self.collection1
        if side == 2:
            return self.collection2
        raise JoinError(f"side must be 1 or 2, got {side}")

    # --- artifacts (lazy, cached, immutable once built) ----------------------

    def docs_extent(self, side: int) -> Extent:
        """The packed document extent of one side (``cN.docs``)."""
        if self.self_join and side == 2:
            return self.docs_extent(1)
        if side not in self._docs_extents:
            name = f"c{side}.docs"
            extent = Extent(name, self._geometry)
            for doc in self.collection(side):
                extent.append(doc, doc.n_bytes)
            self._docs_extents[side] = extent
            self.build_log.append(f"layout:{name}")
        return self._docs_extents[side]

    def inverted(self, side: int) -> InvertedFile:
        """The inverted file of one side, in the spec's codec."""
        if self.self_join and side == 2:
            return self.inverted(1)
        if side not in self._inverted:
            from repro.index.codecs import resolve_codec

            inverted = InvertedFile.build(self.collection(side))
            self.build_log.append(f"invert:c{side}")
            codec = resolve_codec(self.spec.codec)
            if codec.compressed:
                inverted = codec.build(inverted)
                self.build_log.append(f"compress:c{side}")
            self._inverted[side] = inverted
        return self._inverted[side]

    def inverted_extent(self, side: int) -> Extent:
        """The packed inverted-file extent of one side (``cN.inv``)."""
        if self.self_join and side == 2:
            return self.inverted_extent(1)
        if side not in self._inv_extents:
            name = f"c{side}.inv"
            extent = Extent(name, self._geometry)
            for entry in self.inverted(side).entries:
                extent.append(entry, entry.n_bytes)
            self._inv_extents[side] = extent
            self.build_log.append(f"layout:{name}")
        return self._inv_extents[side]

    def btree(self, side: int) -> BPlusTree:
        """The term tree of one side, bulk-loaded over its inverted file."""
        if self.self_join and side == 2:
            return self.btree(1)
        if side not in self._btrees:
            leaf_items = [
                (entry.term, (record_id, entry.document_frequency))
                for record_id, entry in enumerate(self.inverted(side).entries)
            ]
            self._btrees[side] = BPlusTree.bulk_load(
                leaf_items, order=self.spec.btree_order
            )
            self.build_log.append(f"bulk-load:c{side}")
        return self._btrees[side]

    def stats(self, side: int) -> CollectionStats:
        """Measured collection statistics of one side.

        With a compressed codec the inverted-side figures (``J``, ``I``
        and everything derived from them) are overridden by the measured
        compression ratio, so the analytic cost models price the same
        extent sizes the simulated disk actually charges for.
        """
        if self.self_join and side == 2:
            return self.stats(1)
        if side not in self._stats:
            from repro.index.codecs import resolve_codec

            stats = CollectionStats.from_collection(
                self.collection(side), self._geometry
            )
            codec = resolve_codec(self.spec.codec)
            if codec.compressed and self.spec.build_inverted:
                from repro.constants import I_CELL_BYTES

                inverted = self.inverted(side)
                compressed_total = inverted.total_bytes
                uncompressed_total = I_CELL_BYTES * sum(
                    entry.document_frequency for entry in inverted.entries
                )
                if compressed_total and uncompressed_total > compressed_total:
                    stats = stats.with_compressed_inverted(
                        uncompressed_total / compressed_total
                    )
                # Adversarial data can compress to >= raw size; the raw
                # figures are then already the measured layout.
            self._stats[side] = stats
            self.build_log.append(f"stats:c{side}")
        return self._stats[side]

    def preload_side(
        self, side: int, inverted: InvertedFile, btree: BPlusTree
    ) -> None:
        """Install artifacts loaded from durable storage for one side.

        Used by the workspace loader: the inverted file and term tree
        came off disk, so the factory must never re-derive them.  The
        install is refused once the side's artifacts exist — a factory's
        artifacts are immutable after first use, and silently swapping
        them would desynchronise environments already assembled over the
        old ones.
        """
        if self.self_join and side == 2:
            raise JoinError("a self-join factory preloads side 1 only")
        if side not in (1, 2):
            raise JoinError(f"side must be 1 or 2, got {side}")
        if side in self._inverted or side in self._btrees:
            raise JoinError(
                f"side {side} artifacts already exist; preload before first use"
            )
        self._inverted[side] = inverted
        self._btrees[side] = btree
        self.build_log.append(f"load:c{side}.inv")
        self.build_log.append(f"load:c{side}.btree")

    def preload_merged_side(
        self,
        side: int,
        inverted: InvertedFile,
        btree: BPlusTree,
        *,
        n_segments: int,
    ) -> None:
        """Install one side's merged multi-segment view.

        Same contract as :meth:`preload_side`, plus a ``merge:cN[k]``
        build-log event recording that the side is the tombstone-applied
        merge of ``k`` workspace segments.  HHNL/HVNL/VVM — and every
        kernel backend — see one logical collection; nothing downstream
        can tell the view from a cold rebuild of the live document set.
        """
        self.preload_side(side, inverted, btree)
        self.build_log.append(f"merge:c{side}[{n_segments}]")

    # --- instrumentation ------------------------------------------------------

    def build_counts(self) -> dict[str, int]:
        """Histogram of build-log events by kind."""
        counts: dict[str, int] = {}
        for event in self.build_log:
            kind = event.split(":", 1)[0]
            counts[kind] = counts.get(kind, 0) + 1
        return counts

    def derivation_events(self) -> list[str]:
        """The expensive events only (:data:`DERIVATION_KINDS`).

        Empty for a factory whose artifacts all came from a workspace —
        the acceptance test for "build once, join many".
        """
        return [
            event
            for event in self.build_log
            if event.split(":", 1)[0] in DERIVATION_KINDS
        ]

    # --- assembly -------------------------------------------------------------

    def create(self) -> "JoinEnvironment":
        """A fresh environment over the shared artifacts.

        The returned environment is indistinguishable from one built
        directly with ``JoinEnvironment(c1, c2, ...)`` — same extents
        byte-for-byte, same tree layout, same statistics — but its disk
        and root :class:`~repro.storage.iostats.IOStats` are brand new,
        so per-execution I/O accounting starts at zero.
        """
        from repro.core.join import JoinEnvironment

        return self._assemble(JoinEnvironment.__new__(JoinEnvironment))

    def _assemble(self, environment: "JoinEnvironment") -> "JoinEnvironment":
        """Wire one environment instance onto the cached artifacts."""
        from repro.kernels import resolve_kernels

        spec = self.spec
        environment.geometry = self._geometry
        environment.collection1 = self.collection1
        environment.collection2 = self.collection2
        environment.compress_inverted = spec.compress_inverted
        environment.codec = spec.codec
        cells = self.collection1.total_cells
        if not self.self_join:
            cells += self.collection2.total_cells
        environment.kernels = resolve_kernels(self.kernel, cells=cells)
        environment.disk = SimulatedDisk(IOStats(), self._geometry)  # repro: ignore[RA-CONTEXT] -- the factory creates each environment's root counter before execution
        environment.docs1 = environment.disk.attach_extent(self.docs_extent(1))
        if self.self_join:
            environment.docs2 = environment.docs1
        else:
            environment.docs2 = environment.disk.attach_extent(self.docs_extent(2))
        environment.inverted1 = None
        environment.inverted2 = None
        environment.inv1_extent = None
        environment.inv2_extent = None
        environment.btree1 = None
        environment.btree2 = None
        if spec.build_inverted:
            environment.inverted1 = self.inverted(1)
            environment.inv1_extent = environment.disk.attach_extent(
                self.inverted_extent(1)
            )
            environment.btree1 = self.btree(1)
            if self.self_join:
                environment.inverted2 = environment.inverted1
                environment.inv2_extent = environment.inv1_extent
                environment.btree2 = environment.btree1
            else:
                environment.inverted2 = self.inverted(2)
                environment.inv2_extent = environment.disk.attach_extent(
                    self.inverted_extent(2)
                )
                environment.btree2 = self.btree(2)
        environment.stats1 = self.stats(1)
        environment.stats2 = self.stats(2)
        environment._norms1 = None
        environment._norms2 = None
        return environment


__all__ = ["DERIVATION_KINDS", "EnvironmentFactory", "EnvironmentSpec"]
