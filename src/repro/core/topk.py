"""Top-``lambda`` similarity tracking.

Every algorithm ends the same way per outer document: keep the ``lambda``
inner documents with the largest similarities (Section 4.1's "replace the
smallest of the lambda largest similarities").  Ties are broken toward
the smaller document number so all three executors return bit-identical
results — an invariant the integration tests rely on.

Only strictly positive similarities qualify: a pair sharing no terms is
not "similar", and the inverted-file algorithms never even see such
pairs, so admitting zeros in HHNL would make the algorithms disagree.
"""

from __future__ import annotations

import heapq
import math

from repro.errors import InvalidParameterError


class TopK:
    """A bounded max-similarity tracker for one outer document.

    Internally a min-heap of ``(similarity, -doc_id)`` so the *worst*
    retained candidate — smallest similarity, largest doc id among equals
    — sits at the root and is evicted first.
    """

    __slots__ = ("k", "_heap")

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise InvalidParameterError(f"k must be positive, got {k}")
        self.k = k
        self._heap: list[tuple[float, int]] = []

    def offer(self, doc_id: int, similarity: float) -> bool:
        """Consider a candidate; returns True if it was retained.

        Non-finite similarities are rejected, not just non-positive ones:
        ``NaN <= 0.0`` is False, so without the explicit check a NaN from
        a degenerate normalisation would slip into the heap and poison
        every later comparison (heap order and :meth:`results` sorting
        both become undefined).  ``inf`` is rejected for the same reason —
        no real similarity is unbounded.
        """
        if not math.isfinite(similarity) or similarity <= 0.0:
            return False
        entry = (similarity, -doc_id)
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, entry)
            return True
        if entry > self._heap[0]:
            heapq.heapreplace(self._heap, entry)
            return True
        return False

    def threshold(self) -> float:
        """Smallest similarity that currently survives (0.0 while unfilled)."""
        if len(self._heap) < self.k:
            return 0.0
        return self._heap[0][0]

    def results(self) -> list[tuple[int, float]]:
        """``(doc_id, similarity)`` best-first; ties by ascending doc id."""
        ordered = sorted(self._heap, key=lambda e: (-e[0], -e[1]))
        return [(-neg_id, sim) for sim, neg_id in ordered]

    def __len__(self) -> int:
        return len(self._heap)

    def __repr__(self) -> str:
        return f"TopK(k={self.k}, held={len(self._heap)})"
