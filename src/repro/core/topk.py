"""Top-``lambda`` similarity tracking.

Every algorithm ends the same way per outer document: keep the ``lambda``
inner documents with the largest similarities (Section 4.1's "replace the
smallest of the lambda largest similarities").  Ties are broken toward
the smaller document number so all three executors return bit-identical
results — an invariant the integration tests rely on.

Only strictly positive similarities qualify: a pair sharing no terms is
not "similar", and the inverted-file algorithms never even see such
pairs, so admitting zeros in HHNL would make the algorithms disagree.

Determinism is a *total-order* property: candidates are ranked by
``(similarity desc, doc_id asc)`` with the document id as the final
tie-break, so the retained set — and therefore :meth:`TopK.results` —
is a pure function of the offered candidate set, independent of arrival
order.  That is what makes sharded execution exact: per-shard trackers
built over disjoint inner partitions :meth:`TopK.merge` into precisely
the tracker a sequential run would have built, no matter how the shards
are ordered or grouped (the merge is associative and commutative).
"""

from __future__ import annotations

import heapq
import math

from repro.errors import InvalidParameterError


class TopK:
    """A bounded max-similarity tracker for one outer document.

    Internally a min-heap of ``(similarity, -doc_id)`` so the *worst*
    retained candidate — smallest similarity, largest doc id among equals
    — sits at the root and is evicted first, mirrored by a
    ``doc_id -> similarity`` dict so re-offering a document already
    retained (as merging overlapping trackers does) can never create a
    duplicate heap entry: the document keeps its best similarity and the
    heap always holds at most one entry per document.
    """

    __slots__ = ("k", "_heap", "_entries")

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise InvalidParameterError(f"k must be positive, got {k}")
        self.k = k
        self._heap: list[tuple[float, int]] = []
        self._entries: dict[int, float] = {}

    def offer(self, doc_id: int, similarity: float) -> bool:
        """Consider a candidate; returns True if it was retained.

        Non-finite similarities are rejected, not just non-positive ones:
        ``NaN <= 0.0`` is False, so without the explicit check a NaN from
        a degenerate normalisation would slip into the heap and poison
        every later comparison (heap order and :meth:`results` sorting
        both become undefined).  ``inf`` is rejected for the same reason —
        no real similarity is unbounded.

        Offering a document that is already retained keeps the larger of
        the two similarities (and never evicts a different document), so
        any sequence of offers yields exactly the top-``k`` of the
        distinct documents seen — the order-independence the sharded
        merge relies on.
        """
        if not math.isfinite(similarity) or similarity <= 0.0:
            return False
        entry = (similarity, -doc_id)
        if len(self._heap) >= self.k and entry <= self._heap[0]:
            # Below (or tied with) the bar: not retained.  Correct even
            # for a document already in the heap — its stored entry is
            # >= the root, so this offer cannot improve it.
            return False
        current = self._entries.get(doc_id)
        if current is not None:
            if similarity <= current:
                return False
            # The document is retained with a worse similarity: upgrade
            # it in place rather than pushing a duplicate entry.
            self._entries[doc_id] = similarity
            self._rebuild()
            return True
        if len(self._heap) < self.k:
            self._entries[doc_id] = similarity
            heapq.heappush(self._heap, entry)
            return True
        worst_sim, worst_neg = heapq.heapreplace(self._heap, entry)
        del self._entries[-worst_neg]
        self._entries[doc_id] = similarity
        return True

    def _rebuild(self) -> None:
        """Re-heapify from the entries dict (after an in-place upgrade)."""
        self._heap = [(sim, -doc_id) for doc_id, sim in self._entries.items()]
        heapq.heapify(self._heap)

    def merge(self, other: "TopK") -> "TopK":
        """Fold ``other``'s retained candidates into this tracker; returns self.

        Because :meth:`offer` is order-independent and duplicate-safe,
        merging is **associative and commutative**: any tree of merges
        over per-shard trackers produces the tracker a sequential run
        over the union of their candidates would have produced.  A
        document retained by both sides keeps its larger similarity.
        ``other`` is not modified.
        """
        if not isinstance(other, TopK):
            raise InvalidParameterError(
                f"can only merge another TopK, got {type(other).__name__}"
            )
        if other.k != self.k:
            raise InvalidParameterError(
                f"cannot merge TopK trackers with different k: "
                f"{self.k} vs {other.k}"
            )
        for doc_id, similarity in other._entries.items():
            self.offer(doc_id, similarity)
        return self

    def threshold(self) -> float:
        """Smallest similarity that currently survives (0.0 while unfilled)."""
        if len(self._heap) < self.k:
            return 0.0
        return self._heap[0][0]

    def results(self) -> list[tuple[int, float]]:
        """``(doc_id, similarity)`` best-first; ties by ascending doc id."""
        ordered = sorted(self._heap, key=lambda e: (-e[0], -e[1]))
        return [(-neg_id, sim) for sim, neg_id in ordered]

    def __len__(self) -> int:
        return len(self._heap)

    def __repr__(self) -> str:
        return f"TopK(k={self.k}, held={len(self._heap)})"
