"""Join specification, execution environment and result types.

The executable half of the reproduction: a :class:`JoinEnvironment` lays
two collections (and their inverted files and B+-trees) onto a
:class:`~repro.storage.disk.SimulatedDisk`, the executors in
:mod:`repro.core.hhnl` / :mod:`repro.core.hvnl` / :mod:`repro.core.vvm`
run the actual algorithms over it, and every page they touch lands in an
:class:`~repro.storage.iostats.IOStats` that can be compared against the
Section 5 formulas.

Join semantics (``C1 SIMILAR_TO(lambda) C2`` in forward order): for each
participating document of the *outer* collection C2, return the up-to-
``lambda`` *inner* (C1) documents with the largest positive similarity.
All three executors produce identical matches by construction; only
their I/O differs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator, Sequence

from repro.cost.params import JoinSide, QueryParams, SystemParams
from repro.errors import JoinError
from repro.index.bptree import BPlusTree
from repro.index.inverted import InvertedFile
from repro.index.stats import CollectionStats
from repro.storage.disk import SimulatedDisk  # repro: ignore[RA-CORE-IO] -- environment layout boundary
from repro.storage.extents import Extent  # repro: ignore[RA-CORE-IO] -- environment layout boundary
from repro.storage.iostats import IOStats
from repro.storage.pages import PageGeometry  # repro: ignore[RA-CORE-IO] -- environment layout boundary
from repro.text.collection import DocumentCollection

if TYPE_CHECKING:  # pragma: no cover — import cycle broken at runtime
    from repro.kernels import Kernels


@dataclass(frozen=True)
class TextJoinSpec:
    """What the query asks for: SIMILAR_TO(``lam``), optionally normalised.

    ``normalized=True`` divides every similarity by the product of the
    two documents' norms (cosine) — executed via pre-computed norms, the
    strategy Section 3 describes, so it changes no I/O.
    """

    lam: int = 20
    normalized: bool = False

    def __post_init__(self) -> None:
        if self.lam <= 0:
            raise JoinError(f"lambda must be positive, got {self.lam}")


class JoinEnvironment:
    """Two collections laid out on one simulated disk, ready to join.

    For a self-join (``collection2 is collection1``) the storage and
    indexes are shared, exactly as Group 1 of the simulations assumes.

    Construction is a thin assembly over
    :class:`~repro.core.environment.EnvironmentFactory`: calling this
    constructor spins up a one-shot factory (deriving every artifact
    right here, as always), while a long-lived factory can stamp out
    many environments over the *same* immutable artifacts — each with a
    fresh disk and root :class:`~repro.storage.iostats.IOStats` — via
    :meth:`~repro.core.environment.EnvironmentFactory.create`.

    Attributes (``docs1``/``docs2``, ``inverted1``/``inverted2``,
    ``inv1_extent``/``inv2_extent``, ``btree1``/``btree2``,
    ``stats1``/``stats2``, ``disk``, ``geometry``) are identical either
    way; with ``compress_inverted`` the stored entries are d-gap/vbyte
    coded (:mod:`repro.index.compression`) and the executors run
    unchanged over the smaller pages.
    """

    geometry: PageGeometry
    collection1: DocumentCollection
    collection2: DocumentCollection
    compress_inverted: bool
    codec: str
    kernels: "Kernels"
    disk: SimulatedDisk
    docs1: Extent
    docs2: Extent
    inverted1: InvertedFile | None
    inverted2: InvertedFile | None
    inv1_extent: Extent | None
    inv2_extent: Extent | None
    btree1: BPlusTree | None
    btree2: BPlusTree | None
    stats1: CollectionStats
    stats2: CollectionStats
    _norms1: dict[int, float] | None
    _norms2: dict[int, float] | None

    def __init__(
        self,
        collection1: DocumentCollection,
        collection2: DocumentCollection,
        geometry: PageGeometry | None = None,
        *,
        build_inverted: bool = True,
        btree_order: int = 64,
        compress_inverted: bool = False,
        codec: str = "raw",
        kernel: str = "auto",
    ) -> None:
        from repro.core.environment import EnvironmentFactory, EnvironmentSpec

        spec = EnvironmentSpec(
            page_bytes=(geometry or PageGeometry()).page_bytes,
            build_inverted=build_inverted,
            btree_order=btree_order,
            compress_inverted=compress_inverted,
            codec=codec,
        )
        factory = EnvironmentFactory(
            collection1,
            None if collection2 is collection1 else collection2,
            spec,
            kernel=kernel,
        )
        factory._assemble(self)

    # --- norms (pre-computed, no I/O — Section 3's normalisation strategy) ---

    def norms1(self) -> dict[int, float]:
        """Pre-computed norms of the C1 documents (cached, no I/O)."""
        if self._norms1 is None:
            self._norms1 = {doc.doc_id: doc.norm() for doc in self.collection1}
        return self._norms1

    def norms2(self) -> dict[int, float]:
        """Pre-computed norms of the C2 documents (cached, no I/O)."""
        if self.collection2 is self.collection1:
            return self.norms1()
        if self._norms2 is None:
            self._norms2 = {doc.doc_id: doc.norm() for doc in self.collection2}
        return self._norms2

    # --- cost-model bridge ---------------------------------------------------

    def cost_sides(
        self,
        outer_ids: Sequence[int] | None = None,
        inner_ids: Sequence[int] | None = None,
    ) -> tuple[JoinSide, JoinSide]:
        """``(side1, side2)`` with measured statistics and the selections."""
        side1 = JoinSide(
            self.stats1,
            participating=len(inner_ids) if inner_ids is not None else None,
        )
        side2 = JoinSide(
            self.stats2,
            participating=len(outer_ids) if outer_ids is not None else None,
        )
        return side1, side2

    def measured_q(self) -> float:
        """Measured probability that a C2 term also appears in C1."""
        return self.collection2.term_overlap_with(self.collection1)

    def measured_p(self) -> float:
        """Measured probability that a C1 term also appears in C2."""
        return self.collection1.term_overlap_with(self.collection2)

    def reset_io(self) -> None:
        """Zero the disk's I/O counters."""
        self.disk.stats.reset()

    def execution_scope(self, context):
        """Guard this environment's disk with an execution context.

        Convenience over
        :meth:`~repro.storage.disk.SimulatedDisk.execution_scope`: the
        ``iter_*`` operators open one scope around their whole run so
        page budgets and metric hooks observe every charged read.
        """
        return self.disk.execution_scope(context)


@dataclass
class TextJoinResult:
    """Matches plus measured I/O for one executed join."""

    algorithm: str
    spec: TextJoinSpec
    matches: dict[int, list[tuple[int, float]]]
    io: IOStats
    extras: dict[str, Any] = field(default_factory=dict)

    def weighted_cost(self, alpha: float) -> float:
        """The paper's metric over the measured reads."""
        return self.io.weighted_cost(alpha)

    def pairs(self) -> Iterator[tuple[int, int, float]]:
        """Flat ``(outer doc, inner doc, similarity)`` stream, outer-major."""
        for outer_doc in sorted(self.matches):
            for inner_doc, similarity in self.matches[outer_doc]:
                yield outer_doc, inner_doc, similarity

    def n_matches(self) -> int:
        """Total matched pairs across all outer documents."""
        return sum(len(hits) for hits in self.matches.values())

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serialisable summary for downstream pipelines.

        Contains the algorithm, the spec, the matches (outer doc →
        ranked ``[inner doc, similarity]`` pairs) and the I/O counters;
        non-serialisable extras (plans, decisions) are represented by
        their ``repr``.
        """
        return {
            "algorithm": self.algorithm,
            "lambda": self.spec.lam,
            "normalized": self.spec.normalized,
            "matches": {
                str(outer): [[inner, sim] for inner, sim in hits]
                for outer, hits in sorted(self.matches.items())
            },
            "io": {
                "sequential_reads": self.io.sequential_reads,
                "random_reads": self.io.random_reads,
                "by_extent": {
                    name: {"sequential": seq, "random": rnd}
                    for name, (seq, rnd) in sorted(self.io.by_extent.items())
                },
            },
            "extras": {
                key: value
                if isinstance(value, (int, float, str, bool, type(None)))
                else repr(value)
                for key, value in self.extras.items()
            },
        }

    def to_json(self, **dumps_kwargs: Any) -> str:
        """The :meth:`to_dict` summary as a JSON string."""
        import json

        return json.dumps(self.to_dict(), **dumps_kwargs)

    def same_matches_as(self, other: "TextJoinResult", tolerance: float = 1e-9) -> bool:
        """True when both results pair the same documents with the same
        similarities (the cross-algorithm agreement invariant)."""
        if set(self.matches) != set(other.matches):
            return False
        for outer_doc, hits in self.matches.items():
            other_hits = other.matches[outer_doc]
            if len(hits) != len(other_hits):
                return False
            for (d_a, s_a), (d_b, s_b) in zip(hits, other_hits):
                if d_a != d_b or abs(s_a - s_b) > tolerance:
                    return False
        return True

    def __repr__(self) -> str:
        return (
            f"TextJoinResult({self.algorithm}, outer_docs={len(self.matches)}, "
            f"matches={self.n_matches()}, {self.io})"
        )


def scan_with_block_seeks(disk: SimulatedDisk, extent: Extent, leftover_pages: float):
    """Scan an extent under interference, buffering blocks in spare memory.

    The worst-case formulas (Sections 5.1-5.2) let an algorithm with
    leftover buffer read a collection in blocks of that many pages, so an
    interrupted scan seeks once per *block* rather than once per record:
    ``ceil(total / leftover)`` random reads, the rest sequential.
    """
    import math

    total = extent.n_pages
    if total > 0:
        if leftover_pages > 0:
            blocks = min(max(1, math.ceil(total / leftover_pages)), total)
        else:
            blocks = total
        disk.stats.record(extent.name, random=blocks, sequential=total - blocks)
    for span in extent.spans():
        yield span, extent.payload(span.record_id)


def _resolve_ids(
    ids: Sequence[int] | None, n_documents: int, label: str
) -> list[int] | None:
    if ids is None:
        return None
    unique = sorted(set(ids))
    if len(unique) != len(ids):
        raise JoinError(f"{label} contains duplicates")
    if unique and (unique[0] < 0 or unique[-1] >= n_documents):
        raise JoinError(f"{label} out of range 0..{n_documents - 1}")
    return unique


def resolve_outer_ids(
    environment: JoinEnvironment, outer_ids: Sequence[int] | None
) -> list[int] | None:
    """Validate and sort an explicit participating C2 document list."""
    return _resolve_ids(
        outer_ids, environment.collection2.n_documents, "outer_ids"
    )


def resolve_inner_ids(
    environment: JoinEnvironment, inner_ids: Sequence[int] | None
) -> list[int] | None:
    """Validate and sort an explicit participating C1 document list."""
    return _resolve_ids(
        inner_ids, environment.collection1.n_documents, "inner_ids"
    )


__all__ = [
    "JoinEnvironment",
    "JoinSide",
    "QueryParams",
    "SystemParams",
    "TextJoinResult",
    "TextJoinSpec",
    "resolve_inner_ids",
    "resolve_outer_ids",
    "scan_with_block_seeks",
]
