"""HVNL executor (paper Section 4.2).

For each outer (C2) document, probe the inner collection's inverted file:
look each term up in C1's B+-tree, fetch the inverted-file entry (unless
already resident), and accumulate ``U_i + w * w_i`` per inner document.
The entry buffer holds as many entries as fit after the outer document,
the B+-tree and the similarity accumulators are accounted for; the
default victim is the entry whose term has the **lowest document
frequency in C2** — the paper's replacement policy — with LRU/FIFO/random
available for the ablation.

The paper's resident-first optimisation is applied: a document's terms
whose entries are already buffered are processed before the terms that
need a fetch, so a term fetched for this document cannot evict an entry
this same document still needs.

The whole B+-tree is read in once up-front (Section 5.2's one-time
``Bt1`` charge).

Streaming: :func:`iter_hvnl` yields one
:class:`~repro.exec.stream.MatchBlock` per probed outer document — HVNL
finalises each document the moment its accumulator is ranked, which makes
it the natural operator for ``LIMIT``-bounded queries: an abandoned
stream fetches no further entries.  :func:`run_hvnl` is the materializing
:func:`~repro.exec.stream.collect` wrapper.
"""

from __future__ import annotations

import math
from typing import Iterator, Sequence

from repro.constants import TERM_NUMBER_BYTES
from repro.core.join import (
    JoinEnvironment,
    TextJoinResult,
    TextJoinSpec,
    resolve_inner_ids,
    resolve_outer_ids,
    scan_with_block_seeks,
)
from repro.core.topk import TopK
from repro.cost.params import QueryParams, SystemParams
from repro.errors import InsufficientMemoryError, JoinError
from repro.exec.context import ExecutionContext, ensure_context
from repro.exec.stream import MatchBlock, StreamSummary, collect
from repro.storage.buffer import ObjectBuffer
from repro.storage.policies import LowestDocFrequencyPolicy, ReplacementPolicy

BTREE_IO_LABEL = "c1.btree"


def iter_hvnl(
    environment: JoinEnvironment,
    spec: TextJoinSpec,
    system: SystemParams,
    *,
    outer_ids: Sequence[int] | None = None,
    inner_ids: Sequence[int] | None = None,
    interference: bool = False,
    delta: float = 0.1,
    policy: ReplacementPolicy | None = None,
    context: ExecutionContext | None = None,
) -> Iterator[MatchBlock]:
    """Execute HVNL, streaming one match block per probed outer document.

    ``delta`` sizes the similarity-accumulator reservation exactly as the
    cost model does (it does not limit the actual accumulation).
    ``inner_ids`` restricts the candidate pool: postings of filtered-out
    C1 documents are skipped during accumulation — the inverted file
    itself keeps its full size, the paper's Section 5.4 caveat.

    Being a generator, the memory-floor check raises
    :class:`~repro.errors.InsufficientMemoryError` at the first ``next``
    (or inside :func:`run_hvnl`), not at call time.
    """
    if environment.inverted1 is None or environment.btree1 is None:
        raise JoinError("HVNL needs the inverted file and B+-tree on C1")
    ctx = ensure_context(context)
    outer_ids = resolve_outer_ids(environment, outer_ids)
    inner_ids = resolve_inner_ids(environment, inner_ids)
    query = QueryParams(lam=spec.lam, delta=delta)

    disk = environment.disk
    io_start = disk.stats.snapshot()
    inv1_extent = environment.inv1_extent
    btree1 = environment.btree1
    docs2 = environment.docs2
    page_bytes = environment.geometry.page_bytes

    # --- memory budget (mirrors cost.hvnl.hvnl_memory_capacity) ------------
    btree_pages = math.ceil(btree1.size_in_pages(environment.geometry)) or 1
    stats2 = environment.stats2
    reserved_pages = (
        (math.ceil(stats2.S) if stats2.S > 0 else 0)
        + btree_pages
        + 4 * environment.collection1.n_documents * query.delta / page_bytes
    )
    budget_pages = system.buffer_pages - reserved_pages
    if budget_pages < 0:
        raise InsufficientMemoryError(
            f"HVNL needs {reserved_pages:.1f} pages reserved; "
            f"buffer is {system.buffer_pages}"
        )
    # Each resident entry also costs a |t#| slot in the resident-term list.
    budget_bytes = int(budget_pages * page_bytes)

    # `policy or default` would misfire here: an empty policy is falsy
    # (it implements __len__), so test identity against None.
    buffer = ObjectBuffer(
        budget_bytes, policy if policy is not None else LowestDocFrequencyPolicy()
    )
    df2 = environment.collection2.document_frequency()

    with environment.execution_scope(ctx):
        # One-time B+-tree read-in.
        with ctx.phase("hvnl.btree"):
            disk.stats.record(BTREE_IO_LABEL, sequential=btree_pages)

        # Section 5.2, case X >= T1: when the whole inverted file fits, the
        # algorithm may load it with one sequential scan instead of fetching
        # the needed entries at random — whichever the statistics say is
        # cheaper.  The estimate uses metadata only (no extra I/O).
        bulk_loaded = False
        inverted1 = environment.inverted1
        total_entry_bytes = sum(
            entry.n_bytes + TERM_NUMBER_BYTES for entry in inverted1.entries
        )
        if total_entry_bytes <= budget_bytes:
            stats1 = environment.stats1
            needed_entries = environment.measured_q() * environment.stats2.T
            entry_pages = math.ceil(stats1.J) if stats1.J > 0 else 1
            scan_cost = stats1.I
            fetch_cost = needed_entries * entry_pages * system.alpha
            if scan_cost <= fetch_cost:
                # One continuous sequential read — the hvr formula keeps the
                # I1 term sequential even in the worst-case scenario.
                with ctx.phase("hvnl.bulk-load"):
                    for span, entry in disk.scan_records(
                        inv1_extent, interference=False
                    ):
                        ctx.checkpoint()
                        buffer.insert(
                            entry.term,
                            entry,
                            entry.n_bytes + TERM_NUMBER_BYTES,
                            priority=df2.get(entry.term, 0),
                        )
                bulk_loaded = True

        # --- outer document stream --------------------------------------------
        selected = (
            outer_ids is not None
            and len(outer_ids) < environment.collection2.n_documents
        )
        if selected:
            per_doc_pages = math.ceil(stats2.S) if stats2.S > 0 else 0
            if len(outer_ids) * per_doc_pages * system.alpha >= stats2.D:
                # Scan-and-filter beats random fetches (the model's min).
                participating_set = set(outer_ids)
                outer_stream = (
                    (span.record_id, doc)
                    for span, doc in disk.scan_records(
                        docs2, interference=interference
                    )
                    if span.record_id in participating_set
                )
            else:
                outer_stream = (
                    (doc_id, disk.read_record(docs2, doc_id))
                    for doc_id in outer_ids
                )
        elif interference:
            # Worst case with spare memory (Section 5.2's hvr, cases 1-2):
            # entry capacity beyond the resident working set buffers blocks
            # of C2, one seek per block; with no spare capacity every
            # document read can seek (case 3).
            stats1 = environment.stats1
            per_entry_pages = stats1.J + TERM_NUMBER_BYTES / page_bytes
            capacity = (
                (budget_bytes / page_bytes / per_entry_pages)
                if per_entry_pages > 0
                else 0.0
            )
            working_set = (
                float(stats1.T)
                if bulk_loaded
                else min(
                    environment.measured_q() * environment.stats2.T,
                    float(stats1.T),
                )
            )
            leftover_pages = max(0.0, capacity - working_set) * stats1.J
            if leftover_pages >= 1.0:
                outer_stream = (
                    (span.record_id, doc)
                    for span, doc in scan_with_block_seeks(
                        disk, docs2, leftover_pages
                    )
                )
            else:
                outer_stream = (
                    (span.record_id, doc)
                    for span, doc in disk.scan_records(docs2, interference=True)
                )
        else:
            outer_stream = (
                (span.record_id, doc)
                for span, doc in disk.scan_records(docs2, interference=False)
            )

        norms1 = environment.norms1() if spec.normalized else None
        norms2 = environment.norms2() if spec.normalized else None
        kernels = environment.kernels
        n_inner_docs = environment.collection1.n_documents
        prepared_norms1 = kernels.prepare_norms(norms1, n_inner_docs)
        prepared_filter = kernels.prepare_filter(inner_ids, n_inner_docs)

        accumulator = kernels.sparse_scores(n_inner_docs, prepared_filter)
        entries_fetched = 0
        cpu_ops = 0  # posting accumulations, the unit of repro.cost.cpu

        while True:
            ctx.checkpoint()
            # The outer stream is lazy: advancing it performs this
            # document's read, so the pull itself is a scan phase.
            with ctx.phase("hvnl.outer-scan"):
                item = next(outer_stream, None)
            if item is None:
                break
            outer_id, outer_doc = item
            accumulator.clear()
            with ctx.phase("hvnl.probe"):
                # Resident-first term order (Section 4.2's reuse optimisation).
                resident_terms: list[tuple[int, int]] = []
                absent_terms: list[tuple[int, int]] = []
                for term, weight in outer_doc.cells:
                    (resident_terms if term in buffer else absent_terms).append(
                        (term, weight)
                    )

                for term, weight in resident_terms + absent_terms:
                    entry = buffer.get(term)
                    if entry is None:
                        location = btree1.search(term)
                        if location is None:
                            continue  # term does not appear in C1
                        record_id, _df1 = location
                        entry = disk.read_record(inv1_extent, record_id)
                        entries_fetched += 1
                        buffer.insert(
                            term,
                            entry,
                            entry.n_bytes + TERM_NUMBER_BYTES,
                            priority=df2.get(term, 0),
                        )
                    # One accumulation per posting before filtering, exactly
                    # as the original loop charged them.
                    cpu_ops += len(entry.postings)
                    accumulator.add_entry(entry, weight)

            tracker = TopK(spec.lam)
            outer_norm = norms2[outer_id] if norms2 is not None else 0.0
            for inner_id, similarity in accumulator.ranked_candidates(
                spec.lam, prepared_norms1, outer_norm
            ):
                tracker.offer(inner_id, similarity)
            # This outer document's accumulator is ranked: its top-lambda
            # set is final — emit before touching the next document.
            yield ctx.emit(
                MatchBlock(outer_doc=outer_id, matches=tuple(tracker.results()))
            )

    return StreamSummary(
        algorithm="HVNL",
        spec=spec,
        io=disk.stats.delta(io_start),
        extras={
            "entry_budget_bytes": budget_bytes,
            "bulk_loaded": bulk_loaded,
            "btree_pages": btree_pages,
            "entries_fetched": entries_fetched,
            "buffer_hits": buffer.hits,
            "buffer_misses": buffer.misses,
            "buffer_evictions": buffer.evictions,
            "buffer_hit_rate": buffer.hit_rate,
            "peak_accumulator_cells": accumulator.peak_cells,
            "interference": interference,
            "cpu_ops": cpu_ops,
        },
    )


def run_hvnl(
    environment: JoinEnvironment,
    spec: TextJoinSpec,
    system: SystemParams,
    *,
    outer_ids: Sequence[int] | None = None,
    inner_ids: Sequence[int] | None = None,
    interference: bool = False,
    delta: float = 0.1,
    policy: ReplacementPolicy | None = None,
    context: ExecutionContext | None = None,
) -> TextJoinResult:
    """Execute HVNL to completion (the materialized wrapper over
    :func:`iter_hvnl`)."""
    return collect(
        iter_hvnl(
            environment,
            spec,
            system,
            outer_ids=outer_ids,
            inner_ids=inner_ids,
            interference=interference,
            delta=delta,
            policy=policy,
            context=context,
        )
    )
