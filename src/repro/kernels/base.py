"""The kernel primitive interface shared by all backends.

One :class:`Kernels` instance is stateless and process-wide; all
per-run state lives in the small helper objects it constructs
(:class:`ChunkScorer`, the accumulators).  The operators drive the
primitives identically regardless of backend — only the arithmetic
inside is batched differently — which is what makes the
``kernel-equivalence`` conformance check meaningful: the scalar
backend *is* the pre-kernel operator loop, so agreeing with it means
agreeing with the original implementation.

Shapes and conventions:

* a *prepared filter* is the backend's representation of an optional
  ``inner_ids`` candidate set (``None`` means "no filter");
* *prepared norms* represent the optional pre-computed document norms
  of the candidate side (``None`` means "unnormalised query");
* every candidate iterator yields ``(key, similarity)`` pairs in
  deterministic order, where ``key`` is a document id (scorer rows,
  accumulators) or a chunk position (:meth:`ChunkScorer.floor_candidates`);
* ``floor`` arguments implement the strict-dominance cut: a candidate
  whose similarity is strictly below the floor is provably outside the
  final top-``lambda`` set and may be dropped without changing results.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

from repro.text.document import Document


class ChunkScorer:
    """Scores one buffered chunk of documents against streamed documents.

    Built once per operator chunk.  Two access patterns:

    * HHNL forward: :meth:`collect` one column per streamed inner
      document, then :meth:`ranked_candidates` per chunk row once the
      scan completes;
    * HHNL backward: :meth:`floor_candidates` per streamed document,
      scoring it against the chunk immediately (the chunk-side trackers
      persist across chunks, so their running thresholds are the floor).
    """

    #: sum of ``n_terms`` over the chunk (HHNL's per-inner-doc CPU term)
    total_terms: int

    def collect(self, doc: Document) -> None:
        """Score ``doc`` against the whole chunk and retain the column."""
        raise NotImplementedError

    def ranked_candidates(
        self,
        position: int,
        lam: int,
        other_norms: Any | None,
        chunk_norm: float,
    ) -> Iterable[tuple[int, float]]:
        """Surviving ``(doc_id, similarity)`` pairs for one chunk row.

        Yields, in collection order, every collected document whose raw
        similarity with the chunk document at ``position`` is positive —
        backends may pre-cut to the documents that can still make a
        top-``lam`` set.  Similarities are normalised when
        ``other_norms`` is given.
        """
        raise NotImplementedError

    def set_chunk_norms(self, norms: Sequence[float] | None) -> None:
        """Install per-position norms for :meth:`floor_candidates`."""
        raise NotImplementedError

    def floor_candidates(
        self, doc: Document, floor: float, doc_norm: float
    ) -> Iterable[tuple[int, float]]:
        """Surviving ``(position, similarity)`` pairs for one streamed doc.

        Position order; candidates strictly below ``floor`` may be
        dropped.  Norms installed via :meth:`set_chunk_norms` apply to
        the chunk side, ``doc_norm`` to the streamed document.
        """
        raise NotImplementedError


class SparseScores:
    """HVNL's per-outer-document accumulator behind a batch interface."""

    #: largest number of simultaneously non-zero cells ever held
    peak_cells: int

    def add_entry(self, entry: Any, weight: int) -> None:
        """``U_i += weight * w_i`` over one inverted entry's postings."""
        raise NotImplementedError

    def clear(self) -> None:
        """Reset for the next outer document (peak is preserved)."""
        raise NotImplementedError

    def ranked_candidates(
        self, lam: int, other_norms: Any | None, outer_norm: float
    ) -> Iterable[tuple[int, float]]:
        """Surviving ``(inner_id, similarity)`` pairs of this accumulator."""
        raise NotImplementedError


class PairScores:
    """VVM's all-pairs accumulator behind a batch interface."""

    #: largest number of simultaneously non-zero cells ever held
    peak_cells: int

    def begin_chunk(self, chunk: Sequence[int]) -> None:
        """Announce the outer documents of the coming merge pass.

        Called after :meth:`clear`; backends may use it to pre-size
        storage.  The default is a no-op.
        """

    def add_block(self, outer_batch: Any, inner_batch: Any) -> None:
        """``U_pq += u_p * w_q`` over one term's outer x inner batches.

        Both arguments are prepared posting batches
        (:meth:`Kernels.entry_batch`); every (outer, inner) pair of the
        cross product contributes one term-wise product.
        """
        raise NotImplementedError

    def clear(self) -> None:
        """Reset between merge passes (peak is preserved)."""
        raise NotImplementedError

    def row_ranked(
        self, outer_doc: int, lam: int, other_norms: Any | None, outer_norm: float
    ) -> Iterable[tuple[int, float]]:
        """Surviving ``(inner_id, similarity)`` pairs of one outer row."""
        raise NotImplementedError


class Kernels:
    """One batch-arithmetic backend; stateless and safe to share."""

    name: str = "base"

    # --- preparation -------------------------------------------------------

    def prepare_filter(self, ids: Sequence[int] | None, n_docs: int) -> Any:
        """Backend representation of an optional candidate-id filter."""
        raise NotImplementedError

    def prepare_norms(
        self, norms: Mapping[int, float] | None, n_docs: int
    ) -> Any:
        """Backend representation of optional per-document norms."""
        raise NotImplementedError

    def entry_batch(self, entry: Any, prepared_filter: Any) -> Any:
        """A (filtered) posting batch for :meth:`PairScores.add_block`.

        The returned object supports ``len()`` — the number of surviving
        postings, which drives VVM's posting-pair CPU charge.
        """
        raise NotImplementedError

    # --- constructors ------------------------------------------------------

    def chunk_scorer(self, docs: Sequence[Document]) -> ChunkScorer:
        """A scorer over one buffered chunk of documents (HHNL)."""
        raise NotImplementedError

    def sparse_scores(self, n_docs: int, prepared_filter: Any) -> SparseScores:
        """A per-outer-document sparse accumulator (HVNL)."""
        raise NotImplementedError

    def pair_scores(self, n_docs: int) -> PairScores:
        """An all-pairs accumulator over ``chunk x n_docs`` (VVM)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


__all__ = ["ChunkScorer", "Kernels", "PairScores", "SparseScores"]
