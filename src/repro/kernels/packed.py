"""The stdlib kernel backend: term-indexed chunk tables, no dependencies.

Instead of merging every (chunk document, streamed document) pair of
sorted cell vectors, the chunk is transposed once into a per-term table
``{term: [(position, weight), ...]}``.  Scoring a streamed document is
then one dictionary lookup per *document* term plus one multiply-add
per actual match — the same integer arithmetic as the scalar backend
(so results are bit-identical), with the quadratic pair merge replaced
by work proportional to matches.

Accumulator primitives reuse the scalar implementations: their inner
loops are already dictionary updates, which is the best pure-Python
shape for sparse accumulation.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

from repro.kernels.base import ChunkScorer
from repro.kernels.scalar import ScalarKernels
from repro.text.document import Document


class StdlibChunkScorer(ChunkScorer):
    """Chunk transposed into a term table; one lookup per streamed term."""

    def __init__(self, docs: Sequence[Document]) -> None:
        self._docs = list(docs)
        self.total_terms = sum(doc.n_terms for doc in self._docs)
        index: dict[int, list[tuple[int, int]]] = {}
        for position, doc in enumerate(self._docs):
            for term, weight in doc.cells:
                index.setdefault(term, []).append((position, weight))
        self._index = index
        self._columns: list[list[int]] = []
        self._scored_ids: list[int] = []
        self._chunk_norms: Sequence[float] | None = None

    def _score(self, doc: Document) -> list[int]:
        scores = [0] * len(self._docs)
        index = self._index
        for term, weight in doc.cells:
            cells = index.get(term)
            if cells is None:
                continue
            for position, chunk_weight in cells:
                scores[position] += chunk_weight * weight
        return scores

    def collect(self, doc: Document) -> None:
        self._columns.append(self._score(doc))
        self._scored_ids.append(doc.doc_id)

    def ranked_candidates(
        self,
        position: int,
        lam: int,
        other_norms: Mapping[int, float] | None,
        chunk_norm: float,
    ) -> Iterator[tuple[int, float]]:
        for index, doc_id in enumerate(self._scored_ids):
            value = self._columns[index][position]
            if value <= 0:
                continue
            similarity = float(value)
            if other_norms is not None:
                denominator = other_norms[doc_id] * chunk_norm
                similarity = similarity / denominator if denominator else 0.0
            yield doc_id, similarity

    def set_chunk_norms(self, norms: Sequence[float] | None) -> None:
        self._chunk_norms = norms

    def floor_candidates(
        self, doc: Document, floor: float, doc_norm: float
    ) -> Iterator[tuple[int, float]]:
        norms = self._chunk_norms
        for position, value in enumerate(self._score(doc)):
            if value <= 0:
                continue
            similarity = float(value)
            if norms is not None:
                denominator = norms[position] * doc_norm
                similarity = similarity / denominator if denominator else 0.0
            # Strict-dominance cut: the tracker's threshold only rises, so
            # a candidate strictly below the floor can never be retained.
            if similarity < floor:
                continue
            yield position, similarity


class StdlibKernels(ScalarKernels):
    """Dependency-free batch backend; accumulators inherit from scalar."""

    name = "stdlib"

    def chunk_scorer(self, docs: Sequence[Document]) -> StdlibChunkScorer:
        return StdlibChunkScorer(docs)


__all__ = ["StdlibChunkScorer", "StdlibKernels"]
