"""The scalar kernel backend: the operators' original loops, verbatim.

This backend exists to *be compared against*: its arithmetic is the
exact per-pair / per-posting Python the operators ran before the kernel
layer, so any batch backend that matches it bit-for-bit (the
``kernel-equivalence`` conformance check) matches the pre-kernel
implementation.  It applies no candidate pre-cuts — every positive
similarity is surfaced, exactly as the original loops offered them.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping, Sequence

from repro.core.accumulator import PairAccumulator, SparseAccumulator
from repro.kernels.base import ChunkScorer, Kernels, PairScores, SparseScores
from repro.text.document import Document
from repro.text.similarity import dot_product


class ScalarChunkScorer(ChunkScorer):
    """Per-pair :func:`~repro.text.similarity.dot_product`, one column at a time."""

    def __init__(self, docs: Sequence[Document]) -> None:
        self._docs = list(docs)
        self.total_terms = sum(doc.n_terms for doc in self._docs)
        self._columns: list[list[float]] = []
        self._scored_ids: list[int] = []
        self._chunk_norms: Sequence[float] | None = None

    def collect(self, doc: Document) -> None:
        self._columns.append([dot_product(outer, doc) for outer in self._docs])
        self._scored_ids.append(doc.doc_id)

    def ranked_candidates(
        self,
        position: int,
        lam: int,
        other_norms: Mapping[int, float] | None,
        chunk_norm: float,
    ) -> Iterator[tuple[int, float]]:
        for index, doc_id in enumerate(self._scored_ids):
            similarity = self._columns[index][position]
            if similarity <= 0.0:
                continue
            if other_norms is not None:
                denominator = other_norms[doc_id] * chunk_norm
                similarity = similarity / denominator if denominator else 0.0
            yield doc_id, similarity

    def set_chunk_norms(self, norms: Sequence[float] | None) -> None:
        self._chunk_norms = norms

    def floor_candidates(
        self, doc: Document, floor: float, doc_norm: float
    ) -> Iterator[tuple[int, float]]:
        norms = self._chunk_norms
        for position, chunk_doc in enumerate(self._docs):
            similarity = dot_product(doc, chunk_doc)
            if similarity <= 0.0:
                continue
            if norms is not None:
                denominator = norms[position] * doc_norm
                similarity = similarity / denominator if denominator else 0.0
            yield position, similarity


class ScalarSparseScores(SparseScores):
    """HVNL's original accumulation loop over a :class:`SparseAccumulator`."""

    def __init__(self, prepared_filter: frozenset[int] | None) -> None:
        self._accumulator = SparseAccumulator()
        self._filter = prepared_filter

    @property
    def peak_cells(self) -> int:
        return self._accumulator.peak_cells

    def add_entry(self, entry: Any, weight: int) -> None:
        accumulator = self._accumulator
        if self._filter is None:
            for inner_id, inner_weight in entry.postings:
                accumulator.add(inner_id, weight * inner_weight)
        else:
            inner_filter = self._filter
            for inner_id, inner_weight in entry.postings:
                if inner_id in inner_filter:
                    accumulator.add(inner_id, weight * inner_weight)

    def clear(self) -> None:
        self._accumulator.clear()

    def ranked_candidates(
        self, lam: int, other_norms: Mapping[int, float] | None, outer_norm: float
    ) -> Iterator[tuple[int, float]]:
        if other_norms is None:
            yield from self._accumulator.items()
            return
        for inner_id, similarity in self._accumulator.items():
            denominator = other_norms[inner_id] * outer_norm
            yield inner_id, similarity / denominator if denominator else 0.0


class ScalarPairScores(PairScores):
    """VVM's original posting-pair loop over a :class:`PairAccumulator`."""

    def __init__(self) -> None:
        self._accumulator = PairAccumulator()

    @property
    def peak_cells(self) -> int:
        return self._accumulator.peak_cells

    def add_block(
        self,
        outer_batch: tuple[tuple[int, int], ...],
        inner_batch: tuple[tuple[int, int], ...],
    ) -> None:
        accumulator = self._accumulator
        for outer_doc, outer_weight in outer_batch:
            for inner_doc, inner_weight in inner_batch:
                accumulator.add(outer_doc, inner_doc, outer_weight * inner_weight)

    def clear(self) -> None:
        self._accumulator.clear()

    def row_ranked(
        self,
        outer_doc: int,
        lam: int,
        other_norms: Mapping[int, float] | None,
        outer_norm: float,
    ) -> Iterator[tuple[int, float]]:
        row = self._accumulator.row(outer_doc)
        if other_norms is None:
            yield from row.items()
            return
        for inner_doc, similarity in row.items():
            denominator = other_norms[inner_doc] * outer_norm
            yield inner_doc, similarity / denominator if denominator else 0.0


class ScalarKernels(Kernels):
    """Reference backend: pure-Python loops, no packing, no pre-cuts."""

    name = "scalar"

    def prepare_filter(
        self, ids: Sequence[int] | None, n_docs: int
    ) -> frozenset[int] | None:
        return None if ids is None else frozenset(ids)

    def prepare_norms(
        self, norms: Mapping[int, float] | None, n_docs: int
    ) -> Mapping[int, float] | None:
        return norms

    def entry_batch(
        self, entry: Any, prepared_filter: frozenset[int] | None
    ) -> tuple[tuple[int, int], ...]:
        postings: tuple[tuple[int, int], ...] = entry.postings
        if prepared_filter is None:
            return postings
        return tuple(cell for cell in postings if cell[0] in prepared_filter)

    def chunk_scorer(self, docs: Sequence[Document]) -> ScalarChunkScorer:
        return ScalarChunkScorer(docs)

    def sparse_scores(
        self, n_docs: int, prepared_filter: frozenset[int] | None
    ) -> ScalarSparseScores:
        return ScalarSparseScores(prepared_filter)

    def pair_scores(self, n_docs: int) -> ScalarPairScores:
        return ScalarPairScores()


__all__ = [
    "ScalarChunkScorer",
    "ScalarKernels",
    "ScalarPairScores",
    "ScalarSparseScores",
]
