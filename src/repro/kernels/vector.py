"""The numpy kernel backend: deferred bulk scoring over packed arrays.

Documents and inverted entries are packed once into sorted ``int64``
``(terms, weights)`` array pairs, cached on the object's ``_packed``
slot (tagged with the backend name so backends can alternate on shared
objects without reading each other's caches).  The expensive primitive
is never the single pair — it is the *bulk* op:

* chunk scoring — :meth:`VectorChunkScorer.collect` only buffers the
  streamed document's pack; when the chunk is ranked, one sparse
  term-join (``searchsorted`` + ragged expansion + ``bincount``) scores
  the whole chunk against every collected document at once;
* sparse accumulation — :meth:`VectorSparseScores.add_entry` only
  buffers entry packs; the ranking flush concatenates them and folds
  them into a dense score row with one ``bincount``;
* pair accumulation — :meth:`VectorPairScores.add_block` buffers the
  (outer, inner) batch pair per matched term; the flush expands every
  ragged cross product in one shot into a chunk x collection matrix.

All arithmetic is exact: weights are positive integers, every score is
a sum of integer products far below ``2**53``, and float64 represents
such sums exactly regardless of accumulation order, so similarities
are bit-identical to the scalar backend's.  Ranking applies the
strict-dominance pre-cut (``partition`` for the ``lambda``-th value,
ties kept): only candidates that provably cannot enter the final
top-``lambda`` set are dropped, so offered-set purity of
:class:`~repro.core.topk.TopK` guarantees identical results.

Peak-cell accounting matches the scalar accumulators because every
contribution is positive: the number of non-zero cells after a flush
equals the number of distinct cells the scalar backend would have
touched, and cell counts only grow within a pass.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping, Sequence

import numpy as np

from repro.kernels.base import ChunkScorer, Kernels, PairScores, SparseScores
from repro.text.document import Document

_TAG = "numpy"

#: dense pair-matrix cells beyond which VVM accumulation falls back to
#: lazily-allocated per-row storage (keeps worst-case memory bounded)
DENSE_CELL_LIMIT = 1 << 24


def _pack_cells(
    obj: Any, cells: Sequence[tuple[int, int]]
) -> tuple[np.ndarray, np.ndarray]:
    """Sorted ``(keys, weights)`` int64 arrays, cached on ``obj``."""
    packed = obj._packed
    if packed is not None and packed[0] == _TAG:
        return packed[1]
    count = len(cells)
    keys = np.fromiter((cell[0] for cell in cells), dtype=np.int64, count=count)
    weights = np.fromiter((cell[1] for cell in cells), dtype=np.int64, count=count)
    obj._packed = (_TAG, (keys, weights))
    return keys, weights


def _pack_document(doc: Document) -> tuple[np.ndarray, np.ndarray]:
    return _pack_cells(doc, doc.cells)


def _pack_entry(entry: Any) -> tuple[np.ndarray, np.ndarray]:
    return _pack_cells(entry, entry.postings)


def _top_lambda_mask(sims: np.ndarray, lam: int) -> np.ndarray | None:
    """Mask keeping candidates that can still make a top-``lam`` set.

    Keeps every candidate whose similarity ties or beats the ``lam``-th
    largest; anything strictly below it has ``lam`` strictly better
    competitors and can never be retained by the tracker.
    """
    count = len(sims)
    if lam <= 0 or count <= lam:
        return None
    kth = np.partition(sims, count - lam)[count - lam]
    return sims >= kth


def _normalized(
    sims: np.ndarray, denominators: np.ndarray
) -> np.ndarray:
    """Elementwise IEEE division with the scalar zero-denominator rule."""
    return np.divide(
        sims, denominators, out=np.zeros(len(sims)), where=denominators != 0
    )


class _PostingBatch:
    """A filtered posting batch: parallel id/weight arrays with a length."""

    __slots__ = ("ids", "weights")

    def __init__(self, ids: np.ndarray, weights: np.ndarray) -> None:
        self.ids = ids
        self.weights = weights

    def __len__(self) -> int:
        return len(self.ids)


class VectorChunkScorer(ChunkScorer):
    """Buffers streamed packs; one sparse term-join scores the chunk."""

    def __init__(self, docs: Sequence[Document]) -> None:
        self._docs = list(docs)
        self.total_terms = sum(doc.n_terms for doc in self._docs)
        packs = [_pack_document(doc) for doc in self._docs]
        if packs and self.total_terms:
            cat_terms = np.concatenate([terms for terms, _ in packs])
            cat_weights = np.concatenate([weights for _, weights in packs])
            counts = np.fromiter(
                (len(terms) for terms, _ in packs), dtype=np.int64, count=len(packs)
            )
            positions = np.repeat(np.arange(len(packs)), counts)
            # One term-sorted view of the whole chunk: the join side of
            # every later searchsorted.
            order = np.argsort(cat_terms, kind="stable")
            self._chunk_terms = cat_terms[order]
            self._chunk_weights = cat_weights[order]
            self._chunk_positions = positions[order]
        else:
            self._chunk_terms = np.empty(0, dtype=np.int64)
            self._chunk_weights = np.empty(0, dtype=np.int64)
            self._chunk_positions = np.empty(0, dtype=np.int64)
        self._collected: list[tuple[np.ndarray, np.ndarray]] = []
        self._scored_ids: list[int] = []
        self._matrix: np.ndarray | None = None
        self._ids_array: np.ndarray | None = None
        self._chunk_norms: np.ndarray | None = None

    def collect(self, doc: Document) -> None:
        self._collected.append(_pack_document(doc))
        self._scored_ids.append(doc.doc_id)
        self._matrix = None

    def _ensure_matrix(self) -> None:
        """Score chunk x collected in one sparse term-join."""
        if self._matrix is not None:
            return
        n_chunk = len(self._docs)
        n_collected = len(self._collected)
        self._ids_array = np.asarray(self._scored_ids, dtype=np.int64)
        if n_collected == 0 or len(self._chunk_terms) == 0:
            self._matrix = np.zeros((n_chunk, max(n_collected, 1)))
            return
        terms = np.concatenate([pack[0] for pack in self._collected])
        weights = np.concatenate([pack[1] for pack in self._collected])
        lengths = np.fromiter(
            (len(pack[0]) for pack in self._collected),
            dtype=np.int64,
            count=n_collected,
        )
        columns = np.repeat(np.arange(n_collected), lengths)
        self._matrix = _sparse_term_join(
            self._chunk_terms,
            self._chunk_weights,
            self._chunk_positions,
            n_chunk,
            terms,
            weights,
            columns,
            n_collected,
        )

    def ranked_candidates(
        self,
        position: int,
        lam: int,
        other_norms: np.ndarray | None,
        chunk_norm: float,
    ) -> Iterator[tuple[int, float]]:
        if not self._collected:
            return
        self._ensure_matrix()
        values = self._matrix[position]
        positive = values > 0
        ids = self._ids_array[positive]
        sims = values[positive]
        if other_norms is not None:
            sims = _normalized(sims, other_norms[ids] * chunk_norm)
        keep = _top_lambda_mask(sims, lam)
        if keep is not None:
            ids = ids[keep]
            sims = sims[keep]
        yield from zip(ids.tolist(), sims.tolist())

    def set_chunk_norms(self, norms: Sequence[float] | None) -> None:
        self._chunk_norms = (
            None if norms is None else np.asarray(norms, dtype=np.float64)
        )

    def floor_candidates(
        self, doc: Document, floor: float, doc_norm: float
    ) -> Iterator[tuple[int, float]]:
        n_chunk = len(self._docs)
        doc_terms, doc_weights = _pack_document(doc)
        if len(doc_terms) == 0 or len(self._chunk_terms) == 0:
            return
        found = np.searchsorted(doc_terms, self._chunk_terms)
        clipped = np.minimum(found, len(doc_terms) - 1)
        valid = doc_terms[clipped] == self._chunk_terms
        contrib = self._chunk_weights[valid] * doc_weights[clipped[valid]]
        values = np.bincount(
            self._chunk_positions[valid], weights=contrib, minlength=n_chunk
        )
        positive = values > 0
        positions = np.nonzero(positive)[0]
        sims = values[positive]
        if self._chunk_norms is not None:
            sims = _normalized(sims, self._chunk_norms[positions] * doc_norm)
        if floor > 0.0:
            # Strict-dominance cut: the tracker's threshold only rises, so
            # a candidate strictly below the floor can never be retained.
            keep = sims >= floor
            positions = positions[keep]
            sims = sims[keep]
        yield from zip(positions.tolist(), sims.tolist())


def _sparse_term_join(
    join_terms: np.ndarray,
    join_weights: np.ndarray,
    join_rows: np.ndarray,
    n_rows: int,
    terms: np.ndarray,
    weights: np.ndarray,
    columns: np.ndarray,
    n_columns: int,
) -> np.ndarray:
    """Dense ``n_rows x n_columns`` score matrix of a ragged term join.

    ``join_*`` is one term-sorted cell multiset (row id per cell);
    ``terms``/``weights``/``columns`` is another (column id per cell).
    Every pair of cells sharing a term contributes the product of its
    weights to ``matrix[row, column]`` — exactly the all-pairs dot
    products, evaluated as one scatter-add.
    """
    left = np.searchsorted(join_terms, terms, side="left")
    right = np.searchsorted(join_terms, terms, side="right")
    counts = right - left
    total = int(counts.sum())
    matrix_cells = n_rows * n_columns
    if total == 0:
        return np.zeros((n_rows, n_columns))
    source = np.repeat(np.arange(len(terms)), counts)
    starts = np.cumsum(counts) - counts
    join_index = np.repeat(left - starts, counts) + np.arange(total)
    contrib = join_weights[join_index] * weights[source]
    flat = join_rows[join_index] * n_columns + columns[source]
    return np.bincount(flat, weights=contrib, minlength=matrix_cells).reshape(
        n_rows, n_columns
    )


class VectorSparseScores(SparseScores):
    """Buffers entry packs; one concatenated bincount per ranking flush."""

    def __init__(self, n_docs: int, prepared_filter: np.ndarray | None) -> None:
        self._n_docs = n_docs
        self._filter = prepared_filter
        self._batches: list[tuple[np.ndarray, np.ndarray]] = []
        self._outer_weights: list[int] = []
        self._scores: np.ndarray | None = None
        self.peak_cells = 0

    def add_entry(self, entry: Any, weight: int) -> None:
        self._batches.append(_pack_entry(entry))
        self._outer_weights.append(weight)
        self._scores = None

    def clear(self) -> None:
        self._batches.clear()
        self._outer_weights.clear()
        self._scores = None

    def _flush(self) -> np.ndarray:
        if self._scores is not None:
            return self._scores
        if not self._batches:
            scores = np.zeros(self._n_docs)
        else:
            ids = np.concatenate([batch[0] for batch in self._batches])
            weights = np.concatenate([batch[1] for batch in self._batches])
            lengths = np.fromiter(
                (len(batch[0]) for batch in self._batches),
                dtype=np.int64,
                count=len(self._batches),
            )
            outer = np.repeat(
                np.asarray(self._outer_weights, dtype=np.int64), lengths
            )
            contrib = outer * weights
            if self._filter is not None:
                allowed = self._filter[ids]
                ids = ids[allowed]
                contrib = contrib[allowed]
            scores = np.bincount(ids, weights=contrib, minlength=self._n_docs)
        self._scores = scores
        # Contributions are positive integer products, so the non-zero
        # cells are exactly the cells the scalar accumulator touched.
        cells = int(np.count_nonzero(scores))
        if cells > self.peak_cells:
            self.peak_cells = cells
        return scores

    def ranked_candidates(
        self, lam: int, other_norms: np.ndarray | None, outer_norm: float
    ) -> Iterator[tuple[int, float]]:
        scores = self._flush()
        ids = np.nonzero(scores)[0]
        sims = scores[ids]
        if other_norms is not None:
            sims = _normalized(sims, other_norms[ids] * outer_norm)
        keep = _top_lambda_mask(sims, lam)
        if keep is not None:
            ids = ids[keep]
            sims = sims[keep]
        yield from zip(ids.tolist(), sims.tolist())


class VectorPairScores(PairScores):
    """Buffers batch pairs per matched term; one ragged cross-product flush.

    When the chunk's dense matrix (``len(chunk) x n_docs``) stays under
    :data:`DENSE_CELL_LIMIT` cells, the flush expands every buffered
    cross product into one flat scatter-add.  Above the limit it falls
    back to lazily-allocated dense rows updated batch-by-batch — slower,
    but memory-proportional to the rows actually touched.
    """

    def __init__(self, n_docs: int) -> None:
        self._n_docs = n_docs
        self._chunk_rows: dict[int, int] = {}
        self._blocks: list[tuple[_PostingBatch, _PostingBatch]] = []
        self._matrix: np.ndarray | None = None
        self._rows: dict[int, np.ndarray] = {}
        self._touched: dict[int, np.ndarray] = {}
        self._row_cells = 0
        self._dense = True
        self.peak_cells = 0

    def begin_chunk(self, chunk: Sequence[int]) -> None:
        self._chunk_rows = {doc_id: row for row, doc_id in enumerate(chunk)}
        self._dense = len(chunk) * self._n_docs <= DENSE_CELL_LIMIT

    def add_block(
        self, outer_batch: _PostingBatch, inner_batch: _PostingBatch
    ) -> None:
        if self._dense:
            self._blocks.append((outer_batch, inner_batch))
            self._matrix = None
            return
        row_of = self._chunk_rows
        inner_ids = inner_batch.ids
        inner_weights = inner_batch.weights
        for outer_doc, outer_weight in zip(
            outer_batch.ids.tolist(), outer_batch.weights.tolist()
        ):
            row = self._rows.get(outer_doc)
            if row is None:
                row = np.zeros(self._n_docs)
                self._rows[outer_doc] = row
                self._touched[outer_doc] = np.zeros(self._n_docs, dtype=bool)
            touched = self._touched[outer_doc]
            row[inner_ids] += outer_weight * inner_weights
            fresh = int(len(inner_ids) - np.count_nonzero(touched[inner_ids]))
            if fresh:
                touched[inner_ids] = True
                self._row_cells += fresh
                if self._row_cells > self.peak_cells:
                    self.peak_cells = self._row_cells

    def clear(self) -> None:
        self._blocks.clear()
        self._matrix = None
        self._rows.clear()
        self._touched.clear()
        self._row_cells = 0
        self._chunk_rows = {}

    def _flush(self) -> np.ndarray:
        if self._matrix is not None:
            return self._matrix
        n_rows = max(len(self._chunk_rows), 1)
        n_docs = self._n_docs
        if not self._blocks:
            matrix = np.zeros((n_rows, n_docs))
        else:
            outer_sizes = np.fromiter(
                (len(block[0]) for block in self._blocks),
                dtype=np.int64,
                count=len(self._blocks),
            )
            inner_sizes = np.fromiter(
                (len(block[1]) for block in self._blocks),
                dtype=np.int64,
                count=len(self._blocks),
            )
            outer_ids = np.concatenate([block[0].ids for block in self._blocks])
            outer_weights = np.concatenate(
                [block[0].weights for block in self._blocks]
            )
            inner_starts = np.cumsum(inner_sizes) - inner_sizes
            # Per outer posting: repeat it across its block's inner batch.
            per_outer = np.repeat(inner_sizes, outer_sizes)
            outer_start = np.repeat(inner_starts, outer_sizes)
            total = int(per_outer.sum())
            rows = np.fromiter(
                (self._chunk_rows[doc] for doc in outer_ids.tolist()),
                dtype=np.int64,
                count=len(outer_ids),
            )
            cross_starts = np.cumsum(per_outer) - per_outer
            offsets = np.arange(total) - np.repeat(cross_starts, per_outer)
            inner_index = np.repeat(outer_start, per_outer) + offsets
            inner_ids = np.concatenate([block[1].ids for block in self._blocks])
            inner_weights = np.concatenate(
                [block[1].weights for block in self._blocks]
            )
            contrib = np.repeat(outer_weights, per_outer) * inner_weights[inner_index]
            flat = np.repeat(rows, per_outer) * n_docs + inner_ids[inner_index]
            matrix = np.bincount(
                flat, weights=contrib, minlength=n_rows * n_docs
            ).reshape(n_rows, n_docs)
        self._matrix = matrix
        # Positive contributions: non-zero cells == distinct touched cells.
        cells = int(np.count_nonzero(matrix))
        if cells > self.peak_cells:
            self.peak_cells = cells
        return matrix

    def row_ranked(
        self,
        outer_doc: int,
        lam: int,
        other_norms: np.ndarray | None,
        outer_norm: float,
    ) -> Iterator[tuple[int, float]]:
        if self._dense:
            row_index = self._chunk_rows.get(outer_doc)
            if row_index is None:
                return
            row = self._flush()[row_index]
            ids = np.nonzero(row)[0]
            sims = row[ids]
        else:
            row = self._rows.get(outer_doc)
            if row is None:
                return
            ids = np.nonzero(self._touched[outer_doc])[0]
            sims = row[ids]
        if other_norms is not None:
            sims = _normalized(sims, other_norms[ids] * outer_norm)
        keep = _top_lambda_mask(sims, lam)
        if keep is not None:
            ids = ids[keep]
            sims = sims[keep]
        if other_norms is None:
            # The scalar accumulator yields plain int sums when no
            # normalization runs; the float64 cells hold those sums
            # exactly, so the cast preserves byte identity of the
            # rendered similarity, not just its value.
            sims = sims.astype(np.int64)
        yield from zip(ids.tolist(), sims.tolist())


class VectorKernels(Kernels):
    """Vectorised backend; requires numpy at import time."""

    name = "numpy"

    def prepare_filter(
        self, ids: Sequence[int] | None, n_docs: int
    ) -> np.ndarray | None:
        if ids is None:
            return None
        mask = np.zeros(n_docs, dtype=bool)
        if len(ids):
            mask[np.asarray(list(ids), dtype=np.int64)] = True
        return mask

    def prepare_norms(
        self, norms: Mapping[int, float] | None, n_docs: int
    ) -> np.ndarray | None:
        if norms is None:
            return None
        out = np.zeros(n_docs)
        if norms:
            keys = np.fromiter(norms.keys(), dtype=np.int64, count=len(norms))
            values = np.fromiter(norms.values(), dtype=np.float64, count=len(norms))
            out[keys] = values
        return out

    def entry_batch(
        self, entry: Any, prepared_filter: np.ndarray | None
    ) -> _PostingBatch:
        ids, weights = _pack_entry(entry)
        if prepared_filter is not None:
            allowed = prepared_filter[ids]
            ids = ids[allowed]
            weights = weights[allowed]
        return _PostingBatch(ids, weights)

    def chunk_scorer(self, docs: Sequence[Document]) -> VectorChunkScorer:
        return VectorChunkScorer(docs)

    def sparse_scores(
        self, n_docs: int, prepared_filter: np.ndarray | None
    ) -> VectorSparseScores:
        return VectorSparseScores(n_docs, prepared_filter)

    def pair_scores(self, n_docs: int) -> VectorPairScores:
        return VectorPairScores(n_docs)


__all__ = [
    "DENSE_CELL_LIMIT",
    "VectorChunkScorer",
    "VectorKernels",
    "VectorPairScores",
    "VectorSparseScores",
]
