"""Batch scoring kernels: the operators' numeric inner loops, pluggable.

The join operators (:mod:`repro.core.hhnl`, :mod:`repro.core.hvnl`,
:mod:`repro.core.vvm`) spend their wall-clock in three tight loops —
chunk-versus-document dot products, per-entry posting accumulation and
all-pairs posting products.  This package factors those loops into a
small primitive interface (:class:`~repro.kernels.base.Kernels`) with
three interchangeable backends:

* ``scalar`` — the reference implementation: the operators' original
  pure-Python loops, moved here verbatim.  Every other backend is
  checked against it (the ``kernel-equivalence`` conformance check).
* ``stdlib`` — packed lookup tables over the same arithmetic; a modest
  constant-factor win with zero dependencies.
* ``numpy`` — vectorised batches over packed ``int64`` arrays; the
  fast path, only offered when :mod:`numpy` imports.

``auto`` (the default everywhere) resolves to ``numpy`` when available
and ``stdlib`` otherwise, so environments built on machines without
numpy degrade gracefully instead of failing.  Callers that know the
workload size pass a ``cells`` hint: below
:data:`AUTO_NUMPY_MIN_CELLS` total term cells, ``auto`` stays on
``stdlib`` even with numpy importable — on tiny collections the
batches are a handful of elements, so per-call dispatch overhead and
GIL churn from released-and-reacquired array ops cost more than the
vectorisation saves.

**Byte-identity guarantee.**  All similarity arithmetic is exact: term
weights are positive integers, every dot product and accumulator cell
is a sum of integer products far below ``2**53``, and float64
represents such sums exactly regardless of addition order.  Candidate
selection is exact too — :class:`~repro.core.topk.TopK` retains a pure
function of the offered candidate *set*, and the batch backends only
drop candidates that are strictly dominated by ``lambda`` better ones
(they can never be retained).  Matches, extras and I/O counters are
therefore bit-identical across backends, which is pinned continuously
by the conformance oracle.

Kernels never touch the simulated disk: they receive decoded,
in-memory cells and return numbers.  All I/O stays in the operators,
where the charging discipline (RA-CORE-IO / RA-CONTEXT) is enforced.
"""

from __future__ import annotations

from repro.errors import InvalidParameterError
from repro.kernels.base import Kernels
from repro.kernels.scalar import ScalarKernels
from repro.kernels.packed import StdlibKernels

#: every kernel backend name accepted by :func:`resolve_kernels`
KERNEL_NAMES = ("auto", "scalar", "stdlib", "numpy")

#: below this many total term cells, ``auto`` prefers ``stdlib`` over
#: ``numpy`` (tiny batches lose to per-call dispatch overhead)
AUTO_NUMPY_MIN_CELLS = 4096

_CACHE: dict[str, Kernels] = {}


def numpy_available() -> bool:
    """True when the numpy backend can be constructed in this process."""
    try:
        import numpy  # noqa: F401
    except ImportError:  # pragma: no cover — depends on the environment
        return False
    return True


def resolve_kernels(name: str = "auto", *, cells: int | None = None) -> Kernels:
    """The kernel backend for ``name`` (a shared stateless instance).

    ``auto`` picks ``numpy`` when it imports and ``stdlib`` otherwise;
    asking for ``numpy`` explicitly on a machine without it raises —
    silent degradation is only acceptable when the caller asked for it.
    ``cells`` (the joined collections' total term cells, when known)
    keeps ``auto`` on ``stdlib`` below :data:`AUTO_NUMPY_MIN_CELLS`;
    it never overrides an explicit backend choice.
    """
    if name not in KERNEL_NAMES:
        raise InvalidParameterError(
            f"unknown kernel backend {name!r}; choose from {KERNEL_NAMES}"
        )
    if name == "auto":
        if numpy_available() and (cells is None or cells >= AUTO_NUMPY_MIN_CELLS):
            name = "numpy"
        else:
            name = "stdlib"
    cached = _CACHE.get(name)
    if cached is not None:
        return cached
    if name == "scalar":
        kernels: Kernels = ScalarKernels()
    elif name == "stdlib":
        kernels = StdlibKernels()
    else:
        if not numpy_available():
            raise InvalidParameterError(
                "the numpy kernel backend was requested but numpy is not "
                "importable; use kernel='auto' to fall back to stdlib"
            )
        from repro.kernels.vector import VectorKernels

        kernels = VectorKernels()
    _CACHE[name] = kernels
    return kernels


__all__ = [
    "AUTO_NUMPY_MIN_CELLS",
    "KERNEL_NAMES",
    "Kernels",
    "ScalarKernels",
    "StdlibKernels",
    "numpy_available",
    "resolve_kernels",
]
