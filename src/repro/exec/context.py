"""The streaming execution context.

One :class:`ExecutionContext` scopes one query execution: it carries the
*frozen* run configuration — page/time budgets, a cancellation check and
the metric hooks — plus the mutable accounting that accumulates while
operators run (pages used, per-phase :class:`~repro.storage.iostats.IOStats`,
blocks emitted).  The context is threaded from the SQL executor through
:class:`~repro.core.integrated.IntegratedJoin` into the ``iter_*``
operators, which

* open a :meth:`guard` around their whole run, subscribing the context to
  the disk's :class:`~repro.storage.iostats.IOStats` so the **page budget
  is enforced at the exact read that crosses it** (a
  :class:`~repro.errors.BudgetExceededError` carrying the partial stats);
* wrap their internal I/O phases in :meth:`phase` blocks, which fold each
  phase's stats delta into :attr:`phase_stats` via
  :meth:`~repro.storage.iostats.IOStats.merge`;
* call :meth:`checkpoint` at operator step boundaries (chunk, outer
  document, merge pass) so time budgets and cancellation are observed
  before the next unit of I/O is issued;
* pass every yielded :class:`~repro.exec.stream.MatchBlock` through
  :meth:`emit` so hooks see results the moment they are final.

A context is *single-scope*: accounting accumulates across every guard
opened on it, which is exactly what a per-query budget wants (the
optimizer's probing and the chosen operator share one allowance).  Use a
fresh context per query.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Callable, Iterator, Mapping, Protocol, runtime_checkable

from contextlib import contextmanager

from repro.errors import (
    BudgetExceededError,
    ExecutionCancelledError,
    InvalidParameterError,
)
from repro.storage.iostats import IOStats


@dataclass(frozen=True)
class ExecutionBudget:
    """Hard ceilings for one query execution; ``None`` means unlimited."""

    #: maximum pages read (sequential + random), enforced per record call
    pages: int | None = None
    #: wall-clock ceiling in seconds, checked at operator checkpoints
    seconds: float | None = None

    def __post_init__(self) -> None:
        if self.pages is not None and self.pages <= 0:
            raise InvalidParameterError(
                f"page budget must be positive, got {self.pages}"
            )
        if self.seconds is not None and self.seconds <= 0:
            raise InvalidParameterError(
                f"time budget must be positive, got {self.seconds}"
            )

    @property
    def unlimited(self) -> bool:
        return self.pages is None and self.seconds is None

    def split(self, count: int) -> tuple["ExecutionBudget", ...]:
        """Divide this budget across ``count`` independent shards.

        The page allowance is distributed as evenly as possible (the
        first ``pages % count`` shards get one extra page); a shard
        never receives less than one page, so splitting a tiny budget
        across many shards over-allocates rather than handing out an
        invalid zero budget.  The time allowance is *shared*, not
        divided: shards run against the same wall clock, so each keeps
        the full deadline.
        """
        if count <= 0:
            raise InvalidParameterError(
                f"shard count must be positive, got {count}"
            )
        if self.pages is None:
            return tuple(
                ExecutionBudget(pages=None, seconds=self.seconds)
                for _ in range(count)
            )
        base, extra = divmod(self.pages, count)
        return tuple(
            ExecutionBudget(
                pages=max(1, base + (1 if index < extra else 0)),
                seconds=self.seconds,
            )
            for index in range(count)
        )


@runtime_checkable
class ExecutionHooks(Protocol):
    """Metric-hook protocol; implement any subset via no-op defaults."""

    def on_phase_start(self, name: str) -> None:
        """Called when an operator enters the named I/O phase."""

    def on_phase_end(self, name: str, stats: IOStats) -> None:
        """Called when the phase closes, with its I/O delta."""

    def on_block(self, block: Any) -> None:
        """Called for each finalised match block the moment it is emitted."""


class NullHooks:
    """Do-nothing hook base; subclass and override what you need."""

    def on_phase_start(self, name: str) -> None:
        """No-op phase-start hook."""

    def on_phase_end(self, name: str, stats: IOStats) -> None:
        """No-op phase-end hook."""

    def on_block(self, block: Any) -> None:
        """No-op block hook."""


class MetricsHooks(NullHooks):
    """A recording hook: counts blocks and keeps the phase log.

    Handy in tests and the CLI — attach one to a context and read
    ``phases`` / ``blocks_seen`` afterwards.
    """

    def __init__(self) -> None:
        self.phases: list[tuple[str, IOStats]] = []
        self.blocks_seen = 0

    def on_phase_end(self, name: str, stats: IOStats) -> None:
        """Append ``(name, delta)`` to the phase log."""
        self.phases.append((name, stats))

    def on_block(self, block: Any) -> None:
        """Count the emitted block."""
        self.blocks_seen += 1


class _ContextState:
    """The mutable half of a context (accounting, not configuration)."""

    __slots__ = (
        "pages_used",
        "started_at",
        "phase_stats",
        "blocks_emitted",
        "attached",
        "baseline",
    )

    def __init__(self) -> None:
        self.pages_used = 0
        self.started_at: float | None = None
        self.phase_stats: dict[str, IOStats] = {}
        self.blocks_emitted = 0
        self.attached: IOStats | None = None
        self.baseline: IOStats | None = None


@dataclass(frozen=True, eq=False)
class ExecutionContext:
    """Frozen run configuration plus accumulating execution accounting."""

    budget: ExecutionBudget = field(default_factory=ExecutionBudget)
    cancel_check: Callable[[], bool] | None = None
    hooks: tuple[ExecutionHooks, ...] = ()
    clock: Callable[[], float] = time.monotonic
    _state: _ContextState = field(default_factory=_ContextState, repr=False)

    # --- accounting views -------------------------------------------------

    @property
    def pages_used(self) -> int:
        """Pages recorded while this context was guarding a counter."""
        return self._state.pages_used

    @property
    def blocks_emitted(self) -> int:
        """Match blocks that passed through :meth:`emit` so far."""
        return self._state.blocks_emitted

    @property
    def phase_stats(self) -> Mapping[str, IOStats]:
        """Per-phase I/O accounting, merged across all phase entries."""
        return MappingProxyType(self._state.phase_stats)

    def elapsed(self) -> float:
        """Seconds since the first guard was opened (0.0 before that)."""
        if self._state.started_at is None:
            return 0.0
        return self.clock() - self._state.started_at

    def partial_stats(self) -> IOStats | None:
        """Stats accumulated inside the current guard (None outside one)."""
        state = self._state
        if state.attached is None or state.baseline is None:
            return None
        return state.attached.delta(state.baseline)

    # --- enforcement ------------------------------------------------------

    def _on_record(self, _extent: str, sequential: int, random: int) -> None:
        state = self._state
        state.pages_used += sequential + random
        budget = self.budget
        if budget.pages is not None and state.pages_used > budget.pages:
            raise BudgetExceededError(
                f"page budget exhausted: {state.pages_used} pages read, "
                f"budget is {budget.pages}",
                stats=self.partial_stats(),
                pages_used=state.pages_used,
                elapsed=self.elapsed(),
            )

    def checkpoint(self) -> None:
        """Observe cancellation and the time budget between operator steps.

        Operators call this *before* starting the next unit of work
        (outer chunk, probed document, merge pass), so a deadline or a
        cancel stops the join without issuing that unit's I/O.
        """
        if self.cancel_check is not None and self.cancel_check():
            raise ExecutionCancelledError("execution cancelled by caller")
        seconds = self.budget.seconds
        if seconds is not None and self.elapsed() > seconds:
            raise BudgetExceededError(
                f"time budget exhausted: {self.elapsed():.3f}s elapsed, "
                f"budget is {seconds}s",
                stats=self.partial_stats(),
                pages_used=self._state.pages_used,
                elapsed=self.elapsed(),
            )

    # --- scoping ----------------------------------------------------------

    @contextmanager
    def guard(self, stats: IOStats) -> Iterator["ExecutionContext"]:
        """Subscribe to ``stats`` for the duration of one operator run.

        Re-entrant guards are rejected: one context watches one counter
        at a time (nested operators share the outer guard — the
        ``iter_*`` generators only open one when none is active).
        """
        state = self._state
        if state.attached is not None:
            # Nested operator under an active guard: keep the outer scope.
            yield self
            return
        if state.started_at is None:
            state.started_at = self.clock()
        # Take the baseline and subscribe *before* marking the context
        # attached: if either raises (a tracing-stats subclass may), no
        # observer is registered and the context stays clean — marking
        # first would leave ``attached`` set forever, silently turning
        # every later guard into a nested no-op with the budget
        # unenforced.
        baseline = stats.snapshot()
        stats.subscribe(self._on_record)
        state.attached = stats
        state.baseline = baseline
        try:
            yield self
        finally:
            # Detach unconditionally, even when the guarded body raised
            # mid-phase: a failed shard must not leave an observer on a
            # counter that the parent later merges.
            state.attached = None
            state.baseline = None
            stats.unsubscribe(self._on_record)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Scope a named I/O phase; its stats delta lands in :attr:`phase_stats`."""
        stats = self._state.attached
        for hook in self.hooks:
            hook.on_phase_start(name)
        before = stats.snapshot() if stats is not None else None
        try:
            yield
        finally:
            delta = (
                stats.delta(before)
                if stats is not None and before is not None
                else IOStats()
            )
            bucket = self._state.phase_stats.setdefault(name, IOStats())
            bucket.merge(delta)
            # Every hook must see the phase close even if an earlier one
            # raises, and a hook failure must never mask the exception
            # that aborted the phase body (a shard worker's real error).
            hook_error: BaseException | None = None
            for hook in self.hooks:
                try:
                    hook.on_phase_end(name, delta)
                except BaseException as exc:  # noqa: BLE001 — re-raised below
                    if hook_error is None:
                        hook_error = exc
            if hook_error is not None and sys.exc_info()[1] is None:
                raise hook_error

    def emit(self, block: Any) -> Any:
        """Pass one finalised match block through the hooks; returns it."""
        self._state.blocks_emitted += 1
        for hook in self.hooks:
            hook.on_block(block)
        return block


def ensure_context(context: ExecutionContext | None) -> ExecutionContext:
    """The given context, or a fresh unlimited one (never shared)."""
    return context if context is not None else ExecutionContext()


__all__ = [
    "ExecutionBudget",
    "ExecutionContext",
    "ExecutionHooks",
    "MetricsHooks",
    "NullHooks",
    "ensure_context",
]
