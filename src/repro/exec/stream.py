"""The streaming operator protocol: blocks in, one summary out.

Every ``iter_*`` operator in :mod:`repro.core` is a generator that yields
one :class:`MatchBlock` per outer document *as soon as that document's
top-``lambda`` set is final* (HHNL per buffered block, HVNL per probed
document, VVM per accumulator-partition flush) and **returns** a
:class:`StreamSummary` — the algorithm name, the measured I/O delta and
the extras — when it finishes.  Emission order is ascending outer
document id for every operator, so downstream consumers (the SQL
executor, :func:`collect`) never need to re-sort.

:func:`collect` drives a stream to completion and folds it back into the
materialized :class:`~repro.core.join.TextJoinResult`; the legacy
``run_*`` entry points are exactly this wrapper, byte-identical to their
pre-streaming outputs.

A consumer that stops early (``LIMIT``, a deadline) simply stops pulling:
the generator stays suspended before its next unit of I/O, so no further
pages are charged.  Call ``close()`` on abandonment to run the
operator's cleanup promptly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.core.join import TextJoinResult, TextJoinSpec
from repro.errors import ExecError
from repro.storage.iostats import IOStats


@dataclass(frozen=True)
class MatchBlock:
    """One outer document's final top-``lambda`` matches.

    ``matches`` is ranked best-first with ties broken toward smaller
    inner document ids — the exact list the materialized executors store
    per outer document, so flattening blocks reproduces ``run_*``
    matches verbatim (the streaming-equivalence conformance check).
    """

    outer_doc: int
    matches: tuple[tuple[int, float], ...]

    @property
    def n_matches(self) -> int:
        return len(self.matches)


@dataclass
class StreamSummary:
    """What a finished operator hands back alongside its blocks."""

    algorithm: str
    spec: TextJoinSpec
    io: IOStats
    extras: dict[str, Any] = field(default_factory=dict)


def collect(stream: Iterator[MatchBlock]) -> TextJoinResult:
    """Drive a streaming operator to completion and materialize the result.

    The generator's return value (its :class:`StreamSummary`) supplies
    the algorithm, I/O delta and extras; the blocks supply the matches in
    emission order, which preserves the insertion order the materialized
    executors produced.
    """
    matches: dict[int, list[tuple[int, float]]] = {}
    summary: StreamSummary | None = None
    while True:
        try:
            block = next(stream)
        except StopIteration as stop:
            summary = stop.value
            break
        matches[block.outer_doc] = list(block.matches)
    if not isinstance(summary, StreamSummary):
        raise ExecError(
            f"streaming operator finished without a StreamSummary "
            f"(got {summary!r}); iter_* generators must return one"
        )
    return TextJoinResult(
        algorithm=summary.algorithm,
        spec=summary.spec,
        matches=matches,
        io=summary.io,
        extras=summary.extras,
    )


__all__ = ["MatchBlock", "StreamSummary", "collect"]
