"""repro.exec — the streaming execution core.

The architectural seam between the storage/index layers and the query
surface: a frozen-config :class:`~repro.exec.context.ExecutionContext`
(budgets, cancellation, per-phase I/O scoping, metric hooks) threaded
through every operator, and the block-stream protocol
(:class:`~repro.exec.stream.MatchBlock` /
:class:`~repro.exec.stream.StreamSummary` /
:func:`~repro.exec.stream.collect`) the ``iter_*`` operators speak.

See ``docs/EXECUTION.md`` for the architecture.
"""

from repro.exec.context import (
    ExecutionBudget,
    ExecutionContext,
    ExecutionHooks,
    MetricsHooks,
    NullHooks,
    ensure_context,
)
from repro.exec.stream import MatchBlock, StreamSummary, collect

__all__ = [
    "ExecutionBudget",
    "ExecutionContext",
    "ExecutionHooks",
    "MatchBlock",
    "MetricsHooks",
    "NullHooks",
    "StreamSummary",
    "collect",
    "ensure_context",
]
