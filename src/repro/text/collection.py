"""Document collections and their derived statistics.

A :class:`DocumentCollection` is the horizontal (row-wise) form of the
paper's document-term matrix: documents in storage order, numbered
``0 .. N-1``.  It computes every collection statistic the cost model
consumes (``N``, ``K``, ``T``, document frequencies) and lays itself out
on a simulated disk as a tightly-packed extent.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator, Sequence

from repro.errors import DocumentFormatError
from repro.text.document import Document
from repro.text.tokenizer import Tokenizer
from repro.text.vocabulary import Vocabulary


class DocumentCollection:
    """An ordered, immutable set of documents sharing one term numbering.

    ``doc_id`` of the *i*-th document must equal *i*: the storage layout,
    the inverted file and the join algorithms all identify a document by
    its position in storage order.
    """

    def __init__(self, name: str, documents: Sequence[Document]) -> None:
        if not name:
            raise DocumentFormatError("collection name must be non-empty")
        self.name = name
        self.documents: tuple[Document, ...] = tuple(documents)
        for position, doc in enumerate(self.documents):
            if doc.doc_id != position:
                raise DocumentFormatError(
                    f"document at position {position} has doc_id {doc.doc_id}; "
                    f"ids must equal storage positions"
                )
        self._document_frequency: dict[int, int] | None = None

    # --- constructors -------------------------------------------------------

    @classmethod
    def from_term_lists(cls, name: str, term_lists: Iterable[Iterable[int]]) -> "DocumentCollection":
        """Build from raw term-number sequences (occurrences are counted)."""
        docs = [Document.from_terms(i, terms) for i, terms in enumerate(term_lists)]
        return cls(name, docs)

    @classmethod
    def from_texts(
        cls,
        name: str,
        texts: Iterable[str],
        vocabulary: Vocabulary,
        tokenizer: Tokenizer | None = None,
    ) -> "DocumentCollection":
        """Tokenize raw prose against a shared (standard) vocabulary."""
        tokenizer = tokenizer or Tokenizer()
        term_lists = (vocabulary.add_all(tokenizer.tokenize(text)) for text in texts)
        return cls.from_term_lists(name, term_lists)

    # --- statistics (the cost model's inputs) ----------------------------------

    @property
    def n_documents(self) -> int:
        """``N`` — number of documents."""
        return len(self.documents)

    @property
    def n_distinct_terms(self) -> int:
        """``T`` — number of distinct terms across the collection."""
        return len(self.document_frequency())

    @property
    def total_cells(self) -> int:
        """Total d-cells, i.e. sum of distinct terms per document."""
        return sum(doc.n_terms for doc in self.documents)

    @property
    def avg_terms_per_document(self) -> float:
        """``K`` — average number of distinct terms per document."""
        if not self.documents:
            return 0.0
        return self.total_cells / len(self.documents)

    @property
    def total_bytes(self) -> int:
        """Packed size of the whole collection in bytes."""
        return sum(doc.n_bytes for doc in self.documents)

    def document_frequency(self) -> dict[int, int]:
        """``{term: number of documents containing it}`` (cached)."""
        if self._document_frequency is None:
            counter: Counter[int] = Counter()
            for doc in self.documents:
                counter.update(term for term, _ in doc.cells)
            self._document_frequency = dict(counter)
        return self._document_frequency

    def terms(self) -> set[int]:
        """The set of distinct term numbers present."""
        return set(self.document_frequency())

    def term_overlap_with(self, other: "DocumentCollection") -> float:
        """Measured probability that a term of ``self`` appears in ``other``.

        This is the paper's ``p``/``q`` computed from data rather than
        from the Section 6 analytic formula.
        """
        own = self.terms()
        if not own:
            return 0.0
        shared = len(own & other.terms())
        return shared / len(own)

    # --- access -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.documents)

    def __getitem__(self, doc_id: int) -> Document:
        return self.documents[doc_id]

    def __iter__(self) -> Iterator[Document]:
        return iter(self.documents)

    # --- derivations ------------------------------------------------------

    def renumbered_subset(self, doc_ids: Sequence[int], name: str) -> "DocumentCollection":
        """A new, independent collection holding copies of selected documents.

        Documents are renumbered to ``0 .. len-1`` — this models Group 4's
        *originally small* collection, not a selection over this one (a
        selection keeps original numbering and storage; see
        :class:`repro.core.join.CollectionSelection`).
        """
        docs = [Document(new_id, self.documents[old_id].cells) for new_id, old_id in enumerate(doc_ids)]
        return DocumentCollection(name, docs)

    def __repr__(self) -> str:
        return (
            f"DocumentCollection({self.name!r}, N={self.n_documents}, "
            f"T={self.n_distinct_terms}, K={self.avg_terms_per_document:.1f})"
        )
