"""A small, deterministic tokenizer for building collections from raw text.

The paper's collections arrive pre-vectorised, but the examples (resume /
job-description matching, reviewer assignment) start from prose.  The
tokenizer is deliberately simple and dependency-free: lowercase, split on
non-alphanumerics, drop stopwords and short tokens, and optionally strip
a few common English suffixes (a light stemmer, not Porter).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

# A compact stopword list: enough to keep example vocabularies honest
# without pretending to be a linguistics package.
DEFAULT_STOPWORDS: frozenset[str] = frozenset(
    """
    a about above after again all also am an and any are as at be because
    been before being below between both but by can could did do does doing
    down during each few for from further had has have having he her here
    hers him his how i if in into is it its just me more most my no nor not
    of off on once only or other our ours out over own same she should so
    some such than that the their theirs them then there these they this
    those through to too under until up very was we were what when where
    which while who whom why will with you your yours
    """.split()
)

# Ordered (suffix, replacement) rules; first match wins.  "ies" -> "y"
# keeps 'queries'/'query' conflated, "es" -> "e" keeps 'databases' ->
# 'database'; the rest plainly strip.
_SUFFIX_RULES: tuple[tuple[str, str], ...] = (
    ("sses", "ss"),
    ("ies", "y"),
    ("ingly", ""),
    ("edly", ""),
    ("ings", ""),
    ("ing", ""),
    ("ed", ""),
    ("es", "e"),
    ("s", ""),
    ("ly", ""),
)
_TOKEN_RE = re.compile(r"[a-z0-9]+")


@dataclass(frozen=True)
class Tokenizer:
    """Configurable text-to-terms pipeline.

    Parameters
    ----------
    stopwords:
        Words dropped after lowercasing (before stemming).
    min_length:
        Tokens shorter than this are dropped.
    stem:
        If true, apply the first matching rule from ``_SUFFIX_RULES``
        provided at least ``min_stem_root`` characters remain.
    """

    stopwords: frozenset[str] = DEFAULT_STOPWORDS
    min_length: int = 2
    stem: bool = True
    min_stem_root: int = 3

    def tokenize(self, text: str) -> list[str]:
        """Split ``text`` into normalised term strings, in order."""
        terms: list[str] = []
        for token in _TOKEN_RE.findall(text.lower()):
            if len(token) < self.min_length or token in self.stopwords:
                continue
            if self.stem:
                token = self._strip_suffix(token)
            terms.append(token)
        return terms

    def _strip_suffix(self, token: str) -> str:
        for suffix, replacement in _SUFFIX_RULES:
            root_len = len(token) - len(suffix)
            if root_len >= self.min_stem_root and token.endswith(suffix):
                return token[:root_len] + replacement
        return token
