"""Documents as sorted d-cell vectors.

Section 3: "each document consists of a list of cells of the form
``(t#, w)``, called document-cell or d-cell, where ``t#`` is a term
number and ``w`` is the number of occurrences of the term in the
document.  All d-cells in a document are ordered in increasing order of
the term number."  The stored size of a document is 5 bytes per d-cell
(``|t#| = 3``, ``|w| = 2``).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable, Iterator, Mapping

from repro.constants import D_CELL_BYTES
from repro.errors import DocumentFormatError


class Document:
    """An immutable document: an id plus sorted ``(term, weight)`` d-cells.

    ``doc_id`` is the document number within its collection (``d#``);
    weights are positive integers (occurrence counts).  Construction
    validates the Section 3 format: strictly increasing term numbers and
    positive weights.
    """

    __slots__ = ("doc_id", "cells", "_norm", "_packed")

    def __init__(self, doc_id: int, cells: Iterable[tuple[int, int]]) -> None:
        self.doc_id = doc_id
        self.cells: tuple[tuple[int, int], ...] = tuple(cells)
        self._validate()
        self._norm: float | None = None
        #: kernel-backend pack cache: ``(backend_tag, data)`` or None
        self._packed: tuple[str, object] | None = None

    def _validate(self) -> None:
        if self.doc_id < 0:
            raise DocumentFormatError(f"doc_id must be non-negative, got {self.doc_id}")
        previous = -1
        for term, weight in self.cells:
            if term < 0:
                raise DocumentFormatError(f"term number must be non-negative, got {term}")
            if term <= previous:
                raise DocumentFormatError(
                    f"d-cells must be strictly increasing by term number; "
                    f"term {term} follows {previous} in document {self.doc_id}"
                )
            if weight <= 0:
                raise DocumentFormatError(
                    f"occurrence count must be positive, got {weight} "
                    f"for term {term} in document {self.doc_id}"
                )
            previous = term

    # --- constructors ----------------------------------------------------

    @classmethod
    def from_counts(cls, doc_id: int, counts: Mapping[int, int]) -> "Document":
        """Build from an unordered ``{term: occurrences}`` mapping."""
        return cls(doc_id, sorted(counts.items()))

    @classmethod
    def from_terms(cls, doc_id: int, terms: Iterable[int]) -> "Document":
        """Build from a raw term-number sequence, counting occurrences."""
        return cls.from_counts(doc_id, Counter(terms))

    # --- vector-space accessors -------------------------------------------

    @property
    def n_terms(self) -> int:
        """Number of *distinct* terms (the paper's per-document ``K``)."""
        return len(self.cells)

    @property
    def n_bytes(self) -> int:
        """Stored size: 5 bytes per d-cell."""
        return len(self.cells) * D_CELL_BYTES

    @property
    def terms(self) -> tuple[int, ...]:
        return tuple(term for term, _ in self.cells)

    def weight(self, term: int) -> int:
        """Occurrences of ``term`` in this document, 0 if absent.

        Binary search over the sorted d-cells.
        """
        cells = self.cells
        lo, hi = 0, len(cells)
        while lo < hi:
            mid = (lo + hi) // 2
            if cells[mid][0] < term:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(cells) and cells[lo][0] == term:
            return cells[lo][1]
        return 0

    def __contains__(self, term: int) -> bool:
        return self.weight(term) > 0

    def as_dict(self) -> dict[int, int]:
        """The d-cells as a ``{term: occurrences}`` mapping."""
        return dict(self.cells)

    def norm(self) -> float:
        """Euclidean norm of the occurrence vector (cached)."""
        if self._norm is None:
            self._norm = math.sqrt(sum(w * w for _, w in self.cells))
        return self._norm

    def __iter__(self) -> Iterator[tuple[int, int]]:
        return iter(self.cells)

    def __len__(self) -> int:
        return len(self.cells)

    def __getstate__(self) -> tuple[int, tuple[tuple[int, int], ...], float | None]:
        # The pack cache is process-local (backend arrays); shipping it to
        # pool workers would only bloat the pickle, so it is rebuilt lazily.
        return (self.doc_id, self.cells, self._norm)

    def __setstate__(
        self, state: tuple[int, tuple[tuple[int, int], ...], float | None]
    ) -> None:
        self.doc_id, self.cells, self._norm = state
        self._packed = None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Document):
            return NotImplemented
        return self.doc_id == other.doc_id and self.cells == other.cells

    def __hash__(self) -> int:
        return hash((self.doc_id, self.cells))

    def __repr__(self) -> str:
        return f"Document(id={self.doc_id}, terms={self.n_terms}, bytes={self.n_bytes})"
