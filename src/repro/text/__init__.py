"""Text substrate: the vector-space document model of Section 3.

A document is a sorted list of *d-cells* ``(t#, w)`` — term number plus
occurrence count — and a document collection is a bag of such documents
sharing one vocabulary (the paper's "standard mapping" from terms to term
numbers, assumed common across local IR systems).

Modules:

* :mod:`repro.text.document` — documents and d-cells,
* :mod:`repro.text.tokenizer` — raw text to term lists,
* :mod:`repro.text.vocabulary` — the term <-> term-number standard mapping,
* :mod:`repro.text.collection` — document collections and their statistics,
* :mod:`repro.text.similarity` — dot-product / cosine / idf similarity.
"""

from repro.text.collection import DocumentCollection
from repro.text.document import Document
from repro.text.similarity import (
    cosine_similarity,
    dot_product,
    idf_weights,
    norm,
    weighted_dot_product,
)
from repro.text.tokenizer import Tokenizer
from repro.text.vocabulary import Vocabulary

__all__ = [
    "Document",
    "DocumentCollection",
    "Tokenizer",
    "Vocabulary",
    "cosine_similarity",
    "dot_product",
    "idf_weights",
    "norm",
    "weighted_dot_product",
]
