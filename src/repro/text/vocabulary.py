"""The standard term <-> term-number mapping.

Section 3 argues for "a standard mapping from terms to term numbers" used
by every local IR system of the multidatabase, so joins compare 3-byte
numbers instead of strings.  :class:`Vocabulary` is that mapping: it
interns term strings to dense consecutive numbers and can be frozen once
the standard is published.

The mapping also resolves the paper's local-autonomy concern: two local
systems that used *different* private numberings can both be re-expressed
against one shared :class:`Vocabulary` (see :meth:`renumber`).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator, Mapping

from repro.errors import VocabularyError

#: versioned schema tag stamped into (and demanded of) every saved vocabulary
VOCABULARY_SCHEMA = "repro-vocabulary/1"


class Vocabulary:
    """Bidirectional, densely-numbered term mapping.

    Term numbers are assigned in first-seen order starting at 0, so a
    vocabulary built from a stable corpus order is itself stable.
    """

    def __init__(self) -> None:
        self._number_of: dict[str, int] = {}
        self._term_of: list[str] = []
        self._frozen = False

    # --- building ---------------------------------------------------------

    def add(self, term: str) -> int:
        """Return the number for ``term``, assigning a new one if needed."""
        number = self._number_of.get(term)
        if number is not None:
            return number
        if self._frozen:
            raise VocabularyError(f"vocabulary is frozen; cannot add term {term!r}")
        if not term:
            raise VocabularyError("cannot add an empty term")
        number = len(self._term_of)
        self._number_of[term] = number
        self._term_of.append(term)
        return number

    def add_all(self, terms: Iterable[str]) -> list[int]:
        """Intern many terms, returning their numbers in order."""
        return [self.add(term) for term in terms]

    def freeze(self) -> "Vocabulary":
        """Make the mapping immutable (the published standard)."""
        self._frozen = True
        return self

    @property
    def frozen(self) -> bool:
        return self._frozen

    # --- lookups -----------------------------------------------------------

    def number(self, term: str) -> int:
        """The number of a known term; raises for unknown terms."""
        try:
            return self._number_of[term]
        except KeyError:
            raise VocabularyError(f"unknown term {term!r}") from None

    def term(self, number: int) -> str:
        """The term string for a known number; raises for unknown numbers."""
        if 0 <= number < len(self._term_of):
            return self._term_of[number]
        raise VocabularyError(f"unknown term number {number}")

    def __contains__(self, term: str) -> bool:
        return term in self._number_of

    def __len__(self) -> int:
        return len(self._term_of)

    def __iter__(self) -> Iterator[str]:
        return iter(self._term_of)

    # --- persistence ---------------------------------------------------------

    def save(self, path: str | Path) -> Path:
        """Write the mapping as schema-tagged JSON; returns the path.

        Term numbers are positional (``terms[i]`` has number ``i``), so
        the file *is* the bijection: loading it reproduces every
        term↔number pair and the frozen flag exactly.  JSON is used
        rather than a packed format because terms are arbitrary
        (unicode) strings and the vocabulary is tiny next to the cell
        files it accompanies.
        """
        path = Path(path)
        payload = {
            "schema": VOCABULARY_SCHEMA,
            "frozen": self._frozen,
            "terms": list(self._term_of),
        }
        path.write_text(
            json.dumps(payload, ensure_ascii=False) + "\n", encoding="utf-8"
        )
        return path

    @classmethod
    def load(cls, path: str | Path) -> "Vocabulary":
        """Read a vocabulary written by :meth:`save`.

        Validates the schema tag and the term list strictly — a
        malformed file raises :class:`~repro.errors.VocabularyError`
        rather than producing a silently renumbered mapping.
        """
        path = Path(path)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise VocabularyError(f"cannot read vocabulary {path}: {exc}") from exc
        if not isinstance(payload, dict):
            raise VocabularyError(f"{path}: vocabulary file must hold a JSON object")
        schema = payload.get("schema")
        if schema != VOCABULARY_SCHEMA:
            raise VocabularyError(
                f"{path}: unsupported vocabulary schema {schema!r}, "
                f"expected {VOCABULARY_SCHEMA!r}"
            )
        terms = payload.get("terms")
        if not isinstance(terms, list):
            raise VocabularyError(f"{path}: 'terms' missing or not a list")
        frozen = payload.get("frozen")
        if not isinstance(frozen, bool):
            raise VocabularyError(f"{path}: 'frozen' missing or not a boolean")
        vocabulary = cls()
        for number, term in enumerate(terms):
            if not isinstance(term, str) or not term:
                raise VocabularyError(
                    f"{path}: term number {number} is not a non-empty string"
                )
            if term in vocabulary._number_of:
                raise VocabularyError(
                    f"{path}: duplicate term {term!r} at number {number} "
                    f"(first seen as {vocabulary._number_of[term]})"
                )
            vocabulary.add(term)
        if frozen:
            vocabulary.freeze()
        return vocabulary

    # --- multidatabase support ----------------------------------------------

    def renumber(self, local_numbering: Mapping[int, str]) -> dict[int, int]:
        """Map a local system's private numbering onto this standard.

        ``local_numbering`` maps the local system's term numbers to term
        strings.  Returns ``{local_number: standard_number}``, adding any
        term this vocabulary has not seen (unless frozen, in which case an
        unknown term raises).  This is the "mapping between corresponding
        numbers" alternative the paper describes for autonomous systems.
        """
        translation: dict[int, int] = {}
        for local_number, term in local_numbering.items():
            if self._frozen and term not in self._number_of:
                raise VocabularyError(
                    f"frozen standard has no term {term!r} (local number {local_number})"
                )
            translation[local_number] = self.add(term)
        return translation
