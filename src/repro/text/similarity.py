"""Similarity functions over d-cell vectors.

The paper's working similarity (Section 3) is the plain inner product of
occurrence counts over common terms: ``sum(u_i * v_i)``.  It notes that a
"more realistic" function divides by the document norms and applies
inverse-document-frequency term weights, both of which can be
pre-computed; the join algorithms are agnostic to the choice.  All three
are provided here and every executor accepts any of them through the
same two-document callable signature.
"""

from __future__ import annotations

import math
from typing import Callable, Mapping, Sequence

from repro.errors import InvalidParameterError
from repro.text.document import Document

SimilarityFn = Callable[[Document, Document], float]


def dot_product(doc1: Document, doc2: Document) -> float:
    """The paper's base similarity: sum of products over common terms.

    Linear merge over the two sorted d-cell lists.
    """
    cells1, cells2 = doc1.cells, doc2.cells
    i = j = 0
    n1, n2 = len(cells1), len(cells2)
    total = 0
    while i < n1 and j < n2:
        t1, w1 = cells1[i]
        t2, w2 = cells2[j]
        if t1 == t2:
            total += w1 * w2
            i += 1
            j += 1
        elif t1 < t2:
            i += 1
        else:
            j += 1
    return float(total)


def norm(doc: Document) -> float:
    """Euclidean norm of a document's occurrence vector."""
    return doc.norm()


def cosine_similarity(doc1: Document, doc2: Document) -> float:
    """Dot product normalised by both document norms (0 for empty docs)."""
    denominator = doc1.norm() * doc2.norm()
    if denominator <= 0.0:
        return 0.0
    return dot_product(doc1, doc2) / denominator


def idf_weights(document_frequency: Mapping[int, int], n_documents: int) -> dict[int, float]:
    """Inverse-document-frequency weight per term.

    Uses the standard ``log(N / df)`` form (Salton & McGill); a term that
    appears in every document gets weight 0, rare terms get large weights.
    Document frequencies of 0 are ignored (the term never occurs).
    """
    if n_documents <= 0:
        raise InvalidParameterError(f"n_documents must be positive, got {n_documents}")
    weights: dict[int, float] = {}
    for term, df in document_frequency.items():
        if df < 0:
            raise InvalidParameterError(f"negative document frequency {df} for term {term}")
        if df > 0:
            weights[term] = math.log(n_documents / df)
    return weights


def weighted_dot_product(
    idf: Mapping[int, float], *, normalise: bool = False
) -> SimilarityFn:
    """Build a similarity function with per-term idf weighting.

    Each common term contributes ``u * v * idf(t)**2`` (both vectors carry
    the weight, as in tf-idf).  With ``normalise=True`` the result is
    divided by the documents' plain norms — a cheap stand-in for full
    tf-idf normalisation that keeps pre-computed norms usable, exactly the
    pre-computation strategy Section 3 describes.
    """

    def similarity(doc1: Document, doc2: Document) -> float:
        cells1, cells2 = doc1.cells, doc2.cells
        i = j = 0
        n1, n2 = len(cells1), len(cells2)
        total = 0.0
        while i < n1 and j < n2:
            t1, w1 = cells1[i]
            t2, w2 = cells2[j]
            if t1 == t2:
                weight = idf.get(t1, 0.0)
                total += w1 * w2 * weight * weight
                i += 1
                j += 1
            elif t1 < t2:
                i += 1
            else:
                j += 1
        if normalise:
            denominator = doc1.norm() * doc2.norm()
            return total / denominator if denominator else 0.0
        return total

    return similarity


def pairwise_similarity_matrix(
    docs1: Sequence[Document], docs2: Sequence[Document], similarity: SimilarityFn = dot_product
) -> list[list[float]]:
    """Dense all-pairs similarity matrix (reference oracle for tests).

    Row ``i`` corresponds to ``docs1[i]``, column ``j`` to ``docs2[j]``.
    Quadratic — intended for validating the join executors on small
    collections, never for production joins.
    """
    return [[similarity(d1, d2) for d2 in docs2] for d1 in docs1]
