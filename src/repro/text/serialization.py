"""The paper's physical format, for real files.

Section 3 fixes the on-disk layout this library simulates everywhere:
documents are lists of 5-byte d-cells — a 3-byte term number and a
2-byte occurrence count — packed back to back with no alignment, and
inverted files store 5-byte i-cells the same way.  This module writes
and reads that exact format, so a collection's file size on disk equals
``collection.total_bytes`` to the byte and the simulated page counts
describe a real file.

Layout of a ``.docs`` / ``.inv`` pair of files:

* ``<name>.docs`` — the packed cells, nothing else;
* ``<name>.dir``  — the directory: magic, record count, then one u32
  *end offset* per record (start offsets are implied by packing).

The 3/2-byte widths make the paper's capacity limits concrete: term
numbers above ``2**24 - 1`` or occurrence counts above ``2**16 - 1``
cannot be represented and raise — occurrence counts may be clamped
instead by passing ``clamp_weights=True`` (real IR systems cap term
frequency anyway).
"""

from __future__ import annotations

import struct
from pathlib import Path

from repro.constants import (
    D_CELL_BYTES,
    OCCURRENCE_BYTES,
    TERM_NUMBER_BYTES,
)
from repro.errors import DocumentFormatError
from repro.index.inverted import InvertedEntry, InvertedFile
from repro.text.collection import DocumentCollection
from repro.text.document import Document

MAX_TERM_NUMBER = (1 << (8 * TERM_NUMBER_BYTES)) - 1
MAX_OCCURRENCES = (1 << (8 * OCCURRENCE_BYTES)) - 1

_DIR_MAGIC = b"TJR1"
_DIR_HEADER = struct.Struct("<4sI")
_DIR_OFFSET = struct.Struct("<I")


def cells_to_bytes(
    cells: tuple[tuple[int, int], ...], *, clamp_weights: bool = False
) -> bytes:
    """Pack ``(number, weight)`` cells into the 5-byte wire format."""
    out = bytearray()
    for number, weight in cells:
        if number > MAX_TERM_NUMBER or number < 0:
            raise DocumentFormatError(
                f"number {number} does not fit the paper's {TERM_NUMBER_BYTES}-byte field"
            )
        if weight > MAX_OCCURRENCES:
            if not clamp_weights:
                raise DocumentFormatError(
                    f"occurrence count {weight} does not fit the paper's "
                    f"{OCCURRENCE_BYTES}-byte field (pass clamp_weights=True to cap)"
                )
            weight = MAX_OCCURRENCES
        out += number.to_bytes(TERM_NUMBER_BYTES, "little")
        out += weight.to_bytes(OCCURRENCE_BYTES, "little")
    return bytes(out)


def cells_from_bytes(data: bytes) -> tuple[tuple[int, int], ...]:
    """Inverse of :func:`cells_to_bytes`."""
    if len(data) % D_CELL_BYTES:
        raise DocumentFormatError(
            f"cell stream length {len(data)} is not a multiple of {D_CELL_BYTES}"
        )
    cells = []
    for position in range(0, len(data), D_CELL_BYTES):
        number = int.from_bytes(
            data[position : position + TERM_NUMBER_BYTES], "little"
        )
        weight = int.from_bytes(
            data[position + TERM_NUMBER_BYTES : position + D_CELL_BYTES], "little"
        )
        cells.append((number, weight))
    return tuple(cells)


def _write_records(
    base: Path, records: list[bytes]
) -> tuple[Path, Path]:
    docs_path = base.with_suffix(base.suffix + ".cells")
    dir_path = base.with_suffix(base.suffix + ".dir")
    end = 0
    with open(docs_path, "wb") as cells_file, open(dir_path, "wb") as dir_file:
        dir_file.write(_DIR_HEADER.pack(_DIR_MAGIC, len(records)))
        for record in records:
            cells_file.write(record)
            end += len(record)
            dir_file.write(_DIR_OFFSET.pack(end))
    return docs_path, dir_path


def _read_records(base: Path) -> list[bytes]:
    docs_path = base.with_suffix(base.suffix + ".cells")
    dir_path = base.with_suffix(base.suffix + ".dir")
    with open(dir_path, "rb") as dir_file:
        header = dir_file.read(_DIR_HEADER.size)
        magic, count = _DIR_HEADER.unpack(header)
        if magic != _DIR_MAGIC:
            raise DocumentFormatError(f"{dir_path} is not a textjoin directory file")
        ends = [
            _DIR_OFFSET.unpack(dir_file.read(_DIR_OFFSET.size))[0]
            for _ in range(count)
        ]
    data = docs_path.read_bytes()
    if ends and ends[-1] != len(data):
        raise DocumentFormatError(
            f"{docs_path} has {len(data)} bytes but the directory expects {ends[-1]}"
        )
    records = []
    start = 0
    for end in ends:
        records.append(data[start:end])
        start = end
    return records


def save_collection(
    collection: DocumentCollection, directory: str | Path, *, clamp_weights: bool = False
) -> Path:
    """Write a collection in the Section 3 format; returns the base path.

    Creates ``<name>.docs.cells`` (packed d-cells; its size equals
    ``collection.total_bytes`` exactly) and ``<name>.docs.dir``.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    base = directory / f"{collection.name}.docs"
    _write_records(
        base,
        [cells_to_bytes(doc.cells, clamp_weights=clamp_weights) for doc in collection],
    )
    return base


def load_collection(name: str, directory: str | Path) -> DocumentCollection:
    """Read a collection written by :func:`save_collection`."""
    base = Path(directory) / f"{name}.docs"
    records = _read_records(base)
    documents = [
        Document(doc_id, cells_from_bytes(record))
        for doc_id, record in enumerate(records)
    ]
    return DocumentCollection(name, documents)


def save_inverted(
    inverted: InvertedFile, directory: str | Path, *, clamp_weights: bool = False
) -> Path:
    """Write an inverted file: i-cells packed per entry, terms in the
    directory file's companion ``.terms`` listing."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    base = directory / f"{inverted.collection_name}.inv"
    _write_records(
        base,
        [
            cells_to_bytes(entry.postings, clamp_weights=clamp_weights)
            for entry in inverted.entries
        ],
    )
    terms_path = base.with_suffix(".inv.terms")
    with open(terms_path, "wb") as terms_file:
        for entry in inverted.entries:
            terms_file.write(entry.term.to_bytes(TERM_NUMBER_BYTES, "little"))
    return base


def load_inverted(name: str, directory: str | Path) -> InvertedFile:
    """Read an inverted file written by :func:`save_inverted`."""
    base = Path(directory) / f"{name}.inv"
    records = _read_records(base)
    terms_data = base.with_suffix(".inv.terms").read_bytes()
    if len(terms_data) != TERM_NUMBER_BYTES * len(records):
        raise DocumentFormatError(
            f"term listing for {name!r} has {len(terms_data)} bytes, "
            f"expected {TERM_NUMBER_BYTES * len(records)}"
        )
    entries = []
    for index, record in enumerate(records):
        term = int.from_bytes(
            terms_data[index * TERM_NUMBER_BYTES : (index + 1) * TERM_NUMBER_BYTES],
            "little",
        )
        entries.append(InvertedEntry(term, cells_from_bytes(record)))
    return InvertedFile(name, entries)
