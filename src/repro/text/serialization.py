"""The paper's physical format, for real files.

Section 3 fixes the on-disk layout this library simulates everywhere:
documents are lists of 5-byte d-cells — a 3-byte term number and a
2-byte occurrence count — packed back to back with no alignment, and
inverted files store 5-byte i-cells the same way.  This module writes
and reads that exact format, so a collection's file size on disk equals
``collection.total_bytes`` to the byte and the simulated page counts
describe a real file.

Layout of a ``.docs`` / ``.inv`` pair of files:

* ``<name>.docs`` — the packed cells, nothing else;
* ``<name>.dir``  — the directory: magic, record count, then one u32
  *end offset* per record (start offsets are implied by packing).

The 3/2-byte widths make the paper's capacity limits concrete: term
numbers above ``2**24 - 1`` or occurrence counts above ``2**16 - 1``
cannot be represented and raise — occurrence counts may be clamped
instead by passing ``clamp_weights=True`` (real IR systems cap term
frequency anyway).
"""

from __future__ import annotations

import struct
from pathlib import Path

from repro.constants import (
    D_CELL_BYTES,
    OCCURRENCE_BYTES,
    TERM_NUMBER_BYTES,
)
from repro.errors import DocumentFormatError, InvertedFileError
from repro.index.inverted import InvertedEntry, InvertedFile
from repro.text.collection import DocumentCollection
from repro.text.document import Document

MAX_TERM_NUMBER = (1 << (8 * TERM_NUMBER_BYTES)) - 1
MAX_OCCURRENCES = (1 << (8 * OCCURRENCE_BYTES)) - 1

_DIR_MAGIC = b"TJR1"
_DIR_HEADER = struct.Struct("<4sI")
_DIR_OFFSET = struct.Struct("<I")


def cells_to_bytes(
    cells: tuple[tuple[int, int], ...], *, clamp_weights: bool = False
) -> bytes:
    """Pack ``(number, weight)`` cells into the 5-byte wire format."""
    out = bytearray()
    for number, weight in cells:
        if number > MAX_TERM_NUMBER or number < 0:
            raise DocumentFormatError(
                f"number {number} does not fit the paper's {TERM_NUMBER_BYTES}-byte field"
            )
        if weight > MAX_OCCURRENCES:
            if not clamp_weights:
                raise DocumentFormatError(
                    f"occurrence count {weight} does not fit the paper's "
                    f"{OCCURRENCE_BYTES}-byte field (pass clamp_weights=True to cap)"
                )
            weight = MAX_OCCURRENCES
        out += number.to_bytes(TERM_NUMBER_BYTES, "little")
        out += weight.to_bytes(OCCURRENCE_BYTES, "little")
    return bytes(out)


def cells_from_bytes(data: bytes) -> tuple[tuple[int, int], ...]:
    """Inverse of :func:`cells_to_bytes`."""
    if len(data) % D_CELL_BYTES:
        raise DocumentFormatError(
            f"cell stream length {len(data)} is not a multiple of {D_CELL_BYTES}"
        )
    cells = []
    for position in range(0, len(data), D_CELL_BYTES):
        number = int.from_bytes(
            data[position : position + TERM_NUMBER_BYTES], "little"
        )
        weight = int.from_bytes(
            data[position + TERM_NUMBER_BYTES : position + D_CELL_BYTES], "little"
        )
        cells.append((number, weight))
    return tuple(cells)


def _write_records(
    base: Path, records: list[bytes]
) -> tuple[Path, Path]:
    docs_path = base.with_suffix(base.suffix + ".cells")
    dir_path = base.with_suffix(base.suffix + ".dir")
    end = 0
    with open(docs_path, "wb") as cells_file, open(dir_path, "wb") as dir_file:
        dir_file.write(_DIR_HEADER.pack(_DIR_MAGIC, len(records)))
        for record in records:
            cells_file.write(record)
            end += len(record)
            dir_file.write(_DIR_OFFSET.pack(end))
    return docs_path, dir_path


def _read_records(base: Path) -> list[tuple[int, bytes]]:
    """Read ``(start_byte, record)`` pairs, validating both files first.

    Every malformed condition — truncated directory header or offset
    table, non-monotonic end offsets, a cell file shorter or longer than
    the directory promises — raises :class:`DocumentFormatError` naming
    the file, the record index and the byte offset of the damage, so a
    corrupt workspace points at its own broken artifact instead of
    surfacing a bare ``struct.error``.
    """
    docs_path = base.with_suffix(base.suffix + ".cells")
    dir_path = base.with_suffix(base.suffix + ".dir")
    raw = dir_path.read_bytes()
    if len(raw) < _DIR_HEADER.size:
        raise DocumentFormatError(
            f"{dir_path}: truncated header: {len(raw)} bytes, "
            f"need {_DIR_HEADER.size}"
        )
    magic, count = _DIR_HEADER.unpack_from(raw, 0)
    if magic != _DIR_MAGIC:
        raise DocumentFormatError(f"{dir_path} is not a textjoin directory file")
    table_end = _DIR_HEADER.size + count * _DIR_OFFSET.size
    if len(raw) < table_end:
        short_record = (len(raw) - _DIR_HEADER.size) // _DIR_OFFSET.size
        raise DocumentFormatError(
            f"{dir_path}: offset table truncated at byte {len(raw)}: "
            f"record {short_record} of {count} is incomplete "
            f"(need {table_end} bytes)"
        )
    ends = []
    previous = 0
    for index in range(count):
        offset = _DIR_HEADER.size + index * _DIR_OFFSET.size
        (end,) = _DIR_OFFSET.unpack_from(raw, offset)
        if end < previous:
            raise DocumentFormatError(
                f"{dir_path}: record {index} at byte {offset}: end offset "
                f"{end} precedes the previous record's end {previous}"
            )
        ends.append(end)
        previous = end
    data = docs_path.read_bytes()
    if ends and ends[-1] != len(data):
        raise DocumentFormatError(
            f"{docs_path} has {len(data)} bytes but the directory expects "
            f"{ends[-1]} (record {len(ends) - 1} ends there)"
        )
    if not ends and data:
        raise DocumentFormatError(
            f"{docs_path} has {len(data)} bytes but the directory lists no records"
        )
    records = []
    start = 0
    for end in ends:
        records.append((start, data[start:end]))
        start = end
    return records


def save_collection(
    collection: DocumentCollection, directory: str | Path, *, clamp_weights: bool = False
) -> Path:
    """Write a collection in the Section 3 format; returns the base path.

    Creates ``<name>.docs.cells`` (packed d-cells; its size equals
    ``collection.total_bytes`` exactly) and ``<name>.docs.dir``.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    base = directory / f"{collection.name}.docs"
    _write_records(
        base,
        [cells_to_bytes(doc.cells, clamp_weights=clamp_weights) for doc in collection],
    )
    return base


def load_collection(name: str, directory: str | Path) -> DocumentCollection:
    """Read a collection written by :func:`save_collection`.

    The cell files store *term numbers* only (the whole point of the
    Section 3 format), so the returned documents are number-only vectors:
    joins and similarities work immediately, but mapping numbers back to
    term strings needs the :class:`~repro.text.vocabulary.Vocabulary`
    the collection was built with — save it alongside
    (:meth:`~repro.text.vocabulary.Vocabulary.save`) and attach it after
    loading, as :mod:`repro.workspace` does via its manifest.

    Corrupt or truncated files raise
    :class:`~repro.errors.DocumentFormatError` carrying the file name,
    the record index and the byte offset of the damage.
    """
    base = Path(directory) / f"{name}.docs"
    docs_path = base.with_suffix(base.suffix + ".cells")
    documents = []
    for doc_id, (start, record) in enumerate(_read_records(base)):
        try:
            documents.append(Document(doc_id, cells_from_bytes(record)))
        except DocumentFormatError as exc:
            raise DocumentFormatError(
                f"{docs_path}: record {doc_id} at byte {start}: {exc}"
            ) from exc
    return DocumentCollection(name, documents)


def save_inverted(
    inverted, directory: str | Path, *, clamp_weights: bool = False, codec=None
) -> Path:
    """Write an inverted file: one record per entry, terms in the
    directory file's companion ``.terms`` listing.

    With no ``codec`` (or the raw one) the records are packed i-cells;
    a compressed :class:`~repro.index.codecs.PostingsCodec` stores its
    encoded payload instead — for an already-compressed inverted file
    the stored ``data`` is written as-is, so what lands on disk is
    byte-identical to what the simulated extents charged for.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    base = directory / f"{inverted.collection_name}.inv"
    records = []
    for entry in inverted.entries:
        data = getattr(entry, "data", None)
        if data is not None:
            records.append(data)
        elif codec is not None:
            records.append(codec.encode_postings(entry.postings))
        else:
            records.append(
                cells_to_bytes(entry.postings, clamp_weights=clamp_weights)
            )
    _write_records(base, records)
    terms_path = base.with_suffix(".inv.terms")
    with open(terms_path, "wb") as terms_file:
        for entry in inverted.entries:
            terms_file.write(entry.term.to_bytes(TERM_NUMBER_BYTES, "little"))
    return base


def load_inverted(name: str, directory: str | Path, *, codec=None):
    """Read an inverted file written by :func:`save_inverted`.

    As with :func:`load_collection`, corruption raises
    :class:`~repro.errors.DocumentFormatError` naming the file, the
    entry index and the byte offset — including postings that decode but
    violate the i-cell invariants (a bit flip can scramble document
    order without changing the record length).

    With a compressed ``codec`` the records are its encoded payloads
    and the result is a
    :class:`~repro.index.compression.CompressedInvertedFile`; every
    record is decoded once on the way in — both to validate the stream
    and to pre-warm the entry's decode cache — and kept compressed, so
    the simulated extents charge the stored size.
    """
    base = Path(directory) / f"{name}.inv"
    cells_path = base.with_suffix(base.suffix + ".cells")
    terms_path = base.with_suffix(".inv.terms")
    records = _read_records(base)
    terms_data = terms_path.read_bytes()
    if len(terms_data) != TERM_NUMBER_BYTES * len(records):
        raise DocumentFormatError(
            f"{terms_path}: term listing for {name!r} has {len(terms_data)} "
            f"bytes, expected {TERM_NUMBER_BYTES * len(records)}"
        )
    compressed = codec is not None and codec.compressed
    if compressed:
        from repro.index.compression import (
            CompressedInvertedEntry,
            CompressedInvertedFile,
        )
    entries = []
    for index, (start, record) in enumerate(records):
        term = int.from_bytes(
            terms_data[index * TERM_NUMBER_BYTES : (index + 1) * TERM_NUMBER_BYTES],
            "little",
        )
        try:
            if compressed:
                postings = codec.decode_postings(record)
                entry = CompressedInvertedEntry(term, record, len(postings))
                entry._decoded = postings
            elif codec is not None:
                entry = InvertedEntry(term, codec.decode_postings(record))
            else:
                entry = InvertedEntry(term, cells_from_bytes(record))
            entries.append(entry)
        except (DocumentFormatError, InvertedFileError) as exc:
            raise DocumentFormatError(
                f"{cells_path}: entry {index} (term {term}) at byte {start}: {exc}"
            ) from exc
    if compressed:
        return CompressedInvertedFile(name, entries)
    return InvertedFile(name, entries)
