"""Inverted files: the vertical representation of a collection.

For a term ``t`` in collection ``C``, the inverted-file entry is the list
of i-cells ``(d#, w)`` — document number and occurrence count — sorted by
document number (Section 3).  Entries are stored consecutively in
increasing term-number order, which is what makes VVM's single merge scan
possible, and each i-cell occupies 5 bytes, so an inverted file has the
same total size as its collection.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.constants import I_CELL_BYTES
from repro.errors import InvertedFileError
from repro.text.collection import DocumentCollection


class InvertedEntry:
    """One term's posting list."""

    __slots__ = ("term", "postings", "_packed")

    def __init__(self, term: int, postings: tuple[tuple[int, int], ...]) -> None:
        if term < 0:
            raise InvertedFileError(f"term number must be non-negative, got {term}")
        previous = -1
        for doc_id, weight in postings:
            if doc_id <= previous:
                raise InvertedFileError(
                    f"i-cells must be strictly increasing by document number; "
                    f"doc {doc_id} follows {previous} in entry for term {term}"
                )
            if weight <= 0:
                raise InvertedFileError(
                    f"occurrence count must be positive, got {weight} "
                    f"for doc {doc_id} in entry for term {term}"
                )
            previous = doc_id
        self.term = term
        self.postings = postings
        #: kernel-backend pack cache: ``(backend_tag, data)`` or None
        self._packed: tuple[str, object] | None = None

    def __getstate__(self) -> tuple[int, tuple[tuple[int, int], ...]]:
        # Pack caches are process-local; rebuilt lazily after unpickling.
        return (self.term, self.postings)

    def __setstate__(self, state: tuple[int, tuple[tuple[int, int], ...]]) -> None:
        self.term, self.postings = state
        self._packed = None

    @property
    def document_frequency(self) -> int:
        """Number of documents containing the term."""
        return len(self.postings)

    @property
    def n_bytes(self) -> int:
        """Stored size: 5 bytes per i-cell."""
        return len(self.postings) * I_CELL_BYTES

    def __iter__(self) -> Iterator[tuple[int, int]]:
        return iter(self.postings)

    def __len__(self) -> int:
        return len(self.postings)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, InvertedEntry):
            return NotImplemented
        return self.term == other.term and self.postings == other.postings

    def __repr__(self) -> str:
        return f"InvertedEntry(term={self.term}, df={self.document_frequency})"


class InvertedFile:
    """All entries of one collection, in increasing term-number order."""

    def __init__(self, collection_name: str, entries: list[InvertedEntry]) -> None:
        previous = -1
        for entry in entries:
            if entry.term <= previous:
                raise InvertedFileError(
                    f"entries must be strictly increasing by term number; "
                    f"term {entry.term} follows {previous}"
                )
            previous = entry.term
        self.collection_name = collection_name
        self.entries: list[InvertedEntry] = entries
        self._by_term: dict[int, int] = {e.term: i for i, e in enumerate(entries)}

    @classmethod
    def build(cls, collection: DocumentCollection) -> "InvertedFile":
        """Invert a collection: transpose d-cells into i-cells.

        Single pass over the documents; postings come out sorted by
        document number because documents are visited in storage order.
        """
        postings: dict[int, list[tuple[int, int]]] = {}
        for doc in collection:
            for term, weight in doc.cells:
                postings.setdefault(term, []).append((doc.doc_id, weight))
        entries = [InvertedEntry(term, tuple(cells)) for term, cells in sorted(postings.items())]
        return cls(collection.name, entries)

    # --- lookups -----------------------------------------------------------

    def entry(self, term: int) -> InvertedEntry:
        """The posting list for ``term``; raises if the term is absent."""
        index = self._by_term.get(term)
        if index is None:
            raise InvertedFileError(
                f"collection {self.collection_name!r} has no entry for term {term}"
            )
        return self.entries[index]

    def get(self, term: int) -> InvertedEntry | None:
        """The entry for ``term`` or ``None``."""
        index = self._by_term.get(term)
        return None if index is None else self.entries[index]

    def __contains__(self, term: int) -> bool:
        return term in self._by_term

    def entry_index(self, term: int) -> int:
        """Storage position (record id) of the entry for ``term``."""
        index = self._by_term.get(term)
        if index is None:
            raise InvertedFileError(
                f"collection {self.collection_name!r} has no entry for term {term}"
            )
        return index

    # --- statistics ----------------------------------------------------------

    @property
    def n_terms(self) -> int:
        """``T`` — number of distinct terms (= number of entries)."""
        return len(self.entries)

    @property
    def total_bytes(self) -> int:
        """Packed size; equals the collection's packed size by construction."""
        return sum(entry.n_bytes for entry in self.entries)

    def document_frequencies(self) -> dict[int, int]:
        """``{term: document frequency}`` for every entry."""
        return {entry.term: entry.document_frequency for entry in self.entries}

    def verify_against(self, collection: DocumentCollection) -> None:
        """Check the transpose invariant against the source collection.

        Every d-cell ``(t, w)`` of document ``d`` must appear as i-cell
        ``(d, w)`` in the entry for ``t`` and vice versa.  Used by tests
        and by :func:`repro.experiments.validate` sanity passes.
        """
        cells_from_docs = {
            (term, doc.doc_id, weight) for doc in collection for term, weight in doc.cells
        }
        cells_from_index = {
            (entry.term, doc_id, weight)
            for entry in self.entries
            for doc_id, weight in entry.postings
        }
        if cells_from_docs != cells_from_index:
            missing = cells_from_docs - cells_from_index
            extra = cells_from_index - cells_from_docs
            raise InvertedFileError(
                f"inverted file does not match collection: "
                f"{len(missing)} cells missing, {len(extra)} cells extra"
            )

    def __iter__(self) -> Iterator[InvertedEntry]:
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:
        return f"InvertedFile({self.collection_name!r}, terms={self.n_terms})"


def merge_inverted_segments(
    collection_name: str,
    parts: "list[tuple[InvertedFile, Mapping[int, int]]]",
) -> "InvertedFile":
    """Merge per-segment inverted files into one logical inverted file.

    ``parts`` pairs each segment's inverted file (in segment order) with
    its live-document map — local doc id to merged global id, omitting
    tombstoned documents.  Because global ids are assigned in (segment,
    local) order and each map is monotone, per-term concatenation of the
    remapped postings lands sorted — the result is value-identical to
    :meth:`InvertedFile.build` over the merged live collection, which is
    what makes segmented workspaces byte-identical to a cold rebuild.

    Terms whose every posting is tombstoned vanish entirely, exactly as
    a fresh inversion would never have created them.
    """
    merged: dict[int, list[tuple[int, int]]] = {}
    for inverted, doc_map in parts:
        for entry in inverted.entries:
            cells = merged.setdefault(entry.term, [])
            for doc_id, weight in entry.postings:
                global_id = doc_map.get(doc_id)
                if global_id is not None:
                    cells.append((global_id, weight))
    entries = [
        InvertedEntry(term, tuple(cells))
        for term, cells in sorted(merged.items())
        if cells
    ]
    return InvertedFile(collection_name, entries)


def merge_join_entries(
    entry1: InvertedEntry | None, entry2: InvertedEntry | None
) -> Iterator[tuple[int, int, int, int]]:
    """Cross the postings of two same-term entries.

    Yields ``(doc1, w1, doc2, w2)`` for every pair — VVM's similarity
    accumulation step.  Either entry may be ``None`` (term absent from
    one collection), producing nothing.
    """
    if entry1 is None or entry2 is None:
        return
    for doc1, w1 in entry1.postings:
        for doc2, w2 in entry2.postings:
            yield doc1, w1, doc2, w2
