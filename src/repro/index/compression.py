"""Compressed inverted files: d-gaps + variable-byte coding.

An extension beyond the paper: production IR systems store posting
lists compressed, which directly shrinks the ``I`` and ``J`` figures
every formula in Section 5 depends on.  The classic scheme is used —
document ids become gaps (``d_i - d_{i-1}``, small because postings are
sorted) and each gap/weight is variable-byte coded: 7 payload bits per
byte, high bit set on the final byte.

:class:`CompressedInvertedEntry` mirrors the uncompressed entry's
interface (``term``, ``postings``, ``document_frequency``, ``n_bytes``),
so :class:`~repro.core.join.JoinEnvironment` can lay either form onto
the simulated disk and the executors run unchanged — only the page
counts (and therefore measured I/O) move.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import InvertedFileError
from repro.index.inverted import InvertedEntry, InvertedFile


def encode_vbyte(value: int) -> bytes:
    """Variable-byte encode one non-negative integer.

    Little-endian 7-bit groups; the final byte has its high bit set.
    """
    if value < 0:
        raise InvertedFileError(f"cannot vbyte-encode negative value {value}")
    out = bytearray()
    while True:
        if value < 128:
            out.append(value | 0x80)
            return bytes(out)
        out.append(value & 0x7F)
        value >>= 7


def decode_vbyte(data: bytes, position: int) -> tuple[int, int]:
    """Decode one integer starting at ``position``; returns (value, next)."""
    value = 0
    shift = 0
    while position < len(data):
        byte = data[position]
        position += 1
        value |= (byte & 0x7F) << shift
        if byte & 0x80:
            return value, position
        shift += 7
    raise InvertedFileError("truncated vbyte stream")


def compress_postings(postings: tuple[tuple[int, int], ...]) -> bytes:
    """Encode i-cells as (d-gap, weight) vbyte pairs."""
    out = bytearray()
    previous = -1
    for doc_id, weight in postings:
        if doc_id <= previous:
            raise InvertedFileError("postings must be strictly increasing")
        out += encode_vbyte(doc_id - previous - 1)
        out += encode_vbyte(weight)
        previous = doc_id
    return bytes(out)


def decompress_postings(data: bytes) -> tuple[tuple[int, int], ...]:
    """Inverse of :func:`compress_postings`."""
    postings: list[tuple[int, int]] = []
    position = 0
    doc_id = -1
    while position < len(data):
        gap, position = decode_vbyte(data, position)
        weight, position = decode_vbyte(data, position)
        doc_id += gap + 1
        postings.append((doc_id, weight))
    return tuple(postings)


class CompressedInvertedEntry:
    """One term's posting list, stored compressed.

    Decoding is lazy and cached: the executors touch ``postings`` many
    times per resident entry, but the stored (charged) size is the
    compressed one.
    """

    __slots__ = ("term", "data", "document_frequency", "_decoded", "_packed")

    def __init__(self, term: int, data: bytes, document_frequency: int) -> None:
        self.term = term
        self.data = data
        self.document_frequency = document_frequency
        self._decoded: tuple[tuple[int, int], ...] | None = None
        #: kernel-backend pack cache: ``(backend_tag, data)`` or None
        self._packed: tuple[str, object] | None = None

    def __getstate__(self) -> tuple[int, bytes, int]:
        # Decode/pack caches are process-local; rebuilt lazily after unpickling.
        return (self.term, self.data, self.document_frequency)

    def __setstate__(self, state: tuple[int, bytes, int]) -> None:
        self.term, self.data, self.document_frequency = state
        self._decoded = None
        self._packed = None

    @classmethod
    def from_entry(cls, entry: InvertedEntry) -> "CompressedInvertedEntry":
        return cls(
            entry.term, compress_postings(entry.postings), entry.document_frequency
        )

    @property
    def postings(self) -> tuple[tuple[int, int], ...]:
        if self._decoded is None:
            self._decoded = decompress_postings(self.data)
        return self._decoded

    @property
    def n_bytes(self) -> int:
        """Stored (compressed) size."""
        return len(self.data)

    def __iter__(self) -> Iterator[tuple[int, int]]:
        return iter(self.postings)

    def __len__(self) -> int:
        return self.document_frequency

    def __repr__(self) -> str:
        return (
            f"CompressedInvertedEntry(term={self.term}, "
            f"df={self.document_frequency}, bytes={self.n_bytes})"
        )


class CompressedInvertedFile:
    """A whole inverted file in compressed form."""

    def __init__(self, collection_name: str, entries: list[CompressedInvertedEntry]) -> None:
        self.collection_name = collection_name
        self.entries = entries
        self._by_term = {entry.term: index for index, entry in enumerate(entries)}

    @classmethod
    def from_inverted(cls, inverted: InvertedFile) -> "CompressedInvertedFile":
        return cls(
            inverted.collection_name,
            [CompressedInvertedEntry.from_entry(entry) for entry in inverted.entries],
        )

    def entry(self, term: int) -> CompressedInvertedEntry:
        """The compressed posting list for ``term``; raises if absent."""
        index = self._by_term.get(term)
        if index is None:
            raise InvertedFileError(
                f"collection {self.collection_name!r} has no entry for term {term}"
            )
        return self.entries[index]

    def get(self, term: int) -> CompressedInvertedEntry | None:
        """The entry for ``term`` or ``None``."""
        index = self._by_term.get(term)
        return None if index is None else self.entries[index]

    def entry_index(self, term: int) -> int:
        """Storage position (record id) of the entry for ``term``."""
        index = self._by_term.get(term)
        if index is None:
            raise InvertedFileError(
                f"collection {self.collection_name!r} has no entry for term {term}"
            )
        return index

    def __contains__(self, term: int) -> bool:
        return term in self._by_term

    def __iter__(self) -> Iterator[CompressedInvertedEntry]:
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def n_terms(self) -> int:
        return len(self.entries)

    @property
    def total_bytes(self) -> int:
        return sum(entry.n_bytes for entry in self.entries)

    def compression_ratio(self, inverted: InvertedFile) -> float:
        """Uncompressed bytes / compressed bytes (> 1 is a win)."""
        compressed = self.total_bytes
        if compressed == 0:
            return 1.0
        return inverted.total_bytes / compressed
