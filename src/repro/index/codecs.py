"""Postings codecs: how inverted-file entries are stored on disk.

A codec is the pluggable layer between the logical inverted file (a
list of ``(doc#, weight)`` i-cells per term) and its physical bytes —
both on the simulated disk, where the stored size drives the paper's
``I``/``J`` figures and therefore every measured page count, and in
durable workspaces, where the encoded records are what gets
checksummed and replayed by ``repro workspace verify``.

Two codecs exist:

* ``raw`` — 5 bytes per i-cell, the paper's Section 3 layout;
* ``vbyte`` — d-gaps + variable-byte coding
  (:mod:`repro.index.compression`), the classic IR compression scheme.

Codecs are stateless singletons resolved by name
(:func:`resolve_codec`); the name is part of
:class:`~repro.core.environment.EnvironmentSpec` and is serialized
into workspace manifests, where it participates in the fingerprint —
two workspaces that differ only in codec are different datasets as far
as caching is concerned.
"""

from __future__ import annotations

from repro.errors import InvalidParameterError
from repro.index.compression import (
    CompressedInvertedFile,
    compress_postings,
    decompress_postings,
)
from repro.index.inverted import InvertedFile
from repro.text.serialization import cells_from_bytes, cells_to_bytes


class PostingsCodec:
    """One way of encoding posting lists; stateless and safe to share."""

    name: str = "base"
    #: whether encoded entries are smaller than the 5-bytes-per-cell layout
    #: (drives the measured-statistics override in the environment factory)
    compressed: bool = False

    def build(self, inverted: InvertedFile):
        """The in-memory inverted artifact laid onto the simulated disk."""
        raise NotImplementedError

    def encode_postings(self, postings: tuple[tuple[int, int], ...]) -> bytes:
        """Durable record payload for one entry's postings."""
        raise NotImplementedError

    def decode_postings(self, data: bytes) -> tuple[tuple[int, int], ...]:
        """Inverse of :meth:`encode_postings`; raises on malformed input."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class RawCodec(PostingsCodec):
    """The paper's uncompressed layout: 5 bytes per i-cell."""

    name = "raw"
    compressed = False

    def build(self, inverted: InvertedFile) -> InvertedFile:
        return inverted

    def encode_postings(self, postings: tuple[tuple[int, int], ...]) -> bytes:
        return cells_to_bytes(postings)

    def decode_postings(self, data: bytes) -> tuple[tuple[int, int], ...]:
        return cells_from_bytes(data)


class VbyteCodec(PostingsCodec):
    """D-gaps + variable-byte coding over sorted postings."""

    name = "vbyte"
    compressed = True

    def build(self, inverted: InvertedFile) -> CompressedInvertedFile:
        return CompressedInvertedFile.from_inverted(inverted)

    def encode_postings(self, postings: tuple[tuple[int, int], ...]) -> bytes:
        return compress_postings(postings)

    def decode_postings(self, data: bytes) -> tuple[tuple[int, int], ...]:
        return decompress_postings(data)


#: every codec name accepted by :func:`resolve_codec`, manifests and specs
CODEC_NAMES = ("raw", "vbyte")

_CODECS: dict[str, PostingsCodec] = {
    "raw": RawCodec(),
    "vbyte": VbyteCodec(),
}


def resolve_codec(name: str) -> PostingsCodec:
    """The codec registered under ``name`` (a shared stateless instance)."""
    codec = _CODECS.get(name)
    if codec is None:
        raise InvalidParameterError(
            f"unknown postings codec {name!r}; choose from {CODEC_NAMES}"
        )
    return codec


__all__ = [
    "CODEC_NAMES",
    "PostingsCodec",
    "RawCodec",
    "VbyteCodec",
    "resolve_codec",
]
