"""Collection statistics: the inputs of the cost model.

Section 3 defines, per collection ``i``:

=====  ==============================================================
``N``  number of documents
``K``  average number of (distinct) terms per document
``T``  number of distinct terms in the collection
``S``  average document size in pages, ``5 * K / P``
``D``  collection size in pages, ``S * N`` (tightly packed)
``J``  average inverted-entry size in pages, ``5 * K * N / (T * P)``
``I``  inverted-file size in pages, ``J * T`` (tightly packed)
``Bt`` B+-tree size in pages, ``9 * T / P`` (leaf cells only, Sec. 5.2)
=====  ==============================================================

:class:`CollectionStats` carries ``N``, ``K``, ``T`` and derives the
rest, but any derived figure can be pinned explicitly — the paper's
published table for WSJ/FR/DOE reports measured sizes that differ
slightly from the formulas, and we reproduce the table verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.constants import BTREE_CELL_BYTES, D_CELL_BYTES
from repro.errors import CostModelError
from repro.storage.pages import PageGeometry
from repro.text.collection import DocumentCollection


@dataclass(frozen=True)
class CollectionStats:
    """Statistical profile of one document collection.

    Only ``n_documents`` (N), ``avg_terms_per_doc`` (K) and
    ``n_distinct_terms`` (T) are primary; pass the ``*_override`` fields
    to pin a measured figure where the paper's table disagrees with the
    derivation.
    """

    name: str
    n_documents: int
    avg_terms_per_doc: float
    n_distinct_terms: int
    page_bytes: int = PageGeometry().page_bytes
    collection_pages_override: float | None = None
    doc_pages_override: float | None = None
    entry_pages_override: float | None = None
    inverted_pages_override: float | None = None
    btree_pages_override: float | None = None

    def __post_init__(self) -> None:
        if self.n_documents < 0:
            raise CostModelError(f"N must be non-negative, got {self.n_documents}")
        if self.avg_terms_per_doc < 0:
            raise CostModelError(f"K must be non-negative, got {self.avg_terms_per_doc}")
        if self.n_distinct_terms < 0:
            raise CostModelError(f"T must be non-negative, got {self.n_distinct_terms}")
        if self.n_documents > 0 and self.avg_terms_per_doc > 0 and self.n_distinct_terms == 0:
            raise CostModelError("a non-empty collection must have distinct terms")
        if self.page_bytes <= 0:
            raise CostModelError(f"page size must be positive, got {self.page_bytes}")

    # --- paper aliases ------------------------------------------------------

    @property
    def N(self) -> int:  # noqa: N802 — paper notation
        return self.n_documents

    @property
    def K(self) -> float:  # noqa: N802
        return self.avg_terms_per_doc

    @property
    def T(self) -> int:  # noqa: N802
        return self.n_distinct_terms

    @property
    def S(self) -> float:  # noqa: N802
        """Average document size in pages: ``5 * K / P``."""
        if self.doc_pages_override is not None:
            return self.doc_pages_override
        return D_CELL_BYTES * self.avg_terms_per_doc / self.page_bytes

    @property
    def D(self) -> float:  # noqa: N802
        """Collection size in pages: ``S * N``."""
        if self.collection_pages_override is not None:
            return self.collection_pages_override
        return self.S * self.n_documents

    @property
    def J(self) -> float:  # noqa: N802
        """Average inverted-entry size in pages: ``5 * K * N / (T * P)``."""
        if self.entry_pages_override is not None:
            return self.entry_pages_override
        if self.n_distinct_terms == 0:
            return 0.0
        return (
            D_CELL_BYTES
            * self.avg_terms_per_doc
            * self.n_documents
            / (self.n_distinct_terms * self.page_bytes)
        )

    @property
    def I(self) -> float:  # noqa: N802, E743
        """Inverted-file size in pages: ``J * T``."""
        if self.inverted_pages_override is not None:
            return self.inverted_pages_override
        return self.J * self.n_distinct_terms

    @property
    def Bt(self) -> float:  # noqa: N802
        """B+-tree size in pages: ``9 * T / P`` (leaves only)."""
        if self.btree_pages_override is not None:
            return self.btree_pages_override
        return BTREE_CELL_BYTES * self.n_distinct_terms / self.page_bytes

    # --- constructors -----------------------------------------------------

    @classmethod
    def from_collection(
        cls, collection: DocumentCollection, geometry: PageGeometry | None = None
    ) -> "CollectionStats":
        """Measure a concrete collection exactly.

        ``D`` is pinned to the true packed size (``total_bytes / P``); the
        remaining figures follow from the exact N, K, T.
        """
        geometry = geometry or PageGeometry()
        return cls(
            name=collection.name,
            n_documents=collection.n_documents,
            avg_terms_per_doc=collection.avg_terms_per_document,
            n_distinct_terms=collection.n_distinct_terms,
            page_bytes=geometry.page_bytes,
            collection_pages_override=geometry.fractional_pages(collection.total_bytes),
        )

    # --- transformations (Groups 4 and 5) -----------------------------------

    def with_documents(self, n_documents: int, name: str | None = None) -> "CollectionStats":
        """Same per-document profile, different document count.

        Distinct terms are scaled by the Section 5.2 vocabulary-growth
        model ``f(m) = T - T * (1 - K/T)**m`` evaluated at the new count,
        so a small derived collection does not absurdly keep the full
        vocabulary.  Overridden sizes are dropped (they no longer apply).
        """
        if n_documents < 0:
            raise CostModelError(f"N must be non-negative, got {n_documents}")
        if self.n_documents and self.n_distinct_terms and self.avg_terms_per_doc:
            ratio = 1.0 - self.avg_terms_per_doc / self.n_distinct_terms
            n_terms = round(self.n_distinct_terms * (1.0 - ratio**n_documents))
            n_terms = max(n_terms, min(int(self.avg_terms_per_doc), self.n_distinct_terms))
        else:
            n_terms = 0
        return CollectionStats(
            name=name or f"{self.name}[N={n_documents}]",
            n_documents=n_documents,
            avg_terms_per_doc=self.avg_terms_per_doc,
            n_distinct_terms=n_terms,
            page_bytes=self.page_bytes,
        )

    def with_compressed_inverted(
        self, ratio: float, name: str | None = None
    ) -> "CollectionStats":
        """Statistics with the inverted file compressed by ``ratio``.

        Posting compression (see :mod:`repro.index.compression`) shrinks
        ``J`` and ``I`` by the codec's ratio while the document side and
        the B+-tree are untouched; feeding these statistics to the cost
        model prices HVNL/VVM runs over a compressed index.
        """
        if ratio < 1.0:
            raise CostModelError(f"compression ratio must be >= 1, got {ratio}")
        return replace(
            self,
            name=name or f"{self.name}+zip{ratio:.2g}",
            entry_pages_override=self.J / ratio,
            inverted_pages_override=self.I / ratio,
        )

    def rescaled(self, factor: int, name: str | None = None) -> "CollectionStats":
        """Group 5's transform: ``N / factor`` documents of ``K * factor`` terms.

        The collection size ``D = 5KN/P`` is invariant; only the document
        granularity changes, which is precisely what moves the workload
        into VVM's sweet spot.  The vocabulary ``T`` is kept (the terms
        are the same terms).
        """
        if factor <= 0:
            raise CostModelError(f"factor must be positive, got {factor}")
        return replace(
            self,
            name=name or f"{self.name}/x{factor}",
            n_documents=max(1, round(self.n_documents / factor)),
            avg_terms_per_doc=self.avg_terms_per_doc * factor,
            collection_pages_override=self.collection_pages_override,
            doc_pages_override=(
                None if self.doc_pages_override is None else self.doc_pages_override * factor
            ),
        )

    def __str__(self) -> str:
        return (
            f"{self.name}: N={self.N}, K={self.K:.0f}, T={self.T}, "
            f"D={self.D:.0f}p, S={self.S:.3f}p, J={self.J:.3f}p, "
            f"I={self.I:.0f}p, Bt={self.Bt:.1f}p"
        )
