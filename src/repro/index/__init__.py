"""Index substrate: inverted files, B+-trees and collection statistics.

The vertical (column-wise) form of the document-term matrix.  An inverted
file holds one entry per distinct term — a list of *i-cells*
``(d#, w)`` sorted by document number — and the entries themselves are
stored consecutively in increasing term-number order (Section 3).  A
B+-tree per inverted file maps a term number to the entry's location and
the term's document frequency (Section 4.2/5.2).
"""

from repro.index.bptree import BPlusTree
from repro.index.compression import (
    CompressedInvertedEntry,
    CompressedInvertedFile,
    compress_postings,
    decode_vbyte,
    decompress_postings,
    encode_vbyte,
)
from repro.index.inverted import InvertedEntry, InvertedFile
from repro.index.stats import CollectionStats

__all__ = [
    "BPlusTree",
    "CollectionStats",
    "CompressedInvertedEntry",
    "CompressedInvertedFile",
    "InvertedEntry",
    "InvertedFile",
    "compress_postings",
    "decode_vbyte",
    "decompress_postings",
    "encode_vbyte",
]
