"""A B+-tree over term numbers.

HVNL locates inverted-file entries through "a B+tree which is used to
find whether a term is in the collection and if present where the
corresponding inverted file entry is located" (Section 4.2).  Each leaf
cell stores a term number, the entry's address and the term's document
frequency — 9 bytes (Section 5.2) — and the paper sizes the tree by its
leaves alone: ``Bt = 9 * T / P``.

This is a real main-memory B+-tree (node splitting, borrowing, merging,
linked leaves, range scans), not a dict in disguise: the join executors
only need lookups, but the substrate is complete so the index layer can
stand on its own.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.constants import BTREE_CELL_BYTES
from repro.errors import BPlusTreeError
from repro.storage.pages import PageGeometry


class _Leaf:
    __slots__ = ("keys", "values", "next")

    def __init__(self) -> None:
        self.keys: list[int] = []
        self.values: list[Any] = []
        self.next: _Leaf | None = None


class _Internal:
    __slots__ = ("keys", "children")

    def __init__(self) -> None:
        self.keys: list[int] = []
        self.children: list[_Leaf | _Internal] = []


def _find_child(node: _Internal, key: int) -> int:
    """Index of the child subtree that may contain ``key``."""
    lo, hi = 0, len(node.keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if key < node.keys[mid]:
            hi = mid
        else:
            lo = mid + 1
    return lo


def _group_sizes(total: int, *, max_size: int, min_size: int) -> list[int]:
    """Split ``total`` items into groups of ``<= max_size``.

    Every group except a lone single group meets ``min_size``: when the
    natural remainder would under-fill the last group, items are shifted
    from the second-to-last group (which stays >= ``min_size`` because the
    deficit is at most ``min_size - 1 <= max_size - min_size``).
    """
    if total <= max_size:
        return [total]
    sizes = [max_size] * (total // max_size)
    remainder = total % max_size
    if remainder:
        sizes.append(remainder)
        if remainder < min_size:
            deficit = min_size - remainder
            sizes[-2] -= deficit
            sizes[-1] += deficit
    return sizes


def _leaf_position(leaf: _Leaf, key: int) -> int:
    lo, hi = 0, len(leaf.keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if leaf.keys[mid] < key:
            lo = mid + 1
        else:
            hi = mid
    return lo


class BPlusTree:
    """Order-``order`` B+-tree mapping int keys to arbitrary values.

    ``order`` is the maximum number of keys per node (leaf and internal
    alike); nodes other than the root keep at least ``order // 2`` keys.
    """

    def __init__(self, order: int = 64) -> None:
        if order < 3:
            raise BPlusTreeError(f"order must be at least 3, got {order}")
        self.order = order
        self._root: _Leaf | _Internal = _Leaf()
        self._size = 0

    # --- queries ------------------------------------------------------------

    def search(self, key: int) -> Any | None:
        """The value stored under ``key``, or ``None``."""
        leaf = self._descend(key)
        pos = _leaf_position(leaf, key)
        if pos < len(leaf.keys) and leaf.keys[pos] == key:
            return leaf.values[pos]
        return None

    def __contains__(self, key: int) -> bool:
        return self.search(key) is not None

    def range(self, lo: int, hi: int) -> Iterator[tuple[int, Any]]:
        """All ``(key, value)`` with ``lo <= key <= hi``, ascending."""
        if lo > hi:
            return
        leaf: _Leaf | None = self._descend(lo)
        pos = _leaf_position(leaf, lo)
        while leaf is not None:
            while pos < len(leaf.keys):
                key = leaf.keys[pos]
                if key > hi:
                    return
                yield key, leaf.values[pos]
                pos += 1
            leaf = leaf.next
            pos = 0

    def items(self) -> Iterator[tuple[int, Any]]:
        """Every ``(key, value)`` in ascending key order."""
        leaf: _Leaf | _Internal = self._root
        while isinstance(leaf, _Internal):
            leaf = leaf.children[0]
        current: _Leaf | None = leaf
        while current is not None:
            yield from zip(current.keys, current.values)
            current = current.next

    def min_key(self) -> int | None:
        """Smallest stored key, or ``None`` when empty."""
        if self._size == 0:
            return None
        node: _Leaf | _Internal = self._root
        while isinstance(node, _Internal):
            node = node.children[0]
        return node.keys[0]

    def max_key(self) -> int | None:
        """Largest stored key, or ``None`` when empty."""
        if self._size == 0:
            return None
        node: _Leaf | _Internal = self._root
        while isinstance(node, _Internal):
            node = node.children[-1]
        return node.keys[-1]

    def _descend(self, key: int) -> _Leaf:
        node: _Leaf | _Internal = self._root
        while isinstance(node, _Internal):
            node = node.children[_find_child(node, key)]
        return node

    # --- insertion -----------------------------------------------------------

    def insert(self, key: int, value: Any, *, replace: bool = False) -> None:
        """Insert ``key``.  Duplicate keys raise unless ``replace`` is set."""
        result = self._insert(self._root, key, value, replace)
        if result is not None:
            separator, right = result
            new_root = _Internal()
            new_root.keys = [separator]
            new_root.children = [self._root, right]
            self._root = new_root

    def _insert(
        self, node: _Leaf | _Internal, key: int, value: Any, replace: bool
    ) -> tuple[int, _Leaf | _Internal] | None:
        if isinstance(node, _Leaf):
            pos = _leaf_position(node, key)
            if pos < len(node.keys) and node.keys[pos] == key:
                if not replace:
                    raise BPlusTreeError(f"duplicate key {key}")
                node.values[pos] = value
                return None
            node.keys.insert(pos, key)
            node.values.insert(pos, value)
            self._size += 1
            if len(node.keys) <= self.order:
                return None
            return self._split_leaf(node)
        child_index = _find_child(node, key)
        result = self._insert(node.children[child_index], key, value, replace)
        if result is None:
            return None
        separator, right = result
        node.keys.insert(child_index, separator)
        node.children.insert(child_index + 1, right)
        if len(node.keys) <= self.order:
            return None
        return self._split_internal(node)

    def _split_leaf(self, leaf: _Leaf) -> tuple[int, _Leaf]:
        mid = len(leaf.keys) // 2
        right = _Leaf()
        right.keys = leaf.keys[mid:]
        right.values = leaf.values[mid:]
        right.next = leaf.next
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        leaf.next = right
        return right.keys[0], right

    def _split_internal(self, node: _Internal) -> tuple[int, _Internal]:
        mid = len(node.keys) // 2
        separator = node.keys[mid]
        right = _Internal()
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        return separator, right

    # --- deletion --------------------------------------------------------------

    def delete(self, key: int) -> Any:
        """Remove ``key`` and return its value; raises if absent."""
        value = self._delete(self._root, key)
        root = self._root
        if isinstance(root, _Internal) and not root.keys:
            self._root = root.children[0]
        return value

    @property
    def _min_keys(self) -> int:
        return self.order // 2

    def _delete(self, node: _Leaf | _Internal, key: int) -> Any:
        if isinstance(node, _Leaf):
            pos = _leaf_position(node, key)
            if pos >= len(node.keys) or node.keys[pos] != key:
                raise BPlusTreeError(f"key {key} not found")
            node.keys.pop(pos)
            value = node.values.pop(pos)
            self._size -= 1
            return value
        child_index = _find_child(node, key)
        value = self._delete(node.children[child_index], key)
        self._rebalance(node, child_index)
        return value

    def _rebalance(self, parent: _Internal, child_index: int) -> None:
        child = parent.children[child_index]
        if len(child.keys) >= self._min_keys:
            return
        left = parent.children[child_index - 1] if child_index > 0 else None
        right = (
            parent.children[child_index + 1]
            if child_index + 1 < len(parent.children)
            else None
        )
        if left is not None and len(left.keys) > self._min_keys:
            self._borrow_from_left(parent, child_index, left, child)
        elif right is not None and len(right.keys) > self._min_keys:
            self._borrow_from_right(parent, child_index, child, right)
        elif left is not None:
            self._merge(parent, child_index - 1, left, child)
        elif right is not None:
            self._merge(parent, child_index, child, right)

    def _borrow_from_left(
        self, parent: _Internal, child_index: int, left: Any, child: Any
    ) -> None:
        if isinstance(child, _Leaf):
            child.keys.insert(0, left.keys.pop())
            child.values.insert(0, left.values.pop())
            parent.keys[child_index - 1] = child.keys[0]
        else:
            child.keys.insert(0, parent.keys[child_index - 1])
            parent.keys[child_index - 1] = left.keys.pop()
            child.children.insert(0, left.children.pop())

    def _borrow_from_right(
        self, parent: _Internal, child_index: int, child: Any, right: Any
    ) -> None:
        if isinstance(child, _Leaf):
            child.keys.append(right.keys.pop(0))
            child.values.append(right.values.pop(0))
            parent.keys[child_index] = right.keys[0]
        else:
            child.keys.append(parent.keys[child_index])
            parent.keys[child_index] = right.keys.pop(0)
            child.children.append(right.children.pop(0))

    def _merge(self, parent: _Internal, left_index: int, left: Any, right: Any) -> None:
        if isinstance(left, _Leaf):
            left.keys.extend(right.keys)
            left.values.extend(right.values)
            left.next = right.next
            parent.keys.pop(left_index)
        else:
            left.keys.append(parent.keys.pop(left_index))
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        parent.children.pop(left_index + 1)

    # --- bulk construction -----------------------------------------------------

    @classmethod
    def bulk_load(cls, items: list[tuple[int, Any]], order: int = 64) -> "BPlusTree":
        """Build a tree from ``(key, value)`` pairs sorted by unique key.

        Packs leaves to ~full and stacks internal levels on top — the
        standard bottom-up load used when a collection's inverted file is
        built in one pass.
        """
        tree = cls(order=order)
        if not items:
            return tree
        for i in range(1, len(items)):
            if items[i - 1][0] >= items[i][0]:
                raise BPlusTreeError(
                    "bulk_load requires strictly increasing keys; "
                    f"saw {items[i - 1][0]} before {items[i][0]}"
                )
        leaves: list[_Leaf] = []
        for size in _group_sizes(len(items), max_size=order, min_size=order // 2):
            start = sum(len(leaf.keys) for leaf in leaves)
            chunk = items[start : start + size]
            leaf = _Leaf()
            leaf.keys = [k for k, _ in chunk]
            leaf.values = [v for _, v in chunk]
            if leaves:
                leaves[-1].next = leaf
            leaves.append(leaf)
        return cls._from_leaves(leaves, order=order)

    @classmethod
    def _from_leaves(cls, leaves: list[_Leaf], *, order: int) -> "BPlusTree":
        """Stack internal levels over pre-packed, pre-linked leaves.

        The stacking is deterministic (driven by :func:`_group_sizes`
        alone), so any two trees with identical leaf lists get identical
        internal levels — this is what lets a persisted tree
        (:mod:`repro.index.btree_io`) store only its leaves and still
        reproduce the bulk-load page layout exactly on reload.
        """
        tree = cls(order=order)
        if not leaves:
            return tree
        level: list[_Leaf | _Internal] = list(leaves)
        first_keys = [leaf.keys[0] for leaf in leaves]
        while len(level) > 1:
            parents: list[_Leaf | _Internal] = []
            parent_first_keys: list[int] = []
            start = 0
            for size in _group_sizes(
                len(level), max_size=order + 1, min_size=order // 2 + 1
            ):
                node = _Internal()
                node.children = level[start : start + size]
                node.keys = first_keys[start + 1 : start + size]
                parents.append(node)
                parent_first_keys.append(first_keys[start])
                start += size
            level = parents
            first_keys = parent_first_keys
        tree._root = level[0]
        tree._size = sum(len(leaf.keys) for leaf in leaves)
        return tree

    # --- sizing (the paper's Bt) ---------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Number of levels (a lone leaf has height 1)."""
        height = 1
        node: _Leaf | _Internal = self._root
        while isinstance(node, _Internal):
            height += 1
            node = node.children[0]
        return height

    def size_in_pages(self, geometry: PageGeometry | None = None) -> float:
        """The paper's ``Bt = 9 * T / P`` (leaf cells only, Section 5.2)."""
        geometry = geometry or PageGeometry()
        return geometry.fractional_pages(self._size * BTREE_CELL_BYTES)

    # --- invariants (exercised by the property-based tests) ---------------------

    def validate(self) -> None:
        """Check every structural invariant; raises on the first violation."""
        leaves_by_scan: list[_Leaf] = []
        self._validate_node(self._root, None, None, is_root=True, leaves=leaves_by_scan)
        depths = {self._leaf_depth(leaf) for leaf in leaves_by_scan}
        if len(depths) > 1:
            raise BPlusTreeError(f"leaves at unequal depths: {sorted(depths)}")
        # linked list must visit exactly the leaves found by traversal, in order
        node: _Leaf | _Internal = self._root
        while isinstance(node, _Internal):
            node = node.children[0]
        linked: list[_Leaf] = []
        current: _Leaf | None = node
        while current is not None:
            linked.append(current)
            current = current.next
        if linked != leaves_by_scan:
            raise BPlusTreeError("leaf linked list disagrees with tree traversal")
        keys = [k for leaf in linked for k in leaf.keys]
        if keys != sorted(set(keys)):
            raise BPlusTreeError("keys not globally sorted and unique")
        if len(keys) != self._size:
            raise BPlusTreeError(f"size {self._size} but {len(keys)} keys stored")

    def _leaf_depth(self, target: _Leaf) -> int:
        depth = 1
        node: _Leaf | _Internal = self._root
        while isinstance(node, _Internal):
            node = node.children[_find_child(node, target.keys[0])] if target.keys else node.children[0]
            depth += 1
        return depth

    def _validate_node(
        self,
        node: _Leaf | _Internal,
        lo: int | None,
        hi: int | None,
        *,
        is_root: bool,
        leaves: list[_Leaf],
    ) -> None:
        if isinstance(node, _Leaf):
            if not is_root and len(node.keys) < self._min_keys:
                raise BPlusTreeError(
                    f"leaf underflow: {len(node.keys)} < {self._min_keys}"
                )
            if len(node.keys) > self.order:
                raise BPlusTreeError(f"leaf overflow: {len(node.keys)} > {self.order}")
            for key in node.keys:
                if (lo is not None and key < lo) or (hi is not None and key >= hi):
                    raise BPlusTreeError(f"leaf key {key} outside ({lo}, {hi})")
            leaves.append(node)
            return
        if len(node.children) != len(node.keys) + 1:
            raise BPlusTreeError(
                f"internal node has {len(node.keys)} keys but {len(node.children)} children"
            )
        if not is_root and len(node.keys) < self._min_keys:
            raise BPlusTreeError(
                f"internal underflow: {len(node.keys)} < {self._min_keys}"
            )
        if len(node.keys) > self.order:
            raise BPlusTreeError(f"internal overflow: {len(node.keys)} > {self.order}")
        if node.keys != sorted(node.keys):
            raise BPlusTreeError("internal keys not sorted")
        bounds = [lo, *node.keys, hi]
        for i, child in enumerate(node.children):
            self._validate_node(child, bounds[i], bounds[i + 1], is_root=False, leaves=leaves)
