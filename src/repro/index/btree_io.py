"""B+-tree persistence: store the leaves, reproduce the layout.

The environment's term trees are built by
:meth:`~repro.index.bptree.BPlusTree.bulk_load` over ``(term,
(entry_address, document_frequency))`` leaf cells — exactly the 9-byte
cells Section 5.2 sizes the tree by (``Bt = 9 * T / P``).  A workspace
therefore persists *only the leaf level*: term numbers, entry addresses
and document frequencies, grouped per leaf.  Loading rebuilds the leaves
verbatim and restacks the internal levels with the same deterministic
grouping :meth:`bulk_load` uses, so the loaded tree's page layout —
node count per level, keys per node, height — equals the originally
bulk-loaded tree's exactly; :func:`layout_signature` makes that equality
checkable.

File format (``<name>.btree``, little-endian)::

    "TJB1" | u32 order | u32 n_leaves
    per leaf: u32 n_cells, then n_cells x (u32 term, u32 address, u32 df)

Truncated or corrupt files raise
:class:`~repro.errors.BPlusTreeError` naming the file, the leaf index
and the byte offset; the reconstructed tree is additionally run through
:meth:`~repro.index.bptree.BPlusTree.validate`, so a file whose cells
decode but violate the structural invariants is rejected too.
"""

from __future__ import annotations

import struct
from pathlib import Path

from repro.errors import BPlusTreeError
from repro.index.bptree import BPlusTree, _Internal, _Leaf

#: file magic of the persisted-leaves format
BTREE_MAGIC = b"TJB1"

_HEADER = struct.Struct("<4sII")
_LEAF_HEADER = struct.Struct("<I")
_CELL = struct.Struct("<III")

_MAX_U32 = (1 << 32) - 1


def save_btree(tree: BPlusTree, path: str | Path) -> Path:
    """Write a term tree's leaf level; returns the path.

    Values must be ``(entry_address, document_frequency)`` pairs of
    non-negative ints below ``2**32`` — the shape the environment's
    inverted-file trees store; anything else raises
    :class:`~repro.errors.BPlusTreeError` (the format is a term index,
    not a pickle).
    """
    path = Path(path)
    leaves = _collect_leaves(tree)
    out = bytearray(_HEADER.pack(BTREE_MAGIC, tree.order, len(leaves)))
    for leaf in leaves:
        out += _LEAF_HEADER.pack(len(leaf.keys))
        for key, value in zip(leaf.keys, leaf.values):
            if (
                not isinstance(value, tuple)
                or len(value) != 2
                or not all(isinstance(part, int) for part in value)
            ):
                raise BPlusTreeError(
                    f"cannot persist value {value!r} under key {key}: the "
                    ".btree format stores (entry_address, document_frequency) "
                    "int pairs only"
                )
            address, frequency = value
            if not (0 <= key <= _MAX_U32 and 0 <= address <= _MAX_U32 and 0 <= frequency <= _MAX_U32):
                raise BPlusTreeError(
                    f"cell ({key}, {address}, {frequency}) does not fit the "
                    "u32 fields of the .btree format"
                )
            out += _CELL.pack(key, address, frequency)
    path.write_bytes(bytes(out))
    return path


def load_btree(path: str | Path) -> BPlusTree:
    """Read a tree written by :func:`save_btree`.

    The leaves are reconstructed exactly as stored and the internal
    levels restacked deterministically, so for a tree that was built by
    ``bulk_load`` the loaded structure is layout-identical to the
    original (same :func:`layout_signature`).
    """
    path = Path(path)
    data = path.read_bytes()
    if len(data) < _HEADER.size:
        raise BPlusTreeError(
            f"{path}: truncated header: {len(data)} bytes, need {_HEADER.size}"
        )
    magic, order, n_leaves = _HEADER.unpack_from(data, 0)
    if magic != BTREE_MAGIC:
        raise BPlusTreeError(f"{path} is not a textjoin .btree file")
    if order < 3:
        raise BPlusTreeError(f"{path}: stored order {order} is below the minimum 3")
    offset = _HEADER.size
    leaves: list[_Leaf] = []
    for leaf_index in range(n_leaves):
        if len(data) < offset + _LEAF_HEADER.size:
            raise BPlusTreeError(
                f"{path}: leaf {leaf_index} at byte {offset}: truncated leaf header"
            )
        (n_cells,) = _LEAF_HEADER.unpack_from(data, offset)
        offset += _LEAF_HEADER.size
        cells_end = offset + n_cells * _CELL.size
        if len(data) < cells_end:
            raise BPlusTreeError(
                f"{path}: leaf {leaf_index} at byte {offset}: {n_cells} cells "
                f"need {cells_end} bytes but the file has {len(data)}"
            )
        leaf = _Leaf()
        for cell_index in range(n_cells):
            key, address, frequency = _CELL.unpack_from(
                data, offset + cell_index * _CELL.size
            )
            leaf.keys.append(key)
            leaf.values.append((address, frequency))
        if leaves:
            leaves[-1].next = leaf
        leaves.append(leaf)
        offset = cells_end
    if offset != len(data):
        raise BPlusTreeError(
            f"{path}: {len(data) - offset} trailing bytes after "
            f"{n_leaves} leaves (file ends at byte {offset})"
        )
    tree = BPlusTree._from_leaves(leaves, order=order)
    try:
        tree.validate()
    except BPlusTreeError as exc:
        raise BPlusTreeError(f"{path}: invalid tree structure: {exc}") from exc
    return tree


def layout_signature(tree: BPlusTree) -> tuple[tuple[int, ...], ...]:
    """The exact page layout: keys-per-node for every level, top down.

    Two trees with equal signatures have identical node counts, fills
    and height — the property the workspace round-trip check pins, and
    what "loaded trees reproduce the bulk-load layout" means precisely.
    """
    signature: list[tuple[int, ...]] = []
    level: list[_Leaf | _Internal] = [tree._root]
    while True:
        signature.append(tuple(len(node.keys) for node in level))
        if isinstance(level[0], _Leaf):
            return tuple(signature)
        level = [child for node in level for child in node.children]


def _collect_leaves(tree: BPlusTree) -> list[_Leaf]:
    """The leaf level in key order (empty tree -> one empty root leaf)."""
    node: _Leaf | _Internal = tree._root
    while isinstance(node, _Internal):
        node = node.children[0]
    leaves: list[_Leaf] = []
    current: _Leaf | None = node
    while current is not None:
        leaves.append(current)
        current = current.next
    if len(leaves) == 1 and not leaves[0].keys:
        return []
    return leaves


__all__ = ["BTREE_MAGIC", "layout_signature", "load_btree", "save_btree"]
