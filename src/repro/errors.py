"""Exception hierarchy for the textjoin reproduction library.

Every error raised by this package derives from :class:`ReproError`, so a
caller embedding the library can catch one base class.  Subclasses are
grouped by subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class InvalidParameterError(ReproError, ValueError):
    """An argument failed validation (wrong range, sign or combination).

    Also subclasses :class:`ValueError` so callers written against the
    built-in type keep working.
    """


class AnalysisError(ReproError):
    """The static-analysis engine could not read, parse or run a target."""


class StorageError(ReproError):
    """Base class for simulated-storage errors."""


class PageOutOfRangeError(StorageError):
    """A page id outside an extent or disk was requested."""


class BufferExhaustedError(StorageError):
    """The buffer manager could not free a frame (all frames pinned)."""


class ExtentFullError(StorageError):
    """An append was attempted past a fixed-size extent."""


class TextError(ReproError):
    """Base class for text-model errors."""


class VocabularyError(TextError):
    """An unknown term or term number was looked up."""


class DocumentFormatError(TextError):
    """A document's d-cells are malformed (unsorted, duplicated, bad weight)."""


class IndexError_(ReproError):
    """Base class for index-structure errors (named to avoid shadowing built-in)."""


class BPlusTreeError(IndexError_):
    """Structural error inside the B+-tree."""


class InvertedFileError(IndexError_):
    """Structural error inside an inverted file."""


class CostModelError(ReproError):
    """A cost formula was evaluated with inconsistent parameters."""


class InsufficientMemoryError(CostModelError):
    """The configured buffer cannot satisfy an algorithm's floor requirement."""


class JoinError(ReproError):
    """Base class for join-execution errors."""


class ExecError(ReproError):
    """Base class for streaming-execution (``repro.exec``) errors."""


class BudgetExceededError(ExecError):
    """An :class:`~repro.exec.context.ExecutionContext` budget ran out.

    Raised the moment the page or time budget is crossed — possibly in
    the middle of a scan — and carries the partial accounting so the
    caller can report how far the join got before it was cut off.
    """

    def __init__(
        self,
        message: str,
        *,
        stats=None,
        pages_used: int | None = None,
        elapsed: float | None = None,
    ) -> None:
        super().__init__(message)
        #: :class:`~repro.storage.iostats.IOStats` delta accumulated
        #: inside the context before the budget was crossed (may be None
        #: when the context was never attached to a disk).
        self.stats = stats
        self.pages_used = pages_used
        self.elapsed = elapsed


class ExecutionCancelledError(ExecError):
    """The context's cancellation check asked the join to stop."""


class ParallelExecutionError(ExecError):
    """Sharded parallel execution (:mod:`repro.parallel`) failed.

    Raised for invalid shard configurations and for shard workers that
    died in a pool child; carries the failing shard's index (when known)
    so the caller can replay that shard sequentially.
    """

    def __init__(self, message: str, *, shard: int | None = None) -> None:
        super().__init__(message)
        #: index of the shard whose worker failed, when attributable
        self.shard = shard


class SqlError(ReproError):
    """Base class for the mini SQL front-end."""


class SqlSyntaxError(SqlError):
    """The query text could not be parsed."""


class SqlSemanticError(SqlError):
    """The query parsed but references unknown relations/attributes or
    applies SIMILAR_TO to non-textual attributes."""


class WorkloadError(ReproError):
    """A synthetic workload was requested with impossible parameters."""


class ConformanceError(ReproError):
    """The conformance harness was misconfigured or a report is malformed.

    Divergences found *by* the harness are not raised — they are
    collected into the conformance report so every executor and invariant
    is still exercised; this error covers broken harness inputs (unknown
    check names, invalid report schemas, impossible trial parameters).
    """


class ServiceError(ReproError):
    """Base class for the join-service layer (:mod:`repro.service`)."""


class ServiceRequestError(ServiceError):
    """A query request was malformed (bad JSON body, missing or
    wrongly-typed fields, unknown parameters).  Maps to HTTP 400."""


class ServiceResponseError(ServiceError):
    """A service response document is malformed (wrong schema tag,
    missing sections, mistyped fields).  Raised by the strict
    validate/load helpers in :mod:`repro.service.schema` — a response
    that *looks* well-formed but is not would silently corrupt clients
    and CI artifacts."""


class UnknownWorkspaceError(ServiceError):
    """A request named a workspace the service did not load.  Maps to
    HTTP 404."""


class ServiceOverloadedError(ServiceError):
    """Admission control rejected a request: every worker slot is
    occupied.  Maps to HTTP 429 — the client should retry later rather
    than queue unboundedly on the server."""


class WorkspaceError(ReproError):
    """A persistent dataset workspace is malformed or cannot be built.

    Raised by :mod:`repro.workspace` for invalid manifests, missing or
    mismatched artifact files and unsupported build configurations.
    Low-level decode failures inside individual artifact files surface as
    the artifact's own error type (:class:`DocumentFormatError` for
    ``.docs``/``.inv`` pairs, :class:`BPlusTreeError` for ``.btree``
    files) so the byte-level context is not lost.
    """
