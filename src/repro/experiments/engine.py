"""Declarative sweep evaluation: one memoized engine under every study.

The paper's Section 6 study is 21 sweeps over the same six cost
formulas, and the five group runners, the summary checks, the report
generator and the bisection boundaries all revisit overlapping
``(statistics, system, query)`` grid points.  This module factors that
repetition out:

* a :class:`SweepPoint` names one cost-model evaluation by its complete
  canonical input — ``(JoinSide C1, JoinSide C2, SystemParams,
  QueryParams)`` plus the swept-variable label; every frozen parameter
  dataclass is hashable, so the input tuple *is* the cache key;
* a :class:`SweepSpec` is a named, ordered grid of points — what a
  ``run_groupN`` used to express as nested loops;
* a :class:`SweepEngine` evaluates specs through a per-process memo
  table (each unique point is computed exactly once per engine, no
  matter how many grids request it) and, optionally, a
  ``concurrent.futures`` process pool.  Results are returned in spec
  order and re-labelled per point, so sequential and parallel runs are
  byte-identical;
* every ``evaluate``/``report_for`` call is instrumented — wall-clock
  seconds, point counts, cache hits/misses — and exported as a JSON
  *run manifest* (see :meth:`SweepEngine.manifest` and
  :func:`validate_manifest`) that the benchmark suite writes under
  ``benchmarks/results/``.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from repro.cost.model import CostModel, CostReport
from repro.cost.params import JoinSide, QueryParams, SystemParams
from repro.errors import InvalidParameterError

MANIFEST_SCHEMA = "repro-engine-manifest/1"
"""Schema tag stamped into (and required of) every run manifest."""

PointKey = tuple[JoinSide, JoinSide, SystemParams, QueryParams, str]
"""The canonical identity of one cost-model evaluation.

The trailing string is the *dataset tag* — empty for purely analytical
sweeps, a :func:`~repro.workspace.manifest.manifest_fingerprint` for
workspace-backed ones — so results computed over different persisted
dataset contents never share a cache entry even when the summary
statistics coincide.
"""


@dataclass(frozen=True)
class SweepPoint:
    """One grid cell: a full cost-model input plus its sweep label.

    ``variable``/``value`` do not affect the computed
    :class:`~repro.cost.model.CostReport` — they only name which knob
    this cell sweeps — so two points differing only in their label share
    one cache entry.  ``dataset`` *is* part of the identity: points tied
    to different workspace fingerprints are distinct cache entries.
    """

    side1: JoinSide
    side2: JoinSide
    system: SystemParams
    query: QueryParams
    variable: str
    value: float
    #: workspace fingerprint backing this point ("" = analytical only)
    dataset: str = ""

    @property
    def key(self) -> PointKey:
        """The memoization key: everything the cost model consumes."""
        return (self.side1, self.side2, self.system, self.query, self.dataset)

    @property
    def label(self) -> str:
        """The report label (matches the historical group-grid labels)."""
        return (
            f"{self.side1.stats.name}|{self.side2.stats.name}"
            f"|{self.variable}={self.value}"
        )


@dataclass(frozen=True)
class SweepSpec:
    """A named, ordered grid of sweep points."""

    name: str
    points: tuple[SweepPoint, ...]

    def __len__(self) -> int:
        return len(self.points)


@dataclass
class RunRecord:
    """Instrumentation for one ``evaluate``/``report_for`` call."""

    spec: str
    mode: str
    points: int
    cache_hits: int
    cache_misses: int
    wall_seconds: float

    def as_dict(self) -> dict[str, object]:
        """JSON-ready flat dict."""
        return {
            "spec": self.spec,
            "mode": self.mode,
            "points": self.points,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "wall_seconds": self.wall_seconds,
        }


def _evaluate_key(key: PointKey) -> CostReport:
    """Evaluate one point (module-level so process pools can pickle it).

    The dataset tag is cache identity only — the analytical model sees
    the dataset exclusively through the statistics in the sides.
    """
    side1, side2, system, query, _dataset = key
    return CostModel(side1, side2, system, query).report()


class SweepEngine:
    """Evaluates sweep grids with per-process memoization and fan-out.

    ``jobs`` selects the execution mode: ``0``/``1`` (the default) is
    deterministic sequential evaluation in this process; ``N > 1`` fans
    cache misses out to an ``N``-worker process pool; ``None`` asks for
    ``os.cpu_count()`` workers.  Either way results come back in request
    order with per-point labels, so the rendered output is byte-identical
    across modes.

    ``cache=False`` disables memoization (every requested point is
    recomputed) — the baseline the benchmarks measure speedups against.
    """

    def __init__(self, jobs: int | None = 0, cache: bool = True) -> None:
        if jobs is None:
            jobs = os.cpu_count() or 1
        if jobs < 0:
            raise InvalidParameterError(f"jobs must be non-negative, got {jobs}")
        self.jobs = jobs
        self.cache_enabled = cache
        self._cache: dict[PointKey, CostReport] = {}
        self.hits = 0
        self.misses = 0
        self.runs: list[RunRecord] = []
        self._point_record: RunRecord | None = None

    # --- evaluation -------------------------------------------------------

    def evaluate(self, spec: SweepSpec) -> list[CostReport]:
        """All of a spec's reports, in point order, labelled per point.

        Unique missing keys are computed once (sequentially or through
        the pool) and memoized; repeated keys — within the spec or from
        earlier calls — are cache hits.
        """
        start = time.perf_counter()
        hits = 0
        if self.cache_enabled:
            missing: list[PointKey] = []
            seen: set[PointKey] = set()
            for point in spec.points:
                key = point.key
                if key in self._cache:
                    hits += 1
                elif key not in seen:
                    seen.add(key)
                    missing.append(key)
                else:
                    hits += 1  # deduplicated within this very spec
            self._cache.update(zip(missing, self._compute(missing)))
            reports = [
                replace(self._cache[point.key], label=point.label)
                for point in spec.points
            ]
            misses = len(missing)
        else:
            keys = [point.key for point in spec.points]
            reports = [
                replace(report, label=point.label)
                for point, report in zip(spec.points, self._compute(keys))
            ]
            misses = len(keys)
        self.hits += hits
        self.misses += misses
        self.runs.append(
            RunRecord(
                spec=spec.name,
                mode=self.mode,
                points=len(spec.points),
                cache_hits=hits,
                cache_misses=misses,
                wall_seconds=time.perf_counter() - start,
            )
        )
        return reports

    def report_for(
        self,
        side1: JoinSide,
        side2: JoinSide,
        system: SystemParams | None = None,
        query: QueryParams | None = None,
        label: str = "",
        dataset: str = "",
    ) -> CostReport:
        """One memoized report — the single-point path bisection uses.

        Point evaluations land in the same cache as :meth:`evaluate`, so
        a bisection probing a grid's base point gets it for free (and
        vice versa).  All single-point queries aggregate into one rolling
        run record named ``"points"`` (a bisection makes hundreds of
        these; one record per probe would bloat the manifest and the
        bookkeeping would dominate the 60-microsecond evaluation).
        """
        start = time.perf_counter()
        key: PointKey = (
            side1,
            side2,
            system if system is not None else SystemParams(),
            query if query is not None else QueryParams(),
            dataset,
        )
        if self.cache_enabled:
            report = self._cache.get(key)
            if report is None:
                report = _evaluate_key(key)
                self._cache[key] = report
                hit = False
            else:
                hit = True
        else:
            report = _evaluate_key(key)
            hit = False
        record = self._point_record
        if record is None:
            record = RunRecord(
                spec="points", mode=self.mode, points=0,
                cache_hits=0, cache_misses=0, wall_seconds=0.0,
            )
            self._point_record = record
            self.runs.append(record)
        record.points += 1
        if hit:
            self.hits += 1
            record.cache_hits += 1
        else:
            self.misses += 1
            record.cache_misses += 1
        record.wall_seconds += time.perf_counter() - start
        return report if not label else replace(report, label=label)

    def _compute(self, keys: Sequence[PointKey]) -> list[CostReport]:
        if not keys:
            return []
        if self.jobs > 1 and len(keys) > 1:
            chunksize = max(1, len(keys) // (self.jobs * 4))
            with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                return list(pool.map(_evaluate_key, keys, chunksize=chunksize))
        return [_evaluate_key(key) for key in keys]

    # --- introspection ----------------------------------------------------

    @property
    def mode(self) -> str:
        """``'sequential'`` or ``'parallel[N]'``."""
        return f"parallel[{self.jobs}]" if self.jobs > 1 else "sequential"

    @property
    def cache_size(self) -> int:
        """Number of memoized points."""
        return len(self._cache)

    @property
    def hit_rate(self) -> float:
        """Fraction of requested points served from cache (0.0 when idle)."""
        requested = self.hits + self.misses
        return self.hits / requested if requested else 0.0

    def clear_cache(self) -> None:
        """Drop every memoized report (run records are preserved)."""
        self._cache.clear()

    # --- the run manifest -------------------------------------------------

    def manifest(self, extras: Mapping[str, object] | None = None) -> dict[str, object]:
        """The JSON-ready run manifest for everything this engine did.

        ``extras`` lets a caller attach benchmark figures (measured
        speedups, host facts) without touching the schema's core keys.
        """
        wall = sum(record.wall_seconds for record in self.runs)
        return {
            "schema": MANIFEST_SCHEMA,
            "created_unix": time.time(),
            "jobs": self.jobs,
            "mode": self.mode,
            "cache_enabled": self.cache_enabled,
            "cpu_count": os.cpu_count() or 1,
            "totals": {
                "runs": len(self.runs),
                "points_requested": self.hits + self.misses,
                "points_evaluated": self.misses,
                "cache_hits": self.hits,
                "cache_misses": self.misses,
                "cache_hit_rate": self.hit_rate,
                "unique_points_cached": self.cache_size,
                "wall_seconds": wall,
            },
            "runs": [record.as_dict() for record in self.runs],
            "extras": dict(extras or {}),
        }

    def write_manifest(
        self, path: str | Path, extras: Mapping[str, object] | None = None
    ) -> Path:
        """Write :meth:`manifest` to ``path`` as indented JSON."""
        path = Path(path)
        path.write_text(json.dumps(self.manifest(extras), indent=2) + "\n")
        return path

    def __repr__(self) -> str:
        return (
            f"SweepEngine(mode={self.mode}, cache={self.cache_enabled}, "
            f"cached={self.cache_size}, hits={self.hits}, misses={self.misses})"
        )


_MANIFEST_TOTAL_KEYS = frozenset(
    {
        "runs",
        "points_requested",
        "points_evaluated",
        "cache_hits",
        "cache_misses",
        "cache_hit_rate",
        "unique_points_cached",
        "wall_seconds",
    }
)

_MANIFEST_RUN_KEYS = frozenset(
    {"spec", "mode", "points", "cache_hits", "cache_misses", "wall_seconds"}
)


def validate_manifest(manifest: Mapping[str, object]) -> dict[str, object]:
    """Check a run manifest against the v1 schema; return it as a dict.

    Raises :class:`~repro.errors.InvalidParameterError` naming the first
    violated expectation — CI runs this over the benchmark artifact so a
    schema drift fails the build instead of silently corrupting the
    ``BENCH_*.json`` perf trajectory.
    """
    if manifest.get("schema") != MANIFEST_SCHEMA:
        raise InvalidParameterError(
            f"manifest schema is {manifest.get('schema')!r}, "
            f"expected {MANIFEST_SCHEMA!r}"
        )
    for key in ("created_unix", "jobs", "mode", "cache_enabled", "cpu_count"):
        if key not in manifest:
            raise InvalidParameterError(f"manifest is missing {key!r}")
    totals = manifest.get("totals")
    if not isinstance(totals, Mapping) or not _MANIFEST_TOTAL_KEYS <= set(totals):
        raise InvalidParameterError(
            f"manifest totals must carry {sorted(_MANIFEST_TOTAL_KEYS)}"
        )
    runs = manifest.get("runs")
    if not isinstance(runs, list):
        raise InvalidParameterError("manifest runs must be a list")
    for record in runs:
        if not isinstance(record, Mapping) or not _MANIFEST_RUN_KEYS <= set(record):
            raise InvalidParameterError(
                f"every run record must carry {sorted(_MANIFEST_RUN_KEYS)}"
            )
    if totals["points_requested"] != totals["cache_hits"] + totals["cache_misses"]:
        raise InvalidParameterError("manifest totals are inconsistent")
    return dict(manifest)


def load_manifest(path: str | Path) -> dict[str, object]:
    """Read and :func:`validate_manifest` a manifest file."""
    return validate_manifest(json.loads(Path(path).read_text()))


_default_engine: SweepEngine | None = None


def default_engine() -> SweepEngine:
    """The process-wide shared engine (sequential, caching).

    Created lazily on first use; everything that evaluates grid points
    without an explicit engine — ``run_groupN``, ``evaluate_summary``,
    ``build_report``, the boundary bisections — shares it, so repeated
    studies in one process pay for each unique point once.
    """
    global _default_engine
    if _default_engine is None:
        _default_engine = SweepEngine()
    return _default_engine


def set_default_engine(engine: SweepEngine | None) -> SweepEngine | None:
    """Swap the process-wide engine; returns the previous one (or None)."""
    global _default_engine
    previous = _default_engine
    _default_engine = engine
    return previous


def grid(
    name: str,
    points: Iterable[SweepPoint],
) -> SweepSpec:
    """Convenience constructor: materialise an iterable into a spec."""
    return SweepSpec(name, tuple(points))
