"""The paper's simulation study, reproducible end to end.

* :mod:`repro.experiments.engine` — the declarative sweep engine: grids
  as :class:`SweepSpec` values, memoized (optionally process-parallel)
  evaluation, and JSON run manifests,
* :mod:`repro.experiments.groups` — the five simulation groups of
  Section 6, each returning a grid of cost reports,
* :mod:`repro.experiments.summary` — programmatic checks of the five
  summary points of Section 6.1,
* :mod:`repro.experiments.validate` — measured-vs-model validation runs
  on executable synthetic collections,
* :mod:`repro.experiments.tables` — plain-text table rendering for the
  benchmark harness.
"""

from repro.experiments.engine import (
    SweepEngine,
    SweepPoint,
    SweepSpec,
    default_engine,
    load_manifest,
    set_default_engine,
    validate_manifest,
)
from repro.experiments.figures import FigureSeries, extract_series, render_ascii
from repro.experiments.kernelbench import (
    KERNEL_BENCH_SCHEMA,
    kernel_bench_manifest,
    validate_kernel_bench,
)
from repro.experiments.groups import (
    GroupResult,
    SimulationPoint,
    run_all_groups,
    run_group1,
    run_group2,
    run_group3,
    run_group4,
    run_group5,
    statistics_table,
)
from repro.experiments.summary import SummaryFindings, evaluate_summary
from repro.experiments.tables import format_grid, format_table
from repro.experiments.validate import ValidationRow, validate_algorithms

__all__ = [
    "FigureSeries",
    "GroupResult",
    "KERNEL_BENCH_SCHEMA",
    "SimulationPoint",
    "SweepEngine",
    "SweepPoint",
    "SweepSpec",
    "default_engine",
    "set_default_engine",
    "load_manifest",
    "validate_manifest",
    "extract_series",
    "render_ascii",
    "SummaryFindings",
    "ValidationRow",
    "evaluate_summary",
    "format_grid",
    "format_table",
    "kernel_bench_manifest",
    "validate_kernel_bench",
    "run_all_groups",
    "run_group1",
    "run_group2",
    "run_group3",
    "run_group4",
    "run_group5",
    "statistics_table",
    "validate_algorithms",
]
