"""Decision boundaries of the integrated algorithm.

The paper's contribution (4) is "insight on the type of input document
collections with which each algorithm is likely to perform well".  This
module sharpens that insight into numbers: for each knob the simulation
groups sweep, it locates the exact crossover where the winner changes,
by bisection over the cost models.

Boundaries located:

* ``hvnl_selection_crossover`` — the largest selected-outer count where
  HVNL still wins (Group 3's knee; the paper bounds it by ~100 and ties
  it to the outer collection's terms per document);
* ``vvm_rescale_crossover`` — the smallest merge factor where VVM takes
  over a self-join (Group 5's knee; the paper's ``N1·N2 < 10000·B``
  window predicts it);
* ``hhnl_buffer_escape`` — the buffer size where HHNL's cost stops
  being scan-bound (single inner scan), i.e. where extra memory stops
  mattering.

Every probe goes through a :class:`~repro.experiments.engine.SweepEngine`,
so bisection steps that coincide with group-grid points (the base points
always do) are cache hits rather than recomputations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import InvalidParameterError
from repro.cost.params import JoinSide, QueryParams, SystemParams
from repro.experiments.engine import SweepEngine, default_engine
from repro.index.stats import CollectionStats
from repro.workloads.trec import TREC_COLLECTIONS


def bisect_int_boundary(
    predicate: Callable[[int], bool], lo: int, hi: int
) -> int | None:
    """Largest ``x`` in ``[lo, hi]`` with ``predicate(x)`` true.

    Assumes the predicate is monotone (true then false) over the range;
    returns ``None`` when even ``lo`` is false.
    """
    if lo > hi:
        raise InvalidParameterError(f"empty range [{lo}, {hi}]")
    if not predicate(lo):
        return None
    if predicate(hi):
        return hi
    # invariant: predicate(lo) true, predicate(hi) false
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if predicate(mid):
            lo = mid
        else:
            hi = mid
    return lo


@dataclass(frozen=True)
class DecisionBoundaries:
    """The located crossovers for one collection profile."""

    collection: str
    hvnl_selection_crossover: int | None
    vvm_rescale_crossover: int | None
    hhnl_buffer_escape: int | None


def hvnl_selection_crossover(
    stats: CollectionStats,
    system: SystemParams | None = None,
    query: QueryParams | None = None,
    hi: int = 10_000,
    engine: SweepEngine | None = None,
) -> int | None:
    """Largest n2 where HVNL wins the selected self-join (Group 3)."""
    system = system or SystemParams()
    query = query or QueryParams()
    engine = engine if engine is not None else default_engine()

    def hvnl_wins(n2: int) -> bool:
        report = engine.report_for(
            JoinSide(stats), JoinSide(stats, participating=n2), system, query
        )
        return report.winner() == "HVNL"

    return bisect_int_boundary(hvnl_wins, 1, min(hi, stats.n_documents))


def vvm_rescale_crossover(
    stats: CollectionStats,
    system: SystemParams | None = None,
    query: QueryParams | None = None,
    hi: int = 10_000,
    engine: SweepEngine | None = None,
) -> int | None:
    """Smallest merge factor where VVM wins the rescaled self-join.

    Found as (largest factor where VVM does *not* win) + 1; ``None``
    when VVM already wins at factor 1.
    """
    system = system or SystemParams()
    query = query or QueryParams()
    engine = engine if engine is not None else default_engine()

    def vvm_loses(factor: int) -> bool:
        scaled = stats.rescaled(factor)
        report = engine.report_for(JoinSide(scaled), JoinSide(scaled), system, query)
        return report.winner() != "VVM"

    last_losing = bisect_int_boundary(vvm_loses, 1, hi)
    if last_losing is None:
        return 1  # VVM wins immediately
    if last_losing >= hi:
        return None  # VVM never wins in range
    return last_losing + 1


def hhnl_buffer_escape(
    stats: CollectionStats,
    query: QueryParams | None = None,
    hi: int = 10_000_000,
    engine: SweepEngine | None = None,
) -> int | None:
    """Smallest buffer where HHNL needs only one inner scan."""
    query = query or QueryParams()
    engine = engine if engine is not None else default_engine()

    def multi_scan(buffer_pages: int) -> bool:
        report = engine.report_for(
            JoinSide(stats), JoinSide(stats),
            SystemParams(buffer_pages=buffer_pages), query,
        )
        detail = report["HHNL"].detail
        return detail is None or detail.inner_scans > 1

    last_multi = bisect_int_boundary(multi_scan, 1, hi)
    if last_multi is None:
        return 1
    if last_multi >= hi:
        return None
    return last_multi + 1


def decision_boundaries(
    stats: CollectionStats,
    system: SystemParams | None = None,
    query: QueryParams | None = None,
    engine: SweepEngine | None = None,
) -> DecisionBoundaries:
    """All boundaries for one collection profile."""
    return DecisionBoundaries(
        collection=stats.name,
        hvnl_selection_crossover=hvnl_selection_crossover(
            stats, system, query, engine=engine
        ),
        vvm_rescale_crossover=vvm_rescale_crossover(stats, system, query, engine=engine),
        hhnl_buffer_escape=hhnl_buffer_escape(stats, query, engine=engine),
    )


def trec_boundaries(engine: SweepEngine | None = None) -> list[DecisionBoundaries]:
    """Boundaries for all three paper collections at base parameters."""
    return [
        decision_boundaries(stats, engine=engine)
        for stats in TREC_COLLECTIONS.values()
    ]
