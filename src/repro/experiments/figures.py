"""Text rendering of the paper's figures.

The ICDE paper's per-group plots live in the unavailable tech report;
what we can regenerate is the underlying *series* — cost versus the
swept parameter, one line per cost formula.  This module turns a
:class:`~repro.experiments.groups.GroupResult` into those series and
renders them as log-scale ASCII charts, so ``benchmarks/results``
contains something a reader can eyeball against the qualitative claims.

No plotting dependency: the charts are plain text, column per swept
value, row per decade.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.experiments.groups import GroupResult

SERIES_KEYS = ("hhs", "hhr", "hvs", "hvr", "vvs", "vvr")
_MARKERS = {"hhs": "H", "hhr": "h", "hvs": "V", "hvr": "v", "vvs": "M", "vvr": "m"}


@dataclass
class FigureSeries:
    """One figure: x values plus one y-series per cost formula."""

    title: str
    x_label: str
    x_values: list[float] = field(default_factory=list)
    series: dict[str, list[float]] = field(default_factory=dict)

    def as_rows(self) -> list[dict[str, float]]:
        """CSV-ready rows, one per x value."""
        rows = []
        for index, x in enumerate(self.x_values):
            row: dict[str, float] = {self.x_label: x}
            for name, values in self.series.items():
                row[name] = values[index]
            rows.append(row)
        return rows


def extract_series(
    group: GroupResult,
    collection1: str,
    variable: str,
    collection2: str | None = None,
    *,
    match_prefix: bool = False,
) -> FigureSeries:
    """Pull one figure's series out of a group grid.

    ``variable`` names the swept knob (``'B'``, ``'alpha'``, ``'n2'``,
    ``'factor'``); points are matched on C1 (and C2 when given) and
    sorted by the swept value.  ``match_prefix`` matches derived
    collection names like ``WSJ/x10`` against their base name (needed
    for Group 5's rescaled labels).
    """

    def c1_matches(name: str) -> bool:
        if match_prefix:
            return name == collection1 or name.startswith(collection1 + "/") or name.startswith(collection1 + "[")
        return name == collection1

    points = [
        p
        for p in group.points
        if p.variable == variable
        and c1_matches(p.collection1)
        and (collection2 is None or p.collection2 == collection2)
    ]
    points.sort(key=lambda p: p.value)
    figure = FigureSeries(
        title=(
            f"Group {group.group}: {collection1}"
            + (f" x {collection2}" if collection2 else "")
            + f" — cost vs {variable}"
        ),
        x_label=variable,
        x_values=[p.value for p in points],
    )
    for key in SERIES_KEYS:
        figure.series[key] = [float(p.report.row()[key]) for p in points]
    return figure


def render_ascii(figure: FigureSeries, height: int = 12) -> str:
    """A log-scale ASCII chart: one column per x value, rows are decades.

    Series markers: H/h = hhs/hhr, V/v = hvs/hvr, M/m = vvs/vvr; ``*``
    marks collisions.  Infinite (infeasible) values are skipped.
    """
    finite = [
        value
        for values in figure.series.values()
        for value in values
        if 0 < value < float("inf")
    ]
    if not finite or not figure.x_values:
        return f"{figure.title}\n(no finite data)"
    low = math.floor(math.log10(min(finite)))
    high = math.ceil(math.log10(max(finite)))
    high = max(high, low + 1)
    column_width = max(len(_format_x(x)) for x in figure.x_values) + 2

    grid = [
        [" "] * (len(figure.x_values) * column_width) for _ in range(height)
    ]
    for name, values in figure.series.items():
        marker = _MARKERS[name]
        for index, value in enumerate(values):
            if not (0 < value < float("inf")):
                continue
            fraction = (math.log10(value) - low) / (high - low)
            row = height - 1 - round(fraction * (height - 1))
            row = min(max(row, 0), height - 1)
            column = index * column_width + column_width // 2
            cell = grid[row][column]
            grid[row][column] = marker if cell == " " else "*"

    lines = [figure.title]
    for row_index, row in enumerate(grid):
        fraction = 1.0 - row_index / (height - 1)
        decade = low + fraction * (high - low)
        label = f"1e{decade:4.1f} |"
        lines.append(label + "".join(row))
    axis = " " * 8 + "".join(
        _format_x(x).center(column_width) for x in figure.x_values
    )
    lines.append(" " * 7 + "-" * (len(figure.x_values) * column_width))
    lines.append(axis)
    lines.append(
        f"        ({figure.x_label};  H/h=hhs/hhr  V/v=hvs/hvr  M/m=vvs/vvr  *=overlap)"
    )
    return "\n".join(lines)


def _format_x(x: float) -> str:
    if x == int(x):
        value = int(x)
        return f"{value // 1000}k" if value >= 10_000 else str(value)
    return f"{x:g}"
