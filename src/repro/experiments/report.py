"""One-shot report generator: the whole simulation study as markdown.

``build_report()`` regenerates everything the benchmark suite covers —
the statistics table, all five group grids, the summary-point checks,
the integrated-algorithm choices and the figure charts — and renders one
self-contained markdown document.  The CLI exposes it as
``python -m repro report [--output PATH]`` so a reader can reproduce the
study without pytest.

The whole study runs through a single
:class:`~repro.experiments.engine.SweepEngine`: the summary and figure
sections re-request the same grids the group sections already evaluated,
and the engine's memo table turns every shared point — grid cells,
integrated-algorithm situations, bisection probes — into a cache hit, so
each unique point is computed exactly once per report.  Pass a parallel
engine (``SweepEngine(jobs=N)``) to fan the grids out across processes,
or ``SweepEngine(cache=False)`` to reproduce the pre-engine behaviour
(every section recomputes its own grids — the benchmarks' baseline); the
rendered markdown is byte-identical in every mode.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cost.params import JoinSide, QueryParams, SystemParams
from repro.experiments.engine import SweepEngine, default_engine
from repro.experiments.figures import extract_series, render_ascii
from repro.experiments.groups import (
    GroupResult,
    run_all_groups,
    run_group1,
    run_group5,
    statistics_table,
)
from repro.experiments.summary import evaluate_summary
from repro.experiments.tables import format_grid
from repro.workloads.trec import TREC_COLLECTIONS, WSJ


@dataclass
class ReportSection:
    """One titled, fenced block of the rendered study."""

    title: str
    body: str

    def render(self) -> str:
        """The section as markdown (title plus fenced body)."""
        return f"## {self.title}\n\n```\n{self.body}\n```\n"


def _group_section(result: GroupResult) -> ReportSection:
    body = format_grid(result.rows())
    winners = result.winners()
    body += f"\n\nwinners (sequential scenario): {winners}"
    return ReportSection(
        title=f"Group {result.group} — {result.description}", body=body
    )


def _figures_section(engine: SweepEngine) -> ReportSection:
    charts = []
    g1 = run_group1(engine=engine)
    g5 = run_group5(engine=engine)
    for name in TREC_COLLECTIONS:
        charts.append(render_ascii(extract_series(g1, name, "B", name)))
    charts.append(render_ascii(extract_series(g5, "FR", "factor", match_prefix=True)))
    return ReportSection(
        title="Figure series (log-scale ASCII; full set in benchmarks/results)",
        body="\n\n".join(charts),
    )


def _summary_section(engine: SweepEngine) -> ReportSection:
    findings = evaluate_summary(engine=engine)
    lines = [
        f"1. drastic cost spread: max x{findings.max_cost_spread:,.0f} "
        f"[{'holds' if findings.point1_drastic_spread else 'FAILS'}]",
        f"2. HVNL wins very small outer side: "
        f"{findings.hvnl_wins_small_side}/{findings.small_side_points} "
        f"[{'holds' if findings.point2_hvnl_small_side else 'FAILS'}]",
        f"3. VVM wins in the N1*N2 < 10000*B window: "
        f"{findings.vvm_wins_in_window}/{findings.window_points} "
        f"[{'holds' if findings.point3_vvm_window else 'FAILS'}]",
        f"4. HHNL wins most other cases: "
        f"{findings.hhnl_wins_elsewhere}/{findings.elsewhere_points} "
        f"[{'holds' if findings.point4_hhnl_default else 'FAILS'}]",
        f"5. random scenario flips no non-VVM ranking: "
        f"{findings.ranking_changes_excl_vvm} flips "
        f"[{'holds' if findings.point5_random_stable else 'FAILS'}]",
    ]
    return ReportSection(title="Section 6.1 summary points", body="\n".join(lines))


def _integrated_section(engine: SweepEngine) -> ReportSection:
    system, query = SystemParams(), QueryParams()
    rows = []
    situations = [
        ("WSJ self-join", JoinSide(WSJ), JoinSide(WSJ)),
        ("WSJ, 5 outer docs selected", JoinSide(WSJ), JoinSide(WSJ, participating=5)),
        ("WSJ rescaled x20 self-join",
         JoinSide(WSJ.rescaled(20)), JoinSide(WSJ.rescaled(20))),
    ]
    for label, side1, side2 in situations:
        report = engine.report_for(side1, side2, system, query, label=label)
        rows.append(
            {
                "situation": label,
                "winner": report.winner(),
                "hhs": report["HHNL"].sequential,
                "hvs": report["HVNL"].sequential,
                "vvs": report["VVM"].sequential,
            }
        )
    return ReportSection(title="Integrated algorithm", body=format_grid(rows))


def _boundaries_section(engine: SweepEngine) -> ReportSection:
    from repro.experiments.boundaries import trec_boundaries

    rows = []
    for boundary in trec_boundaries(engine=engine):
        stats = TREC_COLLECTIONS[boundary.collection]
        rows.append(
            {
                "collection": boundary.collection,
                "K": stats.K,
                "HVNL wins up to n2": boundary.hvnl_selection_crossover,
                "VVM wins from factor": boundary.vvm_rescale_crossover,
                "HHNL single-scan at B": boundary.hhnl_buffer_escape,
            }
        )
    return ReportSection(
        title="Decision boundaries (bisection over the cost models)",
        body=format_grid(rows),
    )


def build_report(engine: SweepEngine | None = None) -> str:
    """The full study as one markdown document.

    ``engine`` defaults to the process-wide shared engine; pass
    ``SweepEngine(jobs=N)`` for process-pool evaluation or
    ``SweepEngine(cache=False)`` to force every point to recompute (the
    benchmarks' baseline).  Output is identical for any engine
    configuration.
    """
    engine = engine if engine is not None else default_engine()
    groups = run_all_groups(engine)
    sections = [
        ReportSection(
            title="Collection statistics (the paper's Section 6 table)",
            body=format_grid(statistics_table()),
        ),
        *(_group_section(result) for result in groups),
        _summary_section(engine),
        _integrated_section(engine),
        _boundaries_section(engine),
        _figures_section(engine),
    ]
    header = (
        "# Text-join simulation study (regenerated)\n\n"
        "Reproduction of the Section 6 evaluation of Meng, Yu, Wang, Rishe "
        "(ICDE 1996).  Parameters: P = 4KB, delta = 0.1, lambda = 20; "
        "base B = 10,000 pages, alpha = 5.\n"
    )
    return header + "\n" + "\n".join(section.render() for section in sections)
