"""Programmatic checks of the Section 6.1 summary points.

The ICDE paper compresses its result tables (published separately in
tech report CS-TR-95-07) into five qualitative findings.  This module
re-derives each finding from the regenerated grids so the reproduction
can assert them:

1. Costs of different algorithms under one situation differ drastically.
2. When one collection has (or is reduced to) very few documents —
   "likely limited by 100" — HVNL has a very good chance to win.
3. When ``N1 * N2 < 10000 * B`` and both collections exceed the memory,
   VVM (sequential version) can outperform the others.
4. In most other cases plain HHNL performs very well.
5. The random-I/O variants depict the worst case and, except for VVM,
   do not change the ranking of the algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cost.model import CostModel, CostReport
from repro.cost.params import JoinSide, QueryParams, SystemParams
from repro.experiments.engine import SweepEngine
from repro.experiments.groups import GroupResult, run_all_groups
from repro.index.stats import CollectionStats
from repro.workloads.trec import TREC_COLLECTIONS


@dataclass(frozen=True)
class SummaryFindings:
    """Evidence for the five summary points, over the regenerated grids."""

    max_cost_spread: float  # point 1: max over grid of (max cost / min cost)
    hvnl_wins_small_side: int  # point 2: HVNL wins among points with n2 <= threshold
    small_side_points: int
    vvm_wins_in_window: int  # point 3: VVM wins where N1*N2 < 10000*B and D > B
    window_points: int
    hhnl_wins_elsewhere: int  # point 4
    elsewhere_points: int
    ranking_changes_excl_vvm: int  # point 5: seq-vs-random winner flips not involving VVM
    total_points: int

    @property
    def point1_drastic_spread(self) -> bool:
        return self.max_cost_spread > 10.0

    @property
    def point2_hvnl_small_side(self) -> bool:
        return (
            self.small_side_points > 0
            and self.hvnl_wins_small_side / self.small_side_points > 0.5
        )

    @property
    def point3_vvm_window(self) -> bool:
        return self.window_points > 0 and self.vvm_wins_in_window / self.window_points > 0.5

    @property
    def point4_hhnl_default(self) -> bool:
        return (
            self.elsewhere_points > 0
            and self.hhnl_wins_elsewhere / self.elsewhere_points > 0.5
        )

    @property
    def point5_random_stable(self) -> bool:
        return self.ranking_changes_excl_vvm == 0

    def all_points_hold(self) -> bool:
        """True when every one of the five summary points reproduces."""
        return (
            self.point1_drastic_spread
            and self.point2_hvnl_small_side
            and self.point3_vvm_window
            and self.point4_hhnl_default
            and self.point5_random_stable
        )


SMALL_SIDE_LIMIT = 20
"""Paper point 2: "M is likely to be limited by 100"; we check the
region where it should clearly hold (how small is small enough "mainly
depends on the number of terms in each document of the outer
collection", and the TREC profiles have large K)."""

VVM_WINDOW_FACTOR = 10_000
"""Paper point 3's ``N1 * N2 < 10000 * B`` window."""


def _window(point_side1: JoinSide, point_side2: JoinSide, buffer_pages: int) -> bool:
    """Point 3's condition: product window plus both collections exceed B."""
    s1, s2 = point_side1.stats, point_side2.stats
    n1 = point_side1.n_participating
    n2 = point_side2.n_participating
    return (
        n1 * n2 < VVM_WINDOW_FACTOR * buffer_pages
        and s1.D > buffer_pages
        and s2.D > buffer_pages
    )


def evaluate_summary(
    groups: list[GroupResult] | None = None,
    engine: SweepEngine | None = None,
) -> SummaryFindings:
    """Scan the grids of all five groups and tally each point's evidence.

    Pass pre-built ``groups`` to reuse grids you already have (as
    ``build_report`` does); otherwise the five groups are regenerated
    through ``engine`` (or the shared default engine), so their points
    are memoized rather than recomputed.
    """
    if groups is None:
        groups = run_all_groups(engine)

    max_spread = 0.0
    hvnl_small = small_points = 0
    vvm_window = window_points = 0
    hhnl_elsewhere = elsewhere_points = 0
    ranking_changes = 0
    total = 0

    for group in groups:
        for point in group.points:
            total += 1
            report = point.report
            max_spread = max(max_spread, _finite_spread(report))

            # classify the point
            side2_small = _outer_count(point) <= SMALL_SIDE_LIMIT
            in_window = _point_in_window(point)
            winner = report.winner("sequential")
            if side2_small:
                small_points += 1
                if winner == "HVNL":
                    hvnl_small += 1
            elif in_window:
                window_points += 1
                if winner == "VVM":
                    vvm_window += 1
            else:
                elsewhere_points += 1
                if winner == "HHNL":
                    hhnl_elsewhere += 1

            # point 5: does the random scenario flip the winner, VVM aside?
            winner_rnd = report.winner("random")
            if winner != winner_rnd and "VVM" not in (winner, winner_rnd):
                ranking_changes += 1

    return SummaryFindings(
        max_cost_spread=max_spread,
        hvnl_wins_small_side=hvnl_small,
        small_side_points=small_points,
        vvm_wins_in_window=vvm_window,
        window_points=window_points,
        hhnl_wins_elsewhere=hhnl_elsewhere,
        elsewhere_points=elsewhere_points,
        ranking_changes_excl_vvm=ranking_changes,
        total_points=total,
    )


def _finite_spread(report: CostReport) -> float:
    costs = [c.sequential for c in report.feasible() if c.sequential < float("inf")]
    if len(costs) < 2 or min(costs) <= 0:
        return 0.0
    return max(costs) / min(costs)


def _outer_count(point) -> int:
    if point.variable == "n2":
        return int(point.value)
    return 10**9  # not a small-side experiment


def _point_in_window(point) -> bool:
    # Point 3 speaks about whole collections: a Group 3/4 selection does
    # not shrink the inverted files, so those points are never in VVM's
    # window no matter how small the participating count is.
    if point.variable == "n2":
        return False
    stats_by_name = dict(TREC_COLLECTIONS)
    b = point.buffer_pages
    if point.group == 5:
        base = stats_by_name.get(point.collection1.split("/")[0])
        if base is None:
            return False
        scaled = base.rescaled(int(point.value))
        return scaled.N * scaled.N < VVM_WINDOW_FACTOR * b and scaled.D > b
    s1 = stats_by_name.get(point.collection1)
    s2 = stats_by_name.get(point.collection2)
    if s1 is None or s2 is None:
        return False
    return s1.N * s2.N < VVM_WINDOW_FACTOR * b and s1.D > b and s2.D > b


def choose_algorithm(
    stats1: CollectionStats,
    stats2: CollectionStats,
    system: SystemParams | None = None,
    query: QueryParams | None = None,
    participating2: int | None = None,
) -> str:
    """Standalone integrated-algorithm entry point over raw statistics.

    The statistics-only counterpart of
    :class:`repro.core.integrated.IntegratedJoin` for when no executable
    environment exists (e.g. query optimisation in a multidatabase
    front-end).
    """
    model = CostModel(
        JoinSide(stats1),
        JoinSide(stats2, participating=participating2),
        system or SystemParams(),
        query or QueryParams(),
    )
    return model.choose()
