"""Measured-vs-model validation (experiment X2 of DESIGN.md).

The paper validates its formulas by argument; we can do better because
our substrate is executable: lay real (synthetic) collections on the
simulated disk, run each algorithm, and compare the measured weighted
I/O against the Section 5 estimate under the same parameters.

A ratio near 1.0 says the executor and the formula describe the same
algorithm.  Perfect equality is not expected — the formulas use average
document/entry sizes and the vocabulary-growth model ``f(m)``, while the
executor sees the true skewed sizes — so the tests assert bands, not
equality.  The cross-algorithm *result agreement* check is exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.hhnl import run_hhnl
from repro.core.hvnl import run_hvnl
from repro.core.join import JoinEnvironment, TextJoinSpec
from repro.core.vvm import run_vvm
from repro.cost.hhnl import hhnl_cost
from repro.cost.hvnl import hvnl_cost
from repro.cost.params import QueryParams, SystemParams
from repro.cost.vvm import vvm_cost
from repro.errors import JoinError
from repro.storage.pages import PageGeometry
from repro.text.collection import DocumentCollection


@dataclass(frozen=True)
class ValidationRow:
    """One algorithm's measured-vs-predicted comparison."""

    algorithm: str
    scenario: str  # 'sequential' | 'random'
    measured: float
    predicted: float

    @property
    def ratio(self) -> float:
        """measured / predicted; 1.0 means the model is exact."""
        if self.predicted == 0:
            return float("inf") if self.measured else 1.0
        return self.measured / self.predicted


def validate_algorithms(
    collection1: DocumentCollection,
    collection2: DocumentCollection | None = None,
    *,
    system: SystemParams | None = None,
    lam: int = 10,
    delta: float = 0.1,
    outer_ids: Sequence[int] | None = None,
    interference: bool = False,
    check_agreement: bool = True,
) -> list[ValidationRow]:
    """Run all three executors and compare against the cost model.

    ``delta`` is used identically on both sides (executor partitioning
    and formula), and ``q`` is measured from the actual vocabularies so
    the comparison isolates the formulas' structure rather than the
    Section 6 overlap heuristic.
    """
    system = system or SystemParams()
    collection2 = collection2 if collection2 is not None else collection1
    environment = JoinEnvironment(
        collection1, collection2, PageGeometry(system.page_bytes)
    )
    spec = TextJoinSpec(lam=lam)
    query = QueryParams(lam=lam, delta=delta)
    side1, side2 = environment.cost_sides(outer_ids)
    q = environment.measured_q()
    scenario = "random" if interference else "sequential"

    predictions = {
        "HHNL": hhnl_cost(side1, side2, system, query),
        "HVNL": hvnl_cost(side1, side2, system, query, q),
        "VVM": vvm_cost(side1, side2, system, query),
    }
    results = {
        "HHNL": run_hhnl(
            environment, spec, system, outer_ids=outer_ids, interference=interference
        ),
        "HVNL": run_hvnl(
            environment, spec, system,
            outer_ids=outer_ids, interference=interference, delta=delta,
        ),
        "VVM": run_vvm(
            environment, spec, system,
            outer_ids=outer_ids, interference=interference, delta=delta,
        ),
    }

    if check_agreement:
        hhnl, hvnl, vvm = results["HHNL"], results["HVNL"], results["VVM"]
        if not hhnl.same_matches_as(hvnl) or not hhnl.same_matches_as(vvm):
            raise JoinError(
                "executors disagree on the join result — substrate bug: "
                f"HHNL={hhnl.n_matches()} HVNL={hvnl.n_matches()} VVM={vvm.n_matches()}"
            )

    rows = []
    for name in ("HHNL", "HVNL", "VVM"):
        predicted = predictions[name].random if interference else predictions[name].sequential
        rows.append(
            ValidationRow(
                algorithm=name,
                scenario=scenario,
                measured=results[name].weighted_cost(system.alpha),
                predicted=predicted,
            )
        )
    return rows
