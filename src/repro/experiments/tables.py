"""Plain-text tables for the benchmark harness.

The benches print the same kind of rows the paper's tech report tabulates
(configuration, six costs, winner); these helpers keep the formatting in
one place and dependency-free.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == float("inf"):
            return "inf"
        if value >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = "") -> str:
    """Render an aligned ASCII table."""
    cells = [[_format_cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(row[i].rjust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def format_grid(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    title: str = "",
) -> str:
    """Render dict-rows (e.g. :meth:`CostReport.row` output) as a table."""
    if not rows:
        return title or "(no rows)"
    columns = list(columns or rows[0].keys())
    return format_table(columns, [[row.get(c, "") for c in columns] for row in rows], title)
