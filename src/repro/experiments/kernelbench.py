"""Machine-readable kernel/codec benchmark manifests.

The engine benchmarks already persist their perf trajectory as
schema-validated ``BENCH_*.json`` artifacts
(:data:`~repro.experiments.engine.MANIFEST_SCHEMA`); this module gives
the kernel and codec benchmarks the same treatment.  A kernel-bench
manifest is a flat list of timed join executions — one row per
(operator, kernel backend, codec) — plus run-level context (CPU count,
numpy availability) and free-form extras (computed speedups).

:func:`validate_kernel_bench` is the write barrier: the benchmark
fixture validates every manifest on the way out, so schema drift fails
the benchmark run instead of seeding a corrupt ``BENCH_kernels.json``.
"""

from __future__ import annotations

import os
import time
from typing import Mapping, Sequence

from repro.errors import InvalidParameterError
from repro.kernels import numpy_available

KERNEL_BENCH_SCHEMA = "repro-kernel-bench/1"
"""Schema tag stamped into (and required of) every kernel-bench manifest."""

_ROW_KEYS = frozenset(
    {"operator", "kernel", "codec", "wall_seconds", "matches", "pages_read"}
)


def kernel_bench_manifest(
    rows: Sequence[Mapping[str, object]],
    extras: Mapping[str, object] | None = None,
) -> dict[str, object]:
    """Assemble a v1 kernel-bench manifest around timed join rows."""
    return {
        "schema": KERNEL_BENCH_SCHEMA,
        "created_unix": time.time(),
        "cpu_count": os.cpu_count() or 1,
        "numpy_available": numpy_available(),
        "rows": [dict(row) for row in rows],
        "extras": dict(extras or {}),
    }


def validate_kernel_bench(manifest: Mapping[str, object]) -> dict[str, object]:
    """Check a kernel-bench manifest against the v1 schema.

    Raises :class:`~repro.errors.InvalidParameterError` naming the first
    violated expectation, mirroring
    :func:`repro.experiments.engine.validate_manifest`.
    """
    if manifest.get("schema") != KERNEL_BENCH_SCHEMA:
        raise InvalidParameterError(
            f"kernel-bench manifest schema is {manifest.get('schema')!r}, "
            f"expected {KERNEL_BENCH_SCHEMA!r}"
        )
    for key in ("created_unix", "cpu_count", "numpy_available", "extras"):
        if key not in manifest:
            raise InvalidParameterError(f"kernel-bench manifest is missing {key!r}")
    rows = manifest.get("rows")
    if not isinstance(rows, list) or not rows:
        raise InvalidParameterError("kernel-bench manifest rows must be a non-empty list")
    for index, row in enumerate(rows):
        if not isinstance(row, Mapping) or not _ROW_KEYS <= set(row):
            raise InvalidParameterError(
                f"kernel-bench row {index} must carry {sorted(_ROW_KEYS)}"
            )
        if not isinstance(row["wall_seconds"], (int, float)) or row["wall_seconds"] < 0:
            raise InvalidParameterError(
                f"kernel-bench row {index} wall_seconds must be non-negative"
            )
    return dict(manifest)


__all__ = [
    "KERNEL_BENCH_SCHEMA",
    "kernel_bench_manifest",
    "validate_kernel_bench",
]
