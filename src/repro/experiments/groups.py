"""The five simulation groups of Section 6.

Each ``run_groupN`` reproduces one experiment family over the paper's
TREC statistics (or any :class:`~repro.index.stats.CollectionStats` you
pass in) and returns a :class:`GroupResult` — a labelled grid of
:class:`~repro.cost.model.CostReport` points ready for table rendering
or assertion.

Parameter conventions (Section 6): page size fixed at 4 KB, ``delta`` at
0.1, ``lambda`` at 20; base values ``B = 10,000`` pages and
``alpha = 5``; one parameter sweeps while the other stays at its base.
The paper does not publish its sweep grids (they are in tech report
[11]), so we choose round grids bracketing the base values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.cost.model import CostModel, CostReport
from repro.cost.params import JoinSide, QueryParams, SystemParams
from repro.index.stats import CollectionStats
from repro.workloads.trec import TREC_COLLECTIONS

BUFFER_SWEEP: tuple[int, ...] = (2_000, 5_000, 10_000, 20_000, 40_000, 80_000)
"""Buffer sizes (pages) swept around the base B = 10,000."""

ALPHA_SWEEP: tuple[float, ...] = (2.0, 3.0, 5.0, 8.0, 10.0)
"""Cost ratios swept around the base alpha = 5."""

SELECTION_SWEEP: tuple[int, ...] = (1, 5, 10, 20, 50, 100, 200, 500, 1_000)
"""Participating outer documents for Groups 3 and 4."""

RESCALE_SWEEP: tuple[int, ...] = (1, 2, 5, 10, 20, 50, 100)
"""Document-merging factors for Group 5."""


@dataclass(frozen=True)
class SimulationPoint:
    """One cell of a group's grid."""

    group: int
    collection1: str
    collection2: str
    buffer_pages: int
    alpha: float
    variable: str  # which knob this point sweeps ('B', 'alpha', 'n2', 'factor')
    value: float
    report: CostReport

    def row(self) -> dict[str, object]:
        """Flat dict for table rendering: config plus the six costs."""
        out: dict[str, object] = {
            "C1": self.collection1,
            "C2": self.collection2,
            "B": self.buffer_pages,
            "alpha": self.alpha,
        }
        if self.variable not in out:
            out[self.variable] = self.value
        out.update(self.report.row())
        del out["label"]
        return out


@dataclass
class GroupResult:
    """All points of one simulation group."""

    group: int
    description: str
    points: list[SimulationPoint] = field(default_factory=list)

    def rows(self) -> list[dict[str, object]]:
        return [p.row() for p in self.points]

    def winners(self, scenario: str = "sequential") -> dict[str, int]:
        """How often each algorithm wins across the grid."""
        counts: dict[str, int] = {"HHNL": 0, "HVNL": 0, "VVM": 0}
        for point in self.points:
            counts[point.report.winner(scenario)] += 1
        return counts

    def __len__(self) -> int:
        return len(self.points)


def _base_query() -> QueryParams:
    return QueryParams()  # lambda = 20, delta = 0.1 — the fixed Section 6 values


def _point(
    group: int,
    side1: JoinSide,
    side2: JoinSide,
    system: SystemParams,
    variable: str,
    value: float,
) -> SimulationPoint:
    report = CostModel(side1, side2, system, _base_query()).report(
        label=f"{side1.stats.name}|{side2.stats.name}|{variable}={value}"
    )
    return SimulationPoint(
        group=group,
        collection1=side1.stats.name,
        collection2=side2.stats.name,
        buffer_pages=system.buffer_pages,
        alpha=system.alpha,
        variable=variable,
        value=value,
        report=report,
    )


def run_group1(
    collections: Iterable[CollectionStats] | None = None,
    buffer_sweep: Sequence[int] = BUFFER_SWEEP,
    alpha_sweep: Sequence[float] = ALPHA_SWEEP,
) -> GroupResult:
    """Group 1: self-joins of each real collection; sweep B, then alpha.

    Six simulations in the paper: three collections x two swept
    parameters.
    """
    result = GroupResult(1, "self-join of each real collection; sweep B and alpha")
    for stats in collections or TREC_COLLECTIONS.values():
        side = JoinSide(stats)
        for b in buffer_sweep:
            result.points.append(
                _point(1, side, side, SystemParams(buffer_pages=b), "B", b)
            )
        for alpha in alpha_sweep:
            result.points.append(
                _point(1, side, side, SystemParams(alpha=alpha), "alpha", alpha)
            )
    return result


def run_group2(
    collections: Iterable[CollectionStats] | None = None,
    buffer_sweep: Sequence[int] = BUFFER_SWEEP,
) -> GroupResult:
    """Group 2: every ordered pair of distinct collections; sweep B."""
    result = GroupResult(2, "cross-joins of distinct collections; sweep B")
    pool = list(collections or TREC_COLLECTIONS.values())
    for stats1 in pool:
        for stats2 in pool:
            if stats1.name == stats2.name:
                continue
            for b in buffer_sweep:
                result.points.append(
                    _point(
                        2,
                        JoinSide(stats1),
                        JoinSide(stats2),
                        SystemParams(buffer_pages=b),
                        "B",
                        b,
                    )
                )
    return result


def run_group3(
    collections: Iterable[CollectionStats] | None = None,
    selection_sweep: Sequence[int] = SELECTION_SWEEP,
) -> GroupResult:
    """Group 3: a selection leaves few participating documents of C2.

    C1 = C2 = a real collection, but only ``n`` documents of C2 join:
    they are fetched randomly and C2's index structures keep their
    original size.  Base B and alpha.
    """
    result = GroupResult(3, "few selected documents of an originally large C2")
    system = SystemParams()
    for stats in collections or TREC_COLLECTIONS.values():
        for n in selection_sweep:
            if n > stats.n_documents:
                continue
            result.points.append(
                _point(3, JoinSide(stats), JoinSide(stats, participating=n), system, "n2", n)
            )
    return result


def run_group4(
    collections: Iterable[CollectionStats] | None = None,
    selection_sweep: Sequence[int] = SELECTION_SWEEP,
) -> GroupResult:
    """Group 4: C2 is an originally small collection derived from C1.

    Unlike Group 3 the small collection owns its (small) inverted file
    and B+-tree and is read sequentially.  Base B and alpha.
    """
    result = GroupResult(4, "an originally small C2 derived from C1")
    system = SystemParams()
    for stats in collections or TREC_COLLECTIONS.values():
        for n in selection_sweep:
            if n > stats.n_documents:
                continue
            small = stats.with_documents(n)
            result.points.append(
                _point(4, JoinSide(stats), JoinSide(small), system, "n2", n)
            )
    return result


def run_group5(
    collections: Iterable[CollectionStats] | None = None,
    rescale_sweep: Sequence[int] = RESCALE_SWEEP,
) -> GroupResult:
    """Group 5: self-joins of rescaled collections (VVM's sweet spot).

    Each derived collection keeps the original total size but has
    ``N / factor`` documents of ``K * factor`` terms.  Base B and alpha.
    """
    result = GroupResult(5, "self-joins of size-preserving rescaled collections")
    system = SystemParams()
    for stats in collections or TREC_COLLECTIONS.values():
        for factor in rescale_sweep:
            scaled = stats.rescaled(factor)
            side = JoinSide(scaled)
            result.points.append(_point(5, side, side, system, "factor", factor))
    return result


def statistics_table(
    collections: Iterable[CollectionStats] | None = None,
) -> list[dict[str, object]]:
    """The paper's Section 6 statistics table, one dict-row per statistic."""
    pool = list(collections or TREC_COLLECTIONS.values())
    rows: list[dict[str, object]] = []
    metrics: list[tuple[str, object]] = [
        ("#documents", lambda s: s.N),
        ("#terms per doc", lambda s: s.K),
        ("total # of distinct terms", lambda s: s.T),
        ("collection size in pages", lambda s: s.D),
        ("avg. size of a document", lambda s: s.S),
        ("avg. size of an inv. fi. en.", lambda s: s.J),
    ]
    for label, metric in metrics:
        row: dict[str, object] = {"statistic": label}
        for stats in pool:
            row[stats.name] = metric(stats)
        rows.append(row)
    return rows
