"""The five simulation groups of Section 6.

Each ``run_groupN`` reproduces one experiment family over the paper's
TREC statistics (or any :class:`~repro.index.stats.CollectionStats` you
pass in) and returns a :class:`GroupResult` — a labelled grid of
:class:`~repro.cost.model.CostReport` points ready for table rendering
or assertion.

Parameter conventions (Section 6): page size fixed at 4 KB, ``delta`` at
0.1, ``lambda`` at 20; base values ``B = 10,000`` pages and
``alpha = 5``; one parameter sweeps while the other stays at its base.
The paper does not publish its sweep grids (they are in tech report
[11]), so we choose round grids bracketing the base values.

Each group's grid is first expressed declaratively as a
:class:`~repro.experiments.engine.SweepSpec` (see ``groupN_spec``) and
then evaluated through a :class:`~repro.experiments.engine.SweepEngine`,
so points shared between groups — or with the summary checks, the report
generator and the boundary bisections — are computed exactly once per
engine, and a parallel engine fans the grid out across processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.cost.model import CostReport
from repro.cost.params import JoinSide, QueryParams, SystemParams
from repro.experiments.engine import SweepEngine, SweepPoint, SweepSpec, default_engine
from repro.index.stats import CollectionStats
from repro.workloads.trec import TREC_COLLECTIONS

BUFFER_SWEEP: tuple[int, ...] = (2_000, 5_000, 10_000, 20_000, 40_000, 80_000)
"""Buffer sizes (pages) swept around the base B = 10,000."""

ALPHA_SWEEP: tuple[float, ...] = (2.0, 3.0, 5.0, 8.0, 10.0)
"""Cost ratios swept around the base alpha = 5."""

SELECTION_SWEEP: tuple[int, ...] = (1, 5, 10, 20, 50, 100, 200, 500, 1_000)
"""Participating outer documents for Groups 3 and 4."""

RESCALE_SWEEP: tuple[int, ...] = (1, 2, 5, 10, 20, 50, 100)
"""Document-merging factors for Group 5."""


@dataclass(frozen=True)
class SimulationPoint:
    """One cell of a group's grid."""

    group: int
    collection1: str
    collection2: str
    buffer_pages: int
    alpha: float
    variable: str  # which knob this point sweeps ('B', 'alpha', 'n2', 'factor')
    value: float
    report: CostReport

    def row(self) -> dict[str, object]:
        """Flat dict for table rendering: config plus the six costs."""
        out: dict[str, object] = {
            "C1": self.collection1,
            "C2": self.collection2,
            "B": self.buffer_pages,
            "alpha": self.alpha,
        }
        if self.variable not in out:
            out[self.variable] = self.value
        out.update(self.report.row())
        del out["label"]
        return out


@dataclass
class GroupResult:
    """All points of one simulation group."""

    group: int
    description: str
    points: list[SimulationPoint] = field(default_factory=list)

    def rows(self) -> list[dict[str, object]]:
        return [p.row() for p in self.points]

    def winners(self, scenario: str = "sequential") -> dict[str, int]:
        """How often each algorithm wins across the grid."""
        counts: dict[str, int] = {"HHNL": 0, "HVNL": 0, "VVM": 0}
        for point in self.points:
            counts[point.report.winner(scenario)] += 1
        return counts

    def __len__(self) -> int:
        return len(self.points)


def _base_query() -> QueryParams:
    return QueryParams()  # lambda = 20, delta = 0.1 — the fixed Section 6 values


def _sweep_point(
    side1: JoinSide,
    side2: JoinSide,
    system: SystemParams,
    variable: str,
    value: float,
) -> SweepPoint:
    return SweepPoint(
        side1=side1,
        side2=side2,
        system=system,
        query=_base_query(),
        variable=variable,
        value=value,
    )


def _run_spec(
    group: int, description: str, spec: SweepSpec, engine: SweepEngine | None
) -> GroupResult:
    """Evaluate a grid spec and wrap the reports as a GroupResult."""
    engine = engine if engine is not None else default_engine()
    result = GroupResult(group, description)
    for point, report in zip(spec.points, engine.evaluate(spec)):
        result.points.append(
            SimulationPoint(
                group=group,
                collection1=point.side1.stats.name,
                collection2=point.side2.stats.name,
                buffer_pages=point.system.buffer_pages,
                alpha=point.system.alpha,
                variable=point.variable,
                value=point.value,
                report=report,
            )
        )
    return result


def group1_spec(
    collections: Iterable[CollectionStats] | None = None,
    buffer_sweep: Sequence[int] = BUFFER_SWEEP,
    alpha_sweep: Sequence[float] = ALPHA_SWEEP,
) -> SweepSpec:
    """Group 1's grid: self-joins, B sweep then alpha sweep."""
    points: list[SweepPoint] = []
    for stats in collections or TREC_COLLECTIONS.values():
        side = JoinSide(stats)
        for b in buffer_sweep:
            points.append(_sweep_point(side, side, SystemParams(buffer_pages=b), "B", b))
        for alpha in alpha_sweep:
            points.append(_sweep_point(side, side, SystemParams(alpha=alpha), "alpha", alpha))
    return SweepSpec("group1", tuple(points))


def run_group1(
    collections: Iterable[CollectionStats] | None = None,
    buffer_sweep: Sequence[int] = BUFFER_SWEEP,
    alpha_sweep: Sequence[float] = ALPHA_SWEEP,
    engine: SweepEngine | None = None,
) -> GroupResult:
    """Group 1: self-joins of each real collection; sweep B, then alpha.

    Six simulations in the paper: three collections x two swept
    parameters.
    """
    return _run_spec(
        1,
        "self-join of each real collection; sweep B and alpha",
        group1_spec(collections, buffer_sweep, alpha_sweep),
        engine,
    )


def group2_spec(
    collections: Iterable[CollectionStats] | None = None,
    buffer_sweep: Sequence[int] = BUFFER_SWEEP,
) -> SweepSpec:
    """Group 2's grid: every ordered distinct pair, B sweep."""
    points: list[SweepPoint] = []
    pool = list(collections or TREC_COLLECTIONS.values())
    for stats1 in pool:
        for stats2 in pool:
            if stats1.name == stats2.name:
                continue
            for b in buffer_sweep:
                points.append(
                    _sweep_point(
                        JoinSide(stats1),
                        JoinSide(stats2),
                        SystemParams(buffer_pages=b),
                        "B",
                        b,
                    )
                )
    return SweepSpec("group2", tuple(points))


def run_group2(
    collections: Iterable[CollectionStats] | None = None,
    buffer_sweep: Sequence[int] = BUFFER_SWEEP,
    engine: SweepEngine | None = None,
) -> GroupResult:
    """Group 2: every ordered pair of distinct collections; sweep B."""
    return _run_spec(
        2,
        "cross-joins of distinct collections; sweep B",
        group2_spec(collections, buffer_sweep),
        engine,
    )


def group3_spec(
    collections: Iterable[CollectionStats] | None = None,
    selection_sweep: Sequence[int] = SELECTION_SWEEP,
) -> SweepSpec:
    """Group 3's grid: selected-outer self-joins, n2 sweep."""
    points: list[SweepPoint] = []
    system = SystemParams()
    for stats in collections or TREC_COLLECTIONS.values():
        for n in selection_sweep:
            if n > stats.n_documents:
                continue
            points.append(
                _sweep_point(
                    JoinSide(stats), JoinSide(stats, participating=n), system, "n2", n
                )
            )
    return SweepSpec("group3", tuple(points))


def run_group3(
    collections: Iterable[CollectionStats] | None = None,
    selection_sweep: Sequence[int] = SELECTION_SWEEP,
    engine: SweepEngine | None = None,
) -> GroupResult:
    """Group 3: a selection leaves few participating documents of C2.

    C1 = C2 = a real collection, but only ``n`` documents of C2 join:
    they are fetched randomly and C2's index structures keep their
    original size.  Base B and alpha.
    """
    return _run_spec(
        3,
        "few selected documents of an originally large C2",
        group3_spec(collections, selection_sweep),
        engine,
    )


def group4_spec(
    collections: Iterable[CollectionStats] | None = None,
    selection_sweep: Sequence[int] = SELECTION_SWEEP,
) -> SweepSpec:
    """Group 4's grid: originally-small derived C2, n2 sweep."""
    points: list[SweepPoint] = []
    system = SystemParams()
    for stats in collections or TREC_COLLECTIONS.values():
        for n in selection_sweep:
            if n > stats.n_documents:
                continue
            small = stats.with_documents(n)
            points.append(_sweep_point(JoinSide(stats), JoinSide(small), system, "n2", n))
    return SweepSpec("group4", tuple(points))


def run_group4(
    collections: Iterable[CollectionStats] | None = None,
    selection_sweep: Sequence[int] = SELECTION_SWEEP,
    engine: SweepEngine | None = None,
) -> GroupResult:
    """Group 4: C2 is an originally small collection derived from C1.

    Unlike Group 3 the small collection owns its (small) inverted file
    and B+-tree and is read sequentially.  Base B and alpha.
    """
    return _run_spec(
        4,
        "an originally small C2 derived from C1",
        group4_spec(collections, selection_sweep),
        engine,
    )


def group5_spec(
    collections: Iterable[CollectionStats] | None = None,
    rescale_sweep: Sequence[int] = RESCALE_SWEEP,
) -> SweepSpec:
    """Group 5's grid: size-preserving rescaled self-joins, factor sweep."""
    points: list[SweepPoint] = []
    system = SystemParams()
    for stats in collections or TREC_COLLECTIONS.values():
        for factor in rescale_sweep:
            scaled = stats.rescaled(factor)
            side = JoinSide(scaled)
            points.append(_sweep_point(side, side, system, "factor", factor))
    return SweepSpec("group5", tuple(points))


def run_group5(
    collections: Iterable[CollectionStats] | None = None,
    rescale_sweep: Sequence[int] = RESCALE_SWEEP,
    engine: SweepEngine | None = None,
) -> GroupResult:
    """Group 5: self-joins of rescaled collections (VVM's sweet spot).

    Each derived collection keeps the original total size but has
    ``N / factor`` documents of ``K * factor`` terms.  Base B and alpha.
    """
    return _run_spec(
        5,
        "self-joins of size-preserving rescaled collections",
        group5_spec(collections, rescale_sweep),
        engine,
    )


def run_all_groups(engine: SweepEngine | None = None) -> list[GroupResult]:
    """All five groups over the TREC statistics, sharing one engine."""
    engine = engine if engine is not None else default_engine()
    return [
        run_group1(engine=engine),
        run_group2(engine=engine),
        run_group3(engine=engine),
        run_group4(engine=engine),
        run_group5(engine=engine),
    ]


def statistics_table(
    collections: Iterable[CollectionStats] | None = None,
) -> list[dict[str, object]]:
    """The paper's Section 6 statistics table, one dict-row per statistic."""
    pool = list(collections or TREC_COLLECTIONS.values())
    rows: list[dict[str, object]] = []
    metrics: list[tuple[str, object]] = [
        ("#documents", lambda s: s.N),
        ("#terms per doc", lambda s: s.K),
        ("total # of distinct terms", lambda s: s.T),
        ("collection size in pages", lambda s: s.D),
        ("avg. size of a document", lambda s: s.S),
        ("avg. size of an inv. fi. en.", lambda s: s.J),
    ]
    for label, metric in metrics:
        row: dict[str, object] = {"statistic": label}
        for stats in pool:
            row[stats.name] = metric(stats)
        rows.append(row)
    return rows
